//! Churn/soak tests: sustained concurrent scheduling activity must leave
//! the deployment consistent — no leaked locks, no dangling links, no
//! slot owned by a cancelled meeting.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;
use std::time::{Duration, Instant};

use syd::calendar::{CalendarApp, MeetingSpec, MeetingStatus};
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::types::{Priority, TimeSlot, UserId};

/// Replays every journal and correlates it with the live lock tables and
/// waiting queues — the mechanical version of the hand-written invariant
/// assertions below.
fn audit_clean(apps: &[Arc<CalendarApp>]) {
    syd::check::audit(apps.iter().map(|a| a.device())).assert_clean();
}

fn quiesce(apps: &[Arc<CalendarApp>]) {
    // Wait for background repair rounds (spawned threads) to settle.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let held: usize = apps
            .iter()
            .map(|a| a.device().store().locks().held_count())
            .sum();
        if held == 0 {
            // One settle pass: no locks now; give stragglers a moment and
            // re-check once.
            std::thread::sleep(Duration::from_millis(100));
            let held: usize = apps
                .iter()
                .map(|a| a.device().store().locks().held_count())
                .sum();
            if held == 0 {
                return;
            }
        }
        assert!(Instant::now() < deadline, "locks never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sustained_schedule_cancel_churn_stays_consistent() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let apps: Vec<Arc<CalendarApp>> = (0..5)
        .map(|i| CalendarApp::install(&env.device(&format!("u{i}"), "").unwrap()).unwrap())
        .collect();
    let users: Vec<UserId> = apps.iter().map(|a| a.user()).collect();

    // 4 initiator threads × 12 rounds of schedule/cancel over a small slot
    // space (heavy contention).
    let mut handles = Vec::new();
    for (t, app) in apps.iter().enumerate().take(4) {
        let app = Arc::clone(app);
        let users = users.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..12u64 {
                let slot = TimeSlot::from_ordinal((round * 7 + t as u64) % 10);
                let others: Vec<UserId> =
                    users.iter().copied().filter(|&u| u != app.user()).collect();
                let spec = MeetingSpec::plain(format!("m{t}-{round}"), slot, others)
                    .with_priority(Priority::new(50 + (t as u8) * 30));
                if let Ok(outcome) = app.schedule(spec) {
                    if round % 2 == 0 {
                        let _ = app.cancel(outcome.meeting);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    quiesce(&apps);

    // Invariants across the deployment.
    for app in &apps {
        for ordinal in 0..10u64 {
            if let Some(meeting) = app.slot_state(ordinal).unwrap().meeting() {
                // A held slot's meeting record exists locally and is not
                // cancelled.
                let rec = app.meeting(meeting).unwrap().unwrap_or_else(|| {
                    panic!("{}: slot {ordinal} held by unknown {meeting}", app.user())
                });
                assert_ne!(
                    rec.status,
                    MeetingStatus::Cancelled,
                    "{}: slot {ordinal} held by cancelled meeting {meeting}",
                    app.user()
                );
            }
        }
        // No negotiation locks leaked.
        assert_eq!(app.device().store().locks().held_count(), 0);
    }
    audit_clean(&apps);

    // Every *confirmed* meeting (from any initiator's view) has its slot
    // at every reserved participant.
    for app in &apps[..4] {
        for ordinal in 0..10u64 {
            let Some(meeting) = app.slot_state(ordinal).unwrap().meeting() else {
                continue;
            };
            let Some(rec) = app.meeting(meeting).unwrap() else {
                continue;
            };
            if rec.status != MeetingStatus::Confirmed || rec.initiator != app.user() {
                continue;
            }
            for &user in &rec.reserved {
                let holder = apps.iter().find(|a| a.user() == user).unwrap();
                assert_eq!(
                    holder.slot_state(rec.ordinal).unwrap().meeting(),
                    Some(meeting),
                    "{user} should hold confirmed meeting {meeting}"
                );
            }
        }
    }
}

#[test]
fn deeply_nested_invocations_do_not_exhaust_the_pool() {
    // A chain of devices where each request hops to the next: depth-40
    // nesting exercises the grow-on-demand pool and the network stack.
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let devices: Vec<_> = (0..8)
        .map(|i| env.device(&format!("hop{i}"), "").unwrap())
        .collect();
    let svc = syd::types::ServiceName::new("chain");
    for (i, dev) in devices.iter().enumerate() {
        let next = devices[(i + 1) % devices.len()].user();
        let engine = dev.engine().clone();
        dev.register_service(
            &svc,
            "hop",
            Arc::new(move |_ctx, args: &[syd::types::Value]| {
                let remaining = args[0].as_i64()?;
                if remaining <= 0 {
                    return Ok(syd::types::Value::I64(0));
                }
                engine.invoke(
                    next,
                    &syd::types::ServiceName::new("chain"),
                    "hop",
                    vec![syd::types::Value::I64(remaining - 1)],
                )
            }),
        )
        .unwrap();
    }
    // 40 hops around the ring of 8 devices = 5 nested requests per device.
    let out = devices[0]
        .engine()
        .invoke(
            devices[1].user(),
            &svc,
            "hop",
            vec![syd::types::Value::I64(40)],
        )
        .unwrap();
    assert_eq!(out, syd::types::Value::I64(0));
}
