//! Acceptance: a 32-member schedule-meeting negotiation assembles into
//! a *complete* cross-device span tree — every `rpc.client` span has a
//! matching server-side view — and the critical-path analyzer's phase
//! attribution sums to within 10% of the measured end-to-end wall time.
//!
//! This is the full stack: calendar op span → negotiation phase spans →
//! RPC client/server spans → transport queueing spans, drained from
//! every ring in the process and assembled by trace id.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::time::Instant;

use syd::trace::{attribute, AssemblyMode, Collector};
use syd_bench::{calendar_rig, env_ideal, users_of};
use syd_calendar::{MeetingSpec, MeetingStatus};
use syd_telemetry::names;
use syd_types::SlotRange;

#[test]
fn thirty_two_member_schedule_assembles_complete_attributed_tree() {
    const MEMBERS: usize = 32;
    let env = env_ideal();
    let apps = calendar_rig(&env, MEMBERS);
    let users = users_of(&apps);

    // Clear spans left over from rig construction so the collector only
    // sees the operation under test.
    Collector::new(AssemblyMode::Lossy).drain_global();

    let slot = *apps[0]
        .find_common_slots(&users, SlotRange::days(1, 28))
        .expect("find slot")
        .first()
        .expect("a common slot exists");
    // Only the schedule call itself is timed: its root span is the
    // yardstick the attribution must add back up to.
    Collector::new(AssemblyMode::Lossy).drain_global();
    let started = Instant::now();
    let outcome = apps[0]
        .schedule(MeetingSpec::plain("all-hands", slot, users.clone()))
        .expect("schedule");
    let measured_us = started.elapsed().as_micros() as u64;
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    let mut collector = Collector::new(AssemblyMode::Strict);
    collector.drain_global();
    let schedule_traces: Vec<u64> = collector
        .trace_ids()
        .into_iter()
        .filter(|&t| {
            collector
                .assemble(t)
                .is_ok_and(|tree| tree.op() == names::SPAN_SCHEDULE)
        })
        .collect();
    assert_eq!(
        schedule_traces.len(),
        1,
        "exactly one schedule-op trace: {:?}",
        collector.trace_ids()
    );

    // Strict assembly: any missing record (lost server view, orphan,
    // missing parent) would be an error, not a silent hole.
    let tree = collector
        .assemble(schedule_traces[0])
        .expect("strict assembly of a lossless run succeeds");
    assert!(tree.complete);
    assert!(tree.anomalies.is_empty(), "{:?}", tree.anomalies);

    // Every RPC client span carries its matching server-side view, and
    // the negotiation rounds are present with correct parentage.
    let clients = tree.find_kind(names::SPAN_RPC_CLIENT);
    assert!(
        clients.len() >= MEMBERS,
        "a 32-member negotiation makes at least one RPC per member, got {}",
        clients.len()
    );
    for idx in clients {
        assert!(
            tree.nodes[idx].server.is_some(),
            "client span {:016x} lost its server view",
            tree.nodes[idx].span
        );
    }
    let root_span = tree.nodes[tree.root].span;
    let reconcile = tree.find_kind(names::SPAN_RECONCILE);
    assert_eq!(reconcile.len(), 1, "one reconcile pass per schedule");
    assert_eq!(
        tree.nodes[reconcile[0]].parent, root_span,
        "reconcile hangs directly under the schedule op"
    );
    let reconcile_span = tree.nodes[reconcile[0]].span;
    for kind in [names::SPAN_MARK_ROUND, names::SPAN_COMMIT_ROUND] {
        let found = tree.find_kind(kind);
        assert_eq!(found.len(), 1, "one {kind} per negotiation");
        assert_eq!(
            tree.nodes[found[0]].parent, reconcile_span,
            "{kind} hangs under the reconcile pass"
        );
    }

    // Critical-path attribution: buckets are exhaustive and exclusive,
    // so they must reconstruct the root wall time — and the root wall
    // time must agree with the externally measured latency within 10%.
    let att = attribute(&tree);
    assert!(att.complete);
    assert_eq!(
        att.sum_us(),
        att.total_us,
        "phase buckets partition the total exactly"
    );
    let drift = att.total_us.abs_diff(measured_us) as f64;
    assert!(
        drift <= 0.10 * measured_us as f64,
        "attributed total {}us vs measured {}us drifts more than 10%",
        att.total_us,
        measured_us
    );
    // The dominant protocol phases actually got charged.
    assert!(att.phase_us("mark_round") > 0);
    assert!(att.phase_us("commit_round") > 0);
}
