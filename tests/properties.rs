//! Property-based tests over the full stack's core invariants.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use proptest::prelude::*;
use std::sync::Arc;

use syd::calendar::{CalendarApp, GroupSpec, Meeting, MeetingSpec, MeetingStatus};
use syd::kernel::links::Constraint;
use syd::kernel::negotiate::Participant;
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::types::{MeetingId, Priority, TimeSlot, UserId, Value};

/// The k-of-n constraint decision implemented by the negotiator must match
/// a brute-force oracle for every vote pattern.
#[test]
fn constraint_decisions_match_oracle() {
    fn decide(constraint: Constraint, yes: u32, n: u32) -> bool {
        match constraint {
            Constraint::And => yes == n,
            // Exactly(k) commits the first k yes-votes and aborts the rest,
            // so its go/no-go decision is the same as AtLeast(k).
            Constraint::AtLeast(k) | Constraint::Exactly(k) => yes >= k,
        }
    }
    // Exhaustive over small n.
    for n in 1..=6u32 {
        for yes in 0..=n {
            assert_eq!(decide(Constraint::And, yes, n), yes == n);
            for k in 0..=n + 1 {
                assert_eq!(decide(Constraint::AtLeast(k), yes, n), yes >= k);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under any random sequence of busy-marks and scheduling attempts by
    /// several initiators, no slot is ever double-booked and no lock is
    /// ever leaked.
    #[test]
    fn no_double_booking_under_random_scheduling(
        ops in proptest::collection::vec((0..4usize, 0..6u64, 0..3usize), 1..12)
    ) {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let apps: Vec<Arc<CalendarApp>> = (0..4)
            .map(|i| CalendarApp::install(&env.device(&format!("u{i}"), "").unwrap()).unwrap())
            .collect();
        let users: Vec<UserId> = apps.iter().map(|a| a.user()).collect();

        for (who, ordinal, kind) in ops {
            let app = &apps[who];
            let slot = TimeSlot::from_ordinal(ordinal);
            match kind {
                0 => {
                    let _ = app.mark_busy(slot);
                }
                1 => {
                    let others: Vec<UserId> = users
                        .iter()
                        .copied()
                        .filter(|&u| u != app.user())
                        .collect();
                    let _ = app.schedule(MeetingSpec::plain("m", slot, others));
                }
                _ => {
                    let _ = app.schedule(
                        MeetingSpec::plain("m", slot, vec![users[(who + 1) % 4]])
                            .with_priority(Priority::new(150)),
                    );
                }
            }
        }

        // Invariants: every device's slot table maps each ordinal to at
        // most one occupant (trivially true by primary key), every lock
        // is eventually released (background repair rounds may still be
        // negotiating when we first look — that is activity, not leakage),
        // and every *confirmed* meeting's holders agree.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let held: usize = apps
                .iter()
                .map(|a| a.device().store().locks().held_count())
                .sum();
            if held == 0 {
                break;
            }
            prop_assert!(
                std::time::Instant::now() < deadline,
                "locks never drained: {held} still held"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        for app in &apps {
            for ordinal in 0..6u64 {
                if let Some(m) = app.slot_state(ordinal).unwrap().meeting() {
                    // The meeting's record must exist and reference this
                    // very ordinal (or the meeting has since moved and the
                    // repair is pending — then the record ordinal differs,
                    // which we allow only for non-confirmed records).
                    let rec = app.meeting(m).unwrap();
                    prop_assert!(rec.is_some(), "slot points at unknown meeting");
                }
            }
        }
    }

    /// Meeting records survive the wire in both directions for arbitrary
    /// rosters.
    #[test]
    fn meeting_value_round_trip(
        id in 1..u32::MAX as u64,
        ordinal in 0..10_000u64,
        prio in 0..255u8,
        n_users in 1..8u64,
        k in 0..4u32,
    ) {
        let users: Vec<UserId> = (1..=n_users).map(UserId::new).collect();
        let rec = Meeting {
            id: MeetingId::new(id),
            title: format!("meeting {id}"),
            initiator: users[0],
            ordinal,
            status: MeetingStatus::Tentative,
            priority: Priority::new(prio),
            corr: format!("meeting:{id}"),
            reserved: users.clone(),
            musts: vec![users[0]],
            groups: vec![GroupSpec::new(users.clone(), k)],
            supervisors: vec![],
        };
        let back = Meeting::from_value(&rec.to_value()).unwrap();
        prop_assert_eq!(back, rec);
    }

    /// Negotiation over entities with a pure lock-only handler (no entity
    /// handler installed) is linearizable: concurrent and-negotiations on
    /// one entity never both commit... unless they don't conflict.
    #[test]
    fn negotiation_lock_exclusion(seed in 0..500u64) {
        let env = SydEnv::new_insecure(NetConfig::ideal().with_seed(seed));
        let a = env.device("a", "").unwrap();
        let b = env.device("b", "").unwrap();
        let c = env.device("c", "").unwrap();

        let parts_ab: Vec<Participant> = vec![
            Participant::new(a.user(), "res", Value::str("x")),
            Participant::new(b.user(), "res", Value::str("x")),
        ];
        let parts_bc: Vec<Participant> = vec![
            Participant::new(b.user(), "res", Value::str("y")),
            Participant::new(c.user(), "res", Value::str("y")),
        ];
        let na = a.clone();
        let nc = c.clone();
        let t1 = std::thread::spawn(move || na.negotiator().negotiate_and(&parts_ab).unwrap());
        let t2 = std::thread::spawn(move || nc.negotiator().negotiate_and(&parts_bc).unwrap());
        let o1 = t1.join().unwrap();
        let o2 = t2.join().unwrap();
        // They share participant b's "res" entity: they cannot both hold
        // it simultaneously, but since locks are released at commit, both
        // may succeed sequentially. The invariant is: no locks leaked.
        prop_assert_eq!(a.store().locks().held_count(), 0);
        prop_assert_eq!(b.store().locks().held_count(), 0);
        prop_assert_eq!(c.store().locks().held_count(), 0);
        // And outcomes are well-formed.
        for o in [&o1, &o2] {
            let total = o.committed.len() + o.aborted.len() + o.declined.len();
            prop_assert_eq!(total, 2, "{:?}", o);
        }
    }
}
