//! The protocol invariant checker against the real system at scale:
//! hundreds of seeded concurrent negotiations on lossy / partitioning
//! networks must leave every §4.3 invariant intact, and a deliberately
//! planted defect must be caught and pinpointed.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use syd::check::Rule;
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd_bench::stress::{
    inject_double_commit, inject_lock_leak, run, Fault, StressConfig, INJECTED_SESSION,
};

/// ≥200 concurrent negotiations under message loss *and* partition
/// churn: after the forced sweep, the audit must be spotless.
#[test]
fn two_hundred_sessions_under_loss_and_partition_audit_clean() {
    let outcome = run(&StressConfig {
        sessions: 200,
        loss: 0.03,
        partition: true,
        seed: 2003,
        ..StressConfig::default()
    });
    assert!(
        outcome.completed + outcome.errors >= 200,
        "driver lost sessions: {outcome:?}"
    );
    assert!(
        outcome.satisfied > 0,
        "nothing ever satisfied — the mix is not exercising commits"
    );
    outcome.report.assert_clean();
}

/// Different seed, heavier loss, no partitions — seeds must not matter
/// to the verdict, only to the mix.
#[test]
fn stress_audit_is_clean_across_seeds() {
    for seed in [7, 99] {
        let outcome = run(&StressConfig {
            sessions: 60,
            loss: 0.05,
            partition: false,
            seed,
            ..StressConfig::default()
        });
        assert!(outcome.report.ok(), "seed {seed}:\n{}", outcome.report);
    }
}

/// A planted lock leak is caught, attributed to its session, and comes
/// with the journal excerpt that proves it.
#[test]
fn injected_lock_leak_is_caught_with_session_and_excerpt() {
    let outcome = run(&StressConfig {
        sessions: 30,
        loss: 0.0,
        partition: false,
        seed: 5,
        inject: Some(Fault::LockLeak),
        ..StressConfig::default()
    });
    let leak = outcome
        .report
        .violations
        .iter()
        .find(|v| v.rule == Rule::LockLeak)
        .unwrap_or_else(|| panic!("leak not reported:\n{}", outcome.report));
    assert_eq!(leak.session, Some(INJECTED_SESSION));
    assert!(
        !leak.excerpt.is_empty(),
        "violation carries no journal excerpt: {leak}"
    );
    assert!(
        leak.excerpt
            .iter()
            .any(|line| line.contains("slot:injected")),
        "excerpt does not show the leaked entity: {:?}",
        leak.excerpt
    );
}

/// A forged double-commit is likewise caught and attributed.
#[test]
fn injected_double_commit_is_caught_with_session_and_excerpt() {
    let outcome = run(&StressConfig {
        sessions: 30,
        loss: 0.0,
        partition: false,
        seed: 6,
        inject: Some(Fault::DoubleCommit),
        ..StressConfig::default()
    });
    let dbl = outcome
        .report
        .violations
        .iter()
        .find(|v| v.rule == Rule::DoubleBook)
        .unwrap_or_else(|| panic!("double-book not reported:\n{}", outcome.report));
    assert_eq!(dbl.session, Some(INJECTED_SESSION));
    assert!(!dbl.excerpt.is_empty());
}

/// The injection helpers also work against a bare deployment (no stress
/// traffic), so postmortem tooling can be exercised in isolation.
#[test]
fn injection_on_quiet_device_is_the_only_violation() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let dev = env.device("quiet", "").unwrap();
    inject_lock_leak(&dev);
    let report = syd::check::audit([&dev]);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(report.violations[0].rule, Rule::LockLeak);

    let env = SydEnv::new_insecure(NetConfig::ideal());
    let dev = env.device("quiet2", "").unwrap();
    inject_double_commit(&dev);
    let report = syd::check::audit([&dev]);
    assert!(
        report.violations.iter().any(|v| v.rule == Rule::DoubleBook),
        "{report}"
    );
}
