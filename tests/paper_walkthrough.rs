//! Step-by-step fidelity walkthroughs: the paper's numbered procedures,
//! asserted against the actual `SyD_*` tables the paper names.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;
use std::time::{Duration, Instant};

use syd::calendar::{CalendarApp, MeetingSpec, MeetingStatus};
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::store::Predicate;
use syd::types::{TimeSlot, Value};

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Replays each device's journal against the §4.3/§4.2 state machines and
/// cross-checks lock tables and the `SyD_WaitingLink` queue.
fn audit_clean(apps: &[&CalendarApp]) {
    wait_for(
        || {
            apps.iter()
                .all(|a| a.device().store().locks().held_count() == 0)
        },
        "locks to drain before the audit",
    );
    syd::check::audit(apps.iter().map(|a| a.device())).assert_clean();
}

/// The link database of §4.2 op. 1: installing a link-enabled application
/// creates exactly the tables the paper names.
#[test]
fn link_database_has_the_papers_tables() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let app = CalendarApp::install(&env.device("phil", "").unwrap()).unwrap();
    let tables = app.device().store().table_names();
    for expected in [
        "SyD_Link",
        "SyD_LinkRef",
        "SyD_WaitingLink",
        "SyD_LinkMethod",
    ] {
        assert!(
            tables.contains(&expected.to_string()),
            "missing {expected}; have {tables:?}"
        );
    }
}

/// §4.4's cancel-meeting procedure, observed through the tables:
///
/// 1. Check to see if there are any associated waiting links.
/// 2. If so, automatically convert status of waiting links from tentative
///    to permanent through SyDEngine.
/// 3. Delete the local link.
/// 4. Invoke deleteLink on the rest of the associated links.
/// 5. Update the calendar database of the user.
/// 6. SyDEngine gets the remote URL of the associated users from the
///    SyDDirectory Service and invokes the necessary method.
/// 7. Repeat steps 1 through 6 for each associated user.
#[test]
fn cancel_meeting_follows_section_4_4() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = CalendarApp::install(&env.device("a", "").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("b", "").unwrap()).unwrap();
    let c = CalendarApp::install(&env.device("c", "").unwrap()).unwrap();
    let slot = TimeSlot::new(2, 10);

    // Meeting 1 (A initiates) holds the slot everywhere; link rows exist
    // at A (forward negotiation-and) and at B/C (back links).
    let m1 = a
        .schedule(MeetingSpec::plain("m1", slot, vec![b.user(), c.user()]))
        .unwrap();
    assert_eq!(m1.status, MeetingStatus::Confirmed);
    let link_rows = |app: &CalendarApp| {
        app.device()
            .store()
            .count("SyD_Link", &Predicate::True)
            .unwrap()
    };
    assert!(link_rows(&a) >= 1, "forward link at A");
    assert!(link_rows(&b) >= 1, "back link at B");
    assert!(link_rows(&c) >= 1, "back link at C");

    // Meeting 2 (B initiates, same slot) is blocked: a *waiting* link is
    // queued at the unavailable participants (SyD_WaitingLink rows).
    let m2 = b
        .schedule(MeetingSpec::plain("m2", slot, vec![a.user(), c.user()]))
        .unwrap();
    assert_eq!(m2.status, MeetingStatus::Tentative);
    let waiting_total: usize = [&a, &b, &c]
        .iter()
        .map(|app| {
            app.device()
                .store()
                .count("SyD_WaitingLink", &Predicate::True)
                .unwrap()
        })
        .sum();
    assert!(waiting_total >= 1, "step 1: waiting links exist somewhere");

    // Cancel meeting 1: steps 2–7 run automatically.
    a.cancel(m1.meeting).unwrap();

    // Step 2: the waiting link was promoted (tentative → permanent) and
    // meeting 2 confirmed with no human action.
    wait_for(
        || b.meeting(m2.meeting).unwrap().unwrap().status == MeetingStatus::Confirmed,
        "step 2: automatic promotion confirms the waiting meeting",
    );

    // Steps 3/4/7: meeting 1's links are gone from *every* device.
    wait_for(
        || {
            [&a, &b, &c].iter().all(|app| {
                app.device()
                    .store()
                    .select("SyD_Link", &Predicate::True)
                    .unwrap()
                    .iter()
                    .all(|row| {
                        row.values[8]
                            .as_str()
                            .map_or(true, |corr| !corr.contains(&m1.meeting.raw().to_string()))
                    })
            })
        },
        "steps 3/4/7: cascade removed meeting 1's links everywhere",
    );

    // Step 5: the calendar databases were updated — the slot now belongs
    // to meeting 2 everywhere.
    for app in [&a, &b, &c] {
        assert_eq!(
            app.slot_state(slot.ordinal()).unwrap().meeting(),
            Some(m2.meeting),
            "step 5 at {}",
            app.user()
        );
    }

    // And the waiting table drained.
    let waiting_after: usize = [&a, &b, &c]
        .iter()
        .map(|app| {
            app.device()
                .store()
                .count("SyD_WaitingLink", &Predicate::True)
                .unwrap()
        })
        .sum();
    assert_eq!(waiting_after, 0, "no residual waiting links");
    audit_clean(&[&a, &b, &c]);
}

/// §4.2 op. 5's exact mechanism: the `SyD_LinkMethod` table holds the
/// coupling rows and the application consults it after executing a method.
#[test]
fn link_method_table_drives_coupled_invocation() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = env.device("a", "").unwrap();
    let b = env.device("b", "").unwrap();
    let svc = syd::types::ServiceName::new("calendar");
    let hits = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let hc = Arc::clone(&hits);
    b.register_service(
        &svc,
        "sync_copy",
        Arc::new(move |_ctx, _args: &[Value]| {
            hc.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(Value::Null)
        }),
    )
    .unwrap();

    a.links()
        .couple_method(&svc, "write_entry", b.user(), &svc, "sync_copy")
        .unwrap();
    // The paper's table exists and holds the row.
    let rows = a
        .store()
        .select("SyD_LinkMethod", &Predicate::True)
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].values[2].as_str().unwrap(), "write_entry");
    assert_eq!(rows[0].values[3].as_i64().unwrap() as u64, b.user().raw());

    // "The application programmer has to include a call to check whether
    // the current method being executed is listed in the SyD_LinkMethod
    // table" — that call:
    let outcomes = a
        .links()
        .invoke_coupled(&svc, "write_entry", vec![Value::str("payload")])
        .unwrap();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].1.is_ok());
    assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
}

/// §5's supervisor narrative, end to end: "as a result of the meeting
/// schedule, A would not be able to establish a negotiation back link from
/// B, but only a subscription back link."
#[test]
fn supervisor_gets_subscription_back_link_only() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = CalendarApp::install(&env.device("a", "").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("b", "").unwrap()).unwrap();
    let d = CalendarApp::install(&env.device("d", "").unwrap()).unwrap();
    let slot = TimeSlot::new(3, 9);
    let outcome = a
        .schedule(
            MeetingSpec::plain("review", slot, vec![b.user(), d.user()])
                .with_supervisors(vec![b.user()]),
        )
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    let kind_of = |app: &CalendarApp| -> Vec<String> {
        app.device()
            .store()
            .select("SyD_Link", &Predicate::True)
            .unwrap()
            .iter()
            .map(|row| row.values[1].as_str().unwrap().to_owned())
            .collect()
    };
    // B (supervisor): subscription back link only.
    assert_eq!(kind_of(&b), vec!["sub".to_string()]);
    // D (ordinary participant): negotiation back link.
    assert!(
        kind_of(&d).contains(&"and".to_string()),
        "{:?}",
        kind_of(&d)
    );
}

/// §5's tentative back-link trigger: "whenever C becomes available …, if
/// the tentative link back to A is of highest priority, it will get
/// triggered" — with two tentative meetings queued on one slot, only the
/// higher-priority one wins the slot when it frees.
#[test]
fn highest_priority_tentative_link_fires_first() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = CalendarApp::install(&env.device("a", "").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("b", "").unwrap()).unwrap();
    let c = CalendarApp::install(&env.device("c", "").unwrap()).unwrap();
    let slot = TimeSlot::new(4, 9);

    // C is personally busy; two meetings want C at that slot with
    // different priorities.
    c.mark_busy(slot).unwrap();
    let low = a
        .schedule(
            MeetingSpec::plain("low", slot, vec![c.user()])
                .with_priority(syd::types::Priority::new(40)),
        )
        .unwrap();
    let high = b
        .schedule(
            MeetingSpec::plain("high", slot, vec![c.user()])
                .with_priority(syd::types::Priority::new(200)),
        )
        .unwrap();
    assert_eq!(low.status, MeetingStatus::Tentative);
    assert_eq!(high.status, MeetingStatus::Tentative);

    // C frees up: the higher-priority availability link fires first and
    // claims C's slot.
    c.free_personal(slot).unwrap();
    wait_for(
        || b.meeting(high.meeting).unwrap().unwrap().status == MeetingStatus::Confirmed,
        "high-priority meeting confirms",
    );
    assert_eq!(
        c.slot_state(slot.ordinal()).unwrap().meeting(),
        Some(high.meeting),
        "C's slot goes to the higher-priority meeting"
    );
    // The low-priority meeting remains tentative (its claim lost).
    assert_eq!(
        a.meeting(low.meeting).unwrap().unwrap().status,
        MeetingStatus::Tentative
    );
    // The leftover waiter (low's claim) must still be well-formed: queued
    // once, tentative, waiting on a live link.
    audit_clean(&[&a, &b, &c]);
}

/// §6: "each user is assigned a priority and each meeting is also assigned
/// a priority" — a user-priority wrapper over meeting priority: an
/// executive's meetings (scheduled via delegation) carry their priority.
#[test]
fn user_priority_flows_through_delegation() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let boss = CalendarApp::install(&env.device("boss", "").unwrap()).unwrap();
    let staff = CalendarApp::install(&env.device("staff", "").unwrap()).unwrap();
    boss.delegate_authority(staff.user(), syd::types::Priority::new(230), None)
        .unwrap();
    let slot = TimeSlot::new(5, 9);
    let outcome = staff
        .schedule_on_behalf_of(boss.user(), MeetingSpec::plain("exec", slot, vec![]))
        .unwrap();
    let rec = staff.meeting(outcome.meeting).unwrap().unwrap();
    assert_eq!(rec.priority, syd::types::Priority::new(230));
    assert!(rec.musts.contains(&boss.user()));
}
