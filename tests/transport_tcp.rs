//! The full stack over real sockets: calendar negotiation on a loopback
//! TCP deployment, transport-aware retry behaviour under killed
//! connections, and the invariant audit staying clean on both.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;
use std::time::{Duration, Instant};

use syd::calendar::{CalendarApp, MeetingSpec, MeetingStatus, SlotState};
use syd::kernel::SydEnv;
use syd::net::{CallOptions, Node, Transport};
use syd::transport::FramedTcpTransport;
use syd::types::{ServiceName, SydError, SydResult, TimeSlot, Value};
use syd::wire::Request;
use syd_telemetry::names;

/// Post-run invariant audit (same protocol as tests/full_stack.rs).
fn audit_clean(devices: &[&syd::kernel::DeviceRuntime]) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while devices.iter().any(|d| d.store().locks().held_count() > 0) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    for d in devices {
        d.sweep_stale_sessions(Duration::ZERO);
    }
    syd::check::audit(devices.iter().copied()).assert_clean();
}

/// The paper's core scenario — schedule a meeting through the §4.3
/// negotiation — with every RPC crossing a real TCP socket, and the
/// protocol audit clean afterwards with zero frame errors.
#[test]
fn meeting_negotiation_over_loopback_tcp() {
    let transport: Arc<dyn Transport> = Arc::new(FramedTcpTransport::loopback());
    let env = SydEnv::new_on(Arc::clone(&transport), Some("tcp-deployment")).unwrap();

    let phil = CalendarApp::install(&env.device("phil", "pw").unwrap()).unwrap();
    let andy = CalendarApp::install(&env.device("andy", "pw").unwrap()).unwrap();

    let outcome = phil
        .schedule(MeetingSpec::plain(
            "tcp standup",
            TimeSlot::new(1, 9),
            vec![andy.user()],
        ))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    // Both calendars agree on the booking.
    for app in [&phil, &andy] {
        assert!(matches!(
            app.slot_state(TimeSlot::new(1, 9).ordinal()).unwrap(),
            SlotState::Reserved(_)
        ));
    }

    audit_clean(&[phil.device(), andy.device()]);

    let metrics = transport.metrics();
    assert_eq!(
        metrics
            .get_counter(names::TRANSPORT_FRAME_ERRORS)
            .unwrap()
            .get(),
        0,
        "clean run must decode every frame"
    );
    assert!(
        metrics.get_counter(names::TRANSPORT_CONNS).unwrap().get() >= 2,
        "negotiation traffic crossed real connections"
    );
}

fn echo_handler() -> Arc<dyn syd::net::RequestHandler> {
    Arc::new(|_from, req: Request| -> SydResult<Value> { Ok(Value::list(req.args.to_vec())) })
}

/// Satellite: a dropped TCP connection surfaces as the same retriable
/// error shape as sim message loss — `is_transient()`, counted in
/// `rpc.timeouts`/`rpc.retries` — and retries recover once the peer is
/// reachable again.
#[test]
fn killed_socket_is_transient_and_retries_recover() {
    let tcp = FramedTcpTransport::loopback();
    let server = Node::spawn_on(&tcp).unwrap();
    server.set_handler(echo_handler());
    let client = Node::spawn_on(&tcp).unwrap();
    let svc = ServiceName::new("echo");

    // Warm connection.
    let v = client
        .call(server.addr(), &svc, "m", vec![Value::I64(1)])
        .unwrap();
    assert_eq!(v, Value::list([Value::I64(1)]));

    // Radio off: the server drops its live sockets and refuses accepts.
    server.link().set_connected(false);
    let opts = CallOptions::new()
        .with_timeout(Duration::from_millis(150))
        .with_retries(2);
    let err = client
        .call_with(server.addr(), &svc, "m", vec![Value::I64(2)], opts)
        .unwrap_err();
    assert!(err.is_transient(), "{err} must be retriable");
    assert!(
        matches!(err, SydError::Timeout(_) | SydError::Disconnected(_)),
        "{err}"
    );
    // Every attempt was accounted: the final failure exhausted retries.
    assert_eq!(client.rpc_retries(), 2);
    assert!(client.rpc_timeouts() >= 1);

    // Radio back on: the same call succeeds through reconnect-with-backoff.
    server.link().set_connected(true);
    let opts = CallOptions::new()
        .with_timeout(Duration::from_millis(500))
        .with_retries(10);
    let v = client
        .call_with(server.addr(), &svc, "m", vec![Value::I64(3)], opts)
        .unwrap();
    assert_eq!(v, Value::list([Value::I64(3)]));

    client.shutdown();
    server.shutdown();
}
