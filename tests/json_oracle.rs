//! Proptest oracle: every JSON artifact the observability plane emits
//! must parse under the strict `syd_bench::json` parser and round-trip
//! its strings byte-for-byte — arbitrary quotes, backslashes, control
//! characters, and non-ASCII included.
//!
//! The parser is deliberately the *other* implementation (schema
//! validation, no serde), so an escaping bug on either side shows up
//! as a parse failure or a mismatched round-trip here.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::collections::HashMap;

use proptest::prelude::*;
use syd::trace::{chrome_trace, AssemblyMode, Collector, SpanRecord};
use syd_bench::json::Json;
use syd_telemetry::{names, EventKind, Journal};

proptest! {
    /// `Journal::to_jsonl` emits one strict-JSON object per line, and
    /// the `detail` string survives the escape/parse round trip.
    #[test]
    fn journal_jsonl_round_trips_arbitrary_details(
        details in proptest::collection::vec(".*", 1..8),
    ) {
        let journal = Journal::new(64);
        for detail in &details {
            journal.record(EventKind::Info, detail.clone());
        }
        let jsonl = journal.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        prop_assert_eq!(lines.len(), details.len(), "one line per event");
        for (line, want) in lines.iter().zip(&details) {
            let parsed = Json::parse(line);
            prop_assert!(parsed.is_ok(), "parse failed: {:?}\nline: {line}", parsed.err());
            let doc = parsed.unwrap();
            prop_assert_eq!(
                doc.get("detail").and_then(Json::as_str),
                Some(want.as_str()),
                "detail must round-trip"
            );
            prop_assert!(doc.get("seq").and_then(Json::as_f64).is_some());
            prop_assert!(doc.get("kind").and_then(Json::as_str).is_some());
        }
    }

    /// The chrome `trace_event` exporter produces one strict-JSON
    /// document; device labels (the only free-form strings in it)
    /// round-trip through the process_name metadata events.
    #[test]
    fn chrome_trace_round_trips_arbitrary_device_labels(
        label in ".*",
        fanout in 1usize..4,
    ) {
        let mut collector = Collector::new(AssemblyMode::Lossy);
        collector.ingest(SpanRecord {
            trace: 7,
            span: 1,
            parent: 0,
            kind: names::SPAN_SCHEDULE,
            device: 1,
            start_us: 0,
            end_us: 1000,
            attrs: vec![("participants", fanout as u64)],
        });
        for i in 0..fanout {
            let span = 2 + i as u64;
            collector.ingest(SpanRecord {
                trace: 7,
                span,
                parent: 1,
                kind: names::SPAN_RPC_CLIENT,
                device: 1,
                start_us: 10,
                end_us: 900,
                attrs: Vec::new(),
            });
            collector.ingest(SpanRecord {
                trace: 7,
                span,
                parent: 0,
                kind: names::SPAN_RPC_SERVER,
                device: 2,
                start_us: 100,
                end_us: 800,
                attrs: Vec::new(),
            });
        }
        let tree = collector.assemble(7).expect("assembles");
        let labels = HashMap::from([(1u64, label.clone())]);
        let doc = chrome_trace(&[tree], &labels);
        let result = Json::parse(&doc);
        prop_assert!(result.is_ok(), "parse failed: {:?}\ndoc: {doc}", result.err());
        let parsed = result.unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 1 root + fanout clients + fanout server views, plus one
        // process_name metadata event per device.
        let x_events = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .count();
        prop_assert_eq!(x_events, 1 + 2 * fanout);
        let meta_name = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("M")
                    && e.get("pid").and_then(Json::as_f64) == Some(1.0)
            })
            .and_then(|e| e.get("args"))
            .and_then(|a| a.get("name"))
            .and_then(Json::as_str);
        prop_assert_eq!(meta_name, Some(label.as_str()), "label must round-trip");
    }
}
