//! Cross-crate integration tests: the full SyD runtime environment of
//! Figure 2 — all three applications on one authenticated deployment,
//! under realistic (lossy, slow) network conditions, with failure
//! injection.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;
use std::time::{Duration, Instant};

use syd::bidding::{Host, Player};
use syd::calendar::{CalendarApp, MeetingSpec, MeetingStatus};
use syd::fleet::{deploy_fleet, Position};
use syd::kernel::SydEnv;
use syd::net::{LatencyModel, NetConfig};
use syd::types::{Priority, SydError, TimeSlot, UserId, Value};

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Post-run protocol invariant audit: waits briefly for in-flight lock
/// handoffs, forces the lost-message sweep (test traffic is over, so any
/// surviving lock is stale by definition), then replays every journal.
fn audit_clean(devices: &[&syd::kernel::DeviceRuntime]) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while devices.iter().any(|d| d.store().locks().held_count() > 0) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    for d in devices {
        d.sweep_stale_sessions(Duration::ZERO);
    }
    syd::check::audit(devices.iter().copied()).assert_clean();
}

/// Figure 2: calendar, fleet and bidding share one kernel deployment.
#[test]
fn three_applications_share_one_deployment() {
    let env = SydEnv::new(NetConfig::ideal(), "figure-2");

    // Calendar users.
    let phil = CalendarApp::install(&env.device("phil", "pw").unwrap()).unwrap();
    let andy = CalendarApp::install(&env.device("andy", "pw").unwrap()).unwrap();

    // Fleet.
    let (dispatcher, vehicles) = deploy_fleet(&env, 2).unwrap();

    // Bidding.
    let host = Host::install(&env.device("host", "pw").unwrap()).unwrap();
    let p1_dev = env.device("bidder1", "pw").unwrap();
    let p1 = Player::install(&p1_dev, Arc::new(|_| Some(500))).unwrap();

    // All three work concurrently against the same directory/network.
    let outcome = phil
        .schedule(MeetingSpec::plain(
            "m",
            TimeSlot::new(1, 9),
            vec![andy.user()],
        ))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    vehicles[0].move_to(Position { x: 1.0, y: 2.0 }).unwrap();
    wait_for(|| dispatcher.board().len() == 1, "fleet board");

    let round = host.run_round(&[p1.user()], "kettle", 600).unwrap();
    assert_eq!(round.winner, Some(p1.user()));

    audit_clean(&[phil.device(), andy.device(), &p1_dev]);
}

/// §5.4 end to end: every request authenticated; a device with broken
/// credentials is locked out of every service.
#[test]
fn authentication_gates_every_service() {
    let env = SydEnv::new(NetConfig::ideal(), "secure-deployment");
    let phil = CalendarApp::install(&env.device("phil", "pw-phil").unwrap()).unwrap();
    let andy = CalendarApp::install(&env.device("andy", "pw-andy").unwrap()).unwrap();

    // Works while credentials are intact.
    let outcome = phil
        .schedule(MeetingSpec::plain(
            "m",
            TimeSlot::new(1, 10),
            vec![andy.user()],
        ))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    // Break phil's credential blob: every remote operation now fails
    // authentication at the peer.
    phil.device()
        .node()
        .set_identity(phil.user(), vec![1, 2, 3]);
    let err = phil
        .device()
        .engine()
        .invoke(
            andy.user(),
            &syd::types::ServiceName::new("calendar"),
            "free_slots",
            vec![Value::from(0u64), Value::from(24u64)],
        )
        .unwrap_err();
    assert!(matches!(err, SydError::AuthFailed(_)), "{err}");
}

/// The calendar survives a slow, lossy wireless LAN: reconcile repairs
/// whatever individual messages lost.
#[test]
fn calendar_on_lossy_wireless_lan() {
    let cfg = NetConfig {
        latency: LatencyModel::fixed(Duration::from_millis(1)),
        loss: 0.02,
        seed: 99,
        fail_fast_disconnected: true,
    };
    let env = SydEnv::new(cfg, "lossy");
    let a = CalendarApp::install(&env.device("a", "pw").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("b", "pw").unwrap()).unwrap();
    let c = CalendarApp::install(&env.device("c", "pw").unwrap()).unwrap();

    let slot = TimeSlot::new(1, 9);
    let outcome = a
        .schedule(MeetingSpec::plain("m", slot, vec![b.user(), c.user()]))
        .unwrap();
    // Individual messages may have been lost, leaving the meeting
    // tentative; repair rounds must converge to confirmed.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut status = outcome.status;
    while status != MeetingStatus::Confirmed {
        assert!(Instant::now() < deadline, "never converged: {status:?}");
        std::thread::sleep(Duration::from_millis(50));
        status = a.reconcile(outcome.meeting).unwrap();
    }
    for app in [&a, &b, &c] {
        assert_eq!(
            app.slot_state(slot.ordinal()).unwrap().meeting(),
            Some(outcome.meeting)
        );
    }
    // Loss may have stranded participant locks; the audit tolerates only
    // what the sweep can still clean up.
    audit_clean(&[a.device(), b.device(), c.device()]);
}

/// A network partition during negotiation aborts cleanly: no dangling
/// locks, no half-committed reservations on the reachable side once the
/// coordinator aborts.
#[test]
fn partition_during_negotiation_aborts_cleanly() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = CalendarApp::install(&env.device("a", "").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("b", "").unwrap()).unwrap();
    let c = CalendarApp::install(&env.device("c", "").unwrap()).unwrap();

    // Cut A off from C before scheduling.
    env.network()
        .set_partitioned(a.device().addr(), c.device().addr(), true);

    let slot = TimeSlot::new(2, 9);
    let outcome = a
        .schedule(MeetingSpec::plain("m", slot, vec![b.user(), c.user()]))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Tentative);
    assert!(outcome.pending.contains(&c.user()));
    // B reserved; C untouched; no locks left anywhere.
    assert_eq!(
        b.slot_state(slot.ordinal()).unwrap().meeting(),
        Some(outcome.meeting)
    );
    assert!(c.slot_state(slot.ordinal()).unwrap().is_free());
    for app in [&a, &b, &c] {
        assert_eq!(app.device().store().locks().held_count(), 0);
    }

    // Heal; repair converges.
    env.network().heal_partitions();
    let status = a.reconcile(outcome.meeting).unwrap();
    assert_eq!(status, MeetingStatus::Confirmed);
    audit_clean(&[a.device(), b.device(), c.device()]);
}

/// A participant's device crash mid-lifecycle doesn't corrupt the others:
/// the meeting cancels cleanly around the dead device.
#[test]
fn cancel_with_crashed_participant_cleans_survivors() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = CalendarApp::install(&env.device("a", "").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("b", "").unwrap()).unwrap();
    let c = CalendarApp::install(&env.device("c", "").unwrap()).unwrap();

    let slot = TimeSlot::new(3, 9);
    let outcome = a
        .schedule(MeetingSpec::plain("m", slot, vec![b.user(), c.user()]))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    // C's device dies (no proxy).
    c.device().disconnect().unwrap();
    a.cancel(outcome.meeting).unwrap();

    // Survivors are fully cleaned.
    assert!(a.slot_state(slot.ordinal()).unwrap().is_free());
    assert!(b.slot_state(slot.ordinal()).unwrap().is_free());
    assert_eq!(a.device().links().count().unwrap(), 0);
    assert_eq!(b.device().links().count().unwrap(), 0);

    // C still believes in the meeting (stale mobile state, as the paper
    // tolerates); when it reconnects, its slot is stale but harmless — a
    // fresh meeting on the same slot bumps-by-priority or the user frees
    // it manually. Here we just verify C's device is intact.
    c.device().reconnect().unwrap();
    assert_eq!(
        c.slot_state(slot.ordinal()).unwrap().meeting(),
        Some(outcome.meeting)
    );
    audit_clean(&[a.device(), b.device(), c.device()]);
}

/// Store snapshots capture a calendar device's full state and restore it.
#[test]
fn calendar_device_snapshot_round_trip() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = CalendarApp::install(&env.device("a", "").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("b", "").unwrap()).unwrap();
    let slot = TimeSlot::new(4, 10);
    let outcome = a
        .schedule(MeetingSpec::plain("m", slot, vec![b.user()]))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    let snapshot = a.device().store().snapshot();
    let restored = syd::store::Store::from_snapshot(&snapshot).unwrap();
    // Slots, meetings and link tables all made it.
    assert_eq!(restored.row_count("slots").unwrap(), 1);
    assert_eq!(restored.row_count("meetings").unwrap(), 1);
    assert_eq!(restored.row_count("SyD_Link").unwrap(), 1);
    let row = restored
        .get_by_key("slots", &[Value::from(slot.ordinal())])
        .unwrap()
        .unwrap();
    assert_eq!(row.values[1], Value::str("conf"));
}

/// Engine group invocation scales to a large group in one round trip
/// (everyone answers concurrently, not serially).
#[test]
fn group_invocation_is_concurrent() {
    let cfg = NetConfig::ideal().with_latency(LatencyModel::fixed(Duration::from_millis(20)));
    let env = SydEnv::new_insecure(cfg);
    let coordinator = CalendarApp::install(&env.device("coord", "").unwrap()).unwrap();
    let apps: Vec<Arc<CalendarApp>> = (0..8)
        .map(|i| CalendarApp::install(&env.device(&format!("p{i}"), "").unwrap()).unwrap())
        .collect();
    let users: Vec<UserId> = apps.iter().map(|a| a.user()).collect();

    let started = Instant::now();
    let result = coordinator.device().engine().invoke_group(
        &users,
        &syd::types::ServiceName::new("calendar"),
        "free_slots",
        vec![Value::from(0u64), Value::from(24u64)],
    );
    let elapsed = started.elapsed();
    assert!(result.all_ok());
    // Serial execution would need 8 × 2 × 20 ms = 320 ms; concurrent
    // fan-out needs one round trip plus slack.
    assert!(
        elapsed < Duration::from_millis(200),
        "group call took {elapsed:?}, looks serial"
    );
}

/// Priorities order a bump chain deterministically: highest priority ends
/// up holding the contested slot.
#[test]
fn bump_chain_resolves_by_priority() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = CalendarApp::install(&env.device("a", "").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("b", "").unwrap()).unwrap();
    let c = CalendarApp::install(&env.device("c", "").unwrap()).unwrap();
    let slot = TimeSlot::new(5, 9);

    let low = a
        .schedule(MeetingSpec::plain("low", slot, vec![b.user()]).with_priority(Priority::new(10)))
        .unwrap();
    let mid = b
        .schedule(MeetingSpec::plain("mid", slot, vec![c.user()]).with_priority(Priority::new(100)))
        .unwrap();
    assert_eq!(mid.status, MeetingStatus::Confirmed);
    let high = c
        .schedule(
            MeetingSpec::plain("high", slot, vec![b.user()]).with_priority(Priority::new(200)),
        )
        .unwrap();
    assert_eq!(high.status, MeetingStatus::Confirmed);

    // The highest priority meeting holds the slot at its participants.
    assert_eq!(
        b.slot_state(slot.ordinal()).unwrap().meeting(),
        Some(high.meeting)
    );
    assert_eq!(
        c.slot_state(slot.ordinal()).unwrap().meeting(),
        Some(high.meeting)
    );
    // The bumped meetings rescheduled themselves elsewhere.
    wait_for(
        || {
            a.meeting(low.meeting).unwrap().is_some_and(|m| {
                m.status == MeetingStatus::Confirmed && m.ordinal != slot.ordinal()
            })
        },
        "low meeting rescheduled",
    );
    wait_for(
        || {
            b.meeting(mid.meeting).unwrap().is_some_and(|m| {
                m.status == MeetingStatus::Confirmed && m.ordinal != slot.ordinal()
            })
        },
        "mid meeting rescheduled",
    );
    audit_clean(&[a.device(), b.device(), c.device()]);
}

/// The directory's dynamic groups drive group invocations end to end.
#[test]
fn dynamic_groups_resolve_members() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = CalendarApp::install(&env.device("a", "").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("b", "").unwrap()).unwrap();
    let c = CalendarApp::install(&env.device("c", "").unwrap()).unwrap();

    let dir = env.directory_client();
    let committee = dir.create_group("committee").unwrap();
    dir.group_add(committee, b.user()).unwrap();
    dir.group_add(committee, c.user()).unwrap();

    let members = dir.group_members(committee).unwrap();
    assert_eq!(members, vec![b.user(), c.user()]);

    // Schedule with the resolved group.
    let outcome = a
        .schedule(MeetingSpec::plain(
            "committee sync",
            TimeSlot::new(6, 10),
            members,
        ))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);
    assert_eq!(outcome.reserved.len(), 3);

    // Membership changes dynamically.
    dir.group_remove(committee, c.user()).unwrap();
    assert_eq!(dir.group_members(committee).unwrap(), vec![b.user()]);
}

/// Method coupling (§4.2 op. 5) across applications: a calendar update on
/// one device triggers a coupled method on another.
#[test]
fn coupled_methods_fire_on_invocation() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = env.device("a", "").unwrap();
    let b = env.device("b", "").unwrap();
    let svc = syd::types::ServiceName::new("calendar");
    let hits = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let hc = Arc::clone(&hits);
    b.register_service(
        &svc,
        "on_peer_update",
        Arc::new(move |_ctx, _args: &[Value]| {
            hc.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(Value::Null)
        }),
    )
    .unwrap();

    a.links()
        .couple_method(&svc, "local_update", b.user(), &svc, "on_peer_update")
        .unwrap();
    // The application executes its local method, then consults the
    // SyD_LinkMethod table, exactly as §4.2 prescribes.
    let results = a
        .links()
        .invoke_coupled(&svc, "local_update", vec![Value::str("payload")])
        .unwrap();
    assert_eq!(results.len(), 1);
    assert!(results[0].1.is_ok());
    assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
}
