//! The price-is-right bidding game (Figure 2): group invocation with
//! result aggregation, played "at an airport or a mall".
//!
//! ```sh
//! cargo run --example price_is_right
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use std::sync::Arc;

use rand::{Rng, SeedableRng};
use syd::bidding::{BidStrategy, Host, Player};
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::types::UserId;

fn main() {
    let env = SydEnv::new(NetConfig::wireless_lan(), "mall passphrase");
    let host = Host::install(&env.device("host", "pw").unwrap()).unwrap();

    // Six players with different guessing styles.
    let mut players = Vec::new();
    for i in 0..6 {
        let device = env.device(&format!("shopper{i}"), "pw").unwrap();
        let seed = 42 + i as u64;
        let strategy: BidStrategy = Arc::new(move |item: &str| {
            // Deterministic per-player noise around a rough idea of value.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ item.len() as u64);
            let base: u64 = 1000 + 150 * item.len() as u64;
            Some(rng.gen_range(base / 2..base * 3 / 2))
        });
        players.push(Player::install(&device, strategy).unwrap());
    }
    let users: Vec<UserId> = players.iter().map(|p| p.user()).collect();

    let items = [
        ("toaster", 1899u64),
        ("espresso machine", 4999),
        ("umbrella", 1299),
        ("headphones", 3499),
        ("desk lamp", 1599),
    ];
    for (item, price) in items {
        let result = host.run_round(&users, item, price).unwrap();
        println!("round {}: {item} (actual {price})", result.round);
        for (user, bid) in &result.bids {
            match bid {
                Some(b) => println!("  {user} bid {b}"),
                None => println!("  {user} sat out"),
            }
        }
        match result.winner {
            Some(w) => println!("  -> winner: {w}"),
            None => println!("  -> everyone overbid, no winner"),
        }
    }

    println!("\nfinal scores:");
    for (player, wins) in host.scores().unwrap() {
        println!("  {player}: {wins} wins");
    }
}
