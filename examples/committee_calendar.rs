//! The full §5 committee-calendar walkthrough: tentative meetings,
//! automatic confirmation, priority bumping with auto-rescheduling,
//! supervisors, and quorum scheduling with OR-groups.
//!
//! ```sh
//! cargo run --example committee_calendar
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use std::time::{Duration, Instant};

use syd::calendar::{CalendarApp, GroupSpec, MeetingSpec, MeetingStatus};
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::types::{MeetingId, Priority, TimeSlot, UserId};

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn status(app: &CalendarApp, id: MeetingId) -> MeetingStatus {
    app.meeting(id).unwrap().unwrap().status
}

fn main() {
    let env = SydEnv::new(NetConfig::ideal(), "committee passphrase");

    // The cast: A (initiator), B (supervisor), C, D, plus the Biology and
    // Physics faculties.
    let a = CalendarApp::install(&env.device("A", "pw").unwrap()).unwrap();
    let b = CalendarApp::install(&env.device("B", "pw").unwrap()).unwrap();
    let c = CalendarApp::install(&env.device("C", "pw").unwrap()).unwrap();
    let d = CalendarApp::install(&env.device("D", "pw").unwrap()).unwrap();
    let biology: Vec<_> = (0..4)
        .map(|i| CalendarApp::install(&env.device(&format!("bio{i}"), "pw").unwrap()).unwrap())
        .collect();
    let physics: Vec<_> = (0..3)
        .map(|i| CalendarApp::install(&env.device(&format!("phy{i}"), "pw").unwrap()).unwrap())
        .collect();

    // ── Scene 1: C is busy, so the meeting is only tentative ────────────
    let slot = TimeSlot::new(2, 14);
    c.mark_busy(slot).unwrap();
    let m1 = a
        .schedule(MeetingSpec::plain(
            "weekly sync",
            slot,
            vec![b.user(), c.user(), d.user()],
        ))
        .unwrap();
    println!(
        "scene 1: scheduled at {slot} -> {:?}, waiting on {:?}",
        m1.status, m1.pending
    );
    assert_eq!(m1.status, MeetingStatus::Tentative);

    // C's appointment ends early: the availability link fires and the
    // meeting confirms with no human involvement.
    c.free_personal(slot).unwrap();
    wait_until(
        || status(&a, m1.meeting) == MeetingStatus::Confirmed,
        "automatic confirmation",
    );
    println!("scene 1: C freed up -> meeting auto-confirmed ✓");

    // ── Scene 2: an executive meeting bumps it ──────────────────────────
    let m2 = d
        .schedule(
            MeetingSpec::plain("board escalation", slot, vec![a.user(), c.user()])
                .with_priority(Priority::new(220)),
        )
        .unwrap();
    println!("scene 2: high-priority meeting -> {:?}", m2.status);
    assert_eq!(m2.status, MeetingStatus::Confirmed);

    // The bumped weekly sync automatically reschedules itself.
    wait_until(
        || {
            a.meeting(m1.meeting).unwrap().is_some_and(|m| {
                m.ordinal != slot.ordinal() && m.status == MeetingStatus::Confirmed
            })
        },
        "auto-rescheduling of the bumped meeting",
    );
    let moved = a.meeting(m1.meeting).unwrap().unwrap();
    println!(
        "scene 2: weekly sync bumped and auto-rescheduled to ordinal {} ✓",
        moved.ordinal
    );

    // ── Scene 3: supervisor B changes his schedule at will ──────────────
    let slot3 = TimeSlot::new(3, 9);
    let m3 = a
        .schedule(
            MeetingSpec::plain("exec review", slot3, vec![b.user(), c.user()])
                .with_supervisors(vec![b.user()]),
        )
        .unwrap();
    assert_eq!(m3.status, MeetingStatus::Confirmed);
    b.supervisor_change(m3.meeting, Some(slot3)).unwrap();
    wait_until(
        || status(&a, m3.meeting) == MeetingStatus::Tentative,
        "degrade to tentative",
    );
    println!("scene 3: supervisor walked away -> meeting tentative ✓");
    b.free_personal(slot3).unwrap();
    wait_until(
        || status(&a, m3.meeting) == MeetingStatus::Confirmed,
        "re-confirmation",
    );
    println!("scene 3: supervisor free again -> meeting re-confirmed ✓");

    // ── Scene 4: quorum scheduling (50% of Biology, ≥2 of Physics) ──────
    let slot4 = TimeSlot::new(4, 11);
    let bio_users: Vec<UserId> = biology.iter().map(|x| x.user()).collect();
    let phy_users: Vec<UserId> = physics.iter().map(|x| x.user()).collect();
    biology[0].mark_busy(slot4).unwrap();
    biology[1].mark_busy(slot4).unwrap();
    let m4 = a
        .schedule(
            MeetingSpec::plain("faculty meeting", slot4, vec![b.user(), c.user()])
                .with_group(GroupSpec::new(bio_users.clone(), 2))
                .with_group(GroupSpec::new(phy_users.clone(), 2)),
        )
        .unwrap();
    println!(
        "scene 4: quorum meeting -> {:?} ({} reserved, {} pending)",
        m4.status,
        m4.reserved.len(),
        m4.pending.len()
    );
    assert_eq!(m4.status, MeetingStatus::Confirmed);

    // A physicist wants out — allowed only because the quorum holds.
    let granted = physics[0].leave(m4.meeting).unwrap();
    println!("scene 4: physicist leave request granted: {granted}");
    let rec = a.meeting(m4.meeting).unwrap().unwrap();
    assert!(rec.constraints_satisfied());

    // ── Scene 5: cancel cascades and auto-promotes a waiting meeting ────
    let slot5 = TimeSlot::new(5, 15);
    let first = a
        .schedule(MeetingSpec::plain("first", slot5, vec![c.user(), d.user()]))
        .unwrap();
    let second = c
        .schedule(MeetingSpec::plain(
            "second",
            slot5,
            vec![a.user(), d.user()],
        ))
        .unwrap();
    assert_eq!(second.status, MeetingStatus::Tentative);
    a.cancel(first.meeting).unwrap();
    wait_until(
        || status(&c, second.meeting) == MeetingStatus::Confirmed,
        "waiting meeting auto-confirms after cancellation",
    );
    println!("scene 5: cancel cascaded, waiting meeting auto-confirmed ✓");

    println!("\nmail received by C:");
    for mail in c.mailbox().inbox().unwrap() {
        println!("  [{}] {}", mail.from, mail.subject);
    }
    println!("\nall scenes completed");
}
