//! Quickstart: three users, one meeting, one cancellation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use syd::calendar::{CalendarApp, MeetingSpec, MeetingStatus};
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::types::{SlotRange, TimeSlot};

fn main() {
    // A deployment = simulated wireless LAN + name server + TEA auth.
    let env = SydEnv::new(NetConfig::wireless_lan(), "quickstart passphrase");

    // Three users, each with a calendar database on their own device.
    let phil = CalendarApp::install(&env.device("phil", "pw-phil").unwrap()).unwrap();
    let andy = CalendarApp::install(&env.device("andy", "pw-andy").unwrap()).unwrap();
    let suzy = CalendarApp::install(&env.device("suzy", "pw-suzy").unwrap()).unwrap();

    // Suzy has a dentist appointment on day 1 at 10:00.
    suzy.mark_busy(TimeSlot::new(1, 10)).unwrap();

    // Phil looks for a common slot on day 1 between 09:00 and 13:00.
    let everyone = vec![phil.user(), andy.user(), suzy.user()];
    let common = phil
        .find_common_slots(
            &everyone,
            SlotRange::new(TimeSlot::new(1, 9), TimeSlot::new(1, 13)),
        )
        .unwrap();
    println!("common free slots: {common:?}");

    // Schedule into the first common slot.
    let slot = common[0];
    let outcome = phil
        .schedule(MeetingSpec::plain(
            "project sync",
            slot,
            vec![andy.user(), suzy.user()],
        ))
        .unwrap();
    println!(
        "scheduled `{:?}` at {slot}: {:?} (reserved: {:?})",
        outcome.meeting, outcome.status, outcome.reserved
    );
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    // Everyone's own calendar shows the reservation.
    for app in [&phil, &andy, &suzy] {
        println!(
            "{}: slot {slot} -> {:?}",
            app.user(),
            app.slot_state(slot.ordinal()).unwrap()
        );
    }

    // Phil cancels; links cascade and all calendars free up.
    phil.cancel(outcome.meeting).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    for app in [&phil, &andy, &suzy] {
        assert!(app.slot_state(slot.ordinal()).unwrap().is_free());
    }
    println!("meeting cancelled, all slots free again");

    // The e-mail trail (§5.1).
    for mail in andy.mailbox().inbox().unwrap() {
        println!("andy's inbox: [{}] {}", mail.from, mail.subject);
    }
}
