//! Mobility support through proxies (§5.2): a device drops off the
//! wireless network, its proxy transparently serves in its place, and on
//! reconnect the device "takes over the proxy" by replaying the journal.
//!
//! ```sh
//! cargo run --example proxy_failover
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use std::sync::Arc;
use std::time::{Duration, Instant};

use syd::kernel::proxy::{enable_replication, proxy_service, replay_journal, ProxyMethod};
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::store::{Column, ColumnType, Predicate, Schema, Store};
use syd::types::{ServiceName, TimeSlot, Value};

fn slots_schema() -> Schema {
    Schema::new(
        "slots",
        vec![
            Column::required("ordinal", ColumnType::I64),
            Column::required("status", ColumnType::Str),
        ],
        &["ordinal"],
    )
    .unwrap()
}

fn main() {
    let env = SydEnv::new(NetConfig::wireless_lan(), "proxy passphrase");
    let phil = env.device("phil", "pw-phil").unwrap();
    let andy = env.device("andy", "pw-andy").unwrap();
    // The proxy lives on an application-service-provider machine (§3.2).
    let proxy = env.proxy("asp-proxy", "pw-proxy").unwrap();
    let svc = ServiceName::new("slots");

    // Phil's primary store and a tiny slots service.
    phil.store().create_table(slots_schema()).unwrap();
    {
        let store = phil.store().clone();
        phil.register_service(
            &svc,
            "get",
            Arc::new(move |_ctx, args: &[Value]| {
                let ordinal = args[0].as_i64()?;
                Ok(store
                    .get_by_key("slots", &[Value::I64(ordinal)])?
                    .map_or(Value::str("free"), |row| row.values[1].clone()))
            }),
        )
        .unwrap();
    }

    // The proxy hosts a replica of Phil's database and serves the same
    // service — including writes, which it journals.
    let get: ProxyMethod = Arc::new(|_ctx, store: &Store, args: &[Value]| {
        let ordinal = args[0].as_i64()?;
        Ok(store
            .get_by_key("slots", &[Value::I64(ordinal)])?
            .map_or(Value::str("free"), |row| row.values[1].clone()))
    });
    let set: ProxyMethod = Arc::new(|_ctx, store: &Store, args: &[Value]| {
        let ordinal = args[0].as_i64()?;
        let status = args[1].as_str()?;
        if store.get_by_key("slots", &[Value::I64(ordinal)])?.is_some() {
            store.update(
                "slots",
                &Predicate::Eq("ordinal".into(), Value::I64(ordinal)),
                &[("status".into(), Value::str(status))],
            )?;
        } else {
            store.insert("slots", vec![Value::I64(ordinal), Value::str(status)])?;
        }
        Ok(Value::Null)
    });
    proxy
        .host_user(phil.user(), |store| {
            store.create_table(slots_schema())?;
            Ok(vec![
                ((svc.clone(), "get".to_owned()), get),
                ((svc.clone(), "set".to_owned()), set),
            ])
        })
        .unwrap();
    enable_replication(&phil, proxy.addr(), &["slots"]).unwrap();

    // Phil books a slot; replication keeps the proxy warm.
    let slot = TimeSlot::new(1, 9);
    phil.store()
        .insert(
            "slots",
            vec![Value::from(slot.ordinal()), Value::str("dentist")],
        )
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    while proxy
        .replica_store(phil.user())
        .unwrap()
        .row_count("slots")
        .unwrap()
        == 0
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("replica warm: proxy mirrors phil's booking");

    // Phil's iPAQ goes out of range…
    phil.disconnect().unwrap();
    println!("phil disconnected");

    // …but Andy's queries still work: the directory silently routes to
    // the proxy ("the proxy and the SyD object act as a single entity").
    let status = andy
        .engine()
        .invoke(phil.user(), &svc, "get", vec![Value::from(slot.ordinal())])
        .unwrap();
    println!("andy reads phil's calendar via proxy: {status}");

    // Andy even books a new slot; the proxy journals the write.
    andy.engine()
        .invoke(
            phil.user(),
            &svc,
            "set",
            vec![
                Value::from(TimeSlot::new(1, 15).ordinal()),
                Value::str("sync with andy"),
            ],
        )
        .unwrap();
    println!(
        "andy wrote through the proxy (journal: {} op)",
        proxy.journal_len(phil.user())
    );

    // Phil comes back: drain the journal and take over.
    phil.reconnect().unwrap();
    let ops = phil
        .node()
        .call(
            proxy.addr(),
            &proxy_service(),
            "drain_journal",
            vec![Value::from(phil.user().raw())],
        )
        .unwrap()
        .into_list()
        .unwrap();
    let applied = replay_journal(phil.store(), &ops).unwrap();
    println!("phil reconnected and replayed {applied} journaled op(s)");

    let status = phil
        .store()
        .get_by_key("slots", &[Value::from(TimeSlot::new(1, 15).ordinal())])
        .unwrap()
        .unwrap();
    println!("phil's own database now shows: {}", status.values[1]);
}
