//! Two OS processes negotiate a meeting over loopback TCP.
//!
//! This is the paper's deployment story with real process isolation: a
//! `sydd` daemon (spawned as a child process) hosts the SyDDirectory and
//! Andy's calendar device; this process mints Phil's device against the
//! *remote* directory and schedules a meeting with Andy. Every directory
//! lookup, lock, vote and commit of the §4.3 negotiation crosses a real
//! TCP socket — no shared memory, no in-process router.
//!
//! Run with `cargo run --example two_process_fleet` (builds `sydd`
//! automatically; set `SYDD_BIN` to point at the daemon explicitly).
//!
//! Both processes finish with a clean protocol-invariant audit.

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use std::io::{BufRead, BufReader, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use syd::calendar::{CalendarApp, MeetingSpec, MeetingStatus};
use syd::kernel::DeviceRuntime;
use syd::transport::FramedTcpTransport;
use syd::types::{NodeAddr, SystemClock, TimeSlot, UserId};

/// Phil's identity in this process. `sydd` mints its users from 1
/// upwards, so a high fixed id keeps the two processes' id spaces
/// disjoint.
const PHIL: UserId = UserId::new(100);

fn sydd_binary() -> PathBuf {
    if let Ok(path) = std::env::var("SYDD_BIN") {
        return PathBuf::from(path);
    }
    // examples live in target/<profile>/examples/; sydd sits one level up.
    let mut path = std::env::current_exe().expect("current_exe");
    path.pop();
    path.pop();
    path.push("sydd");
    path
}

fn spawn_sydd() -> (
    Child,
    BufReader<std::process::ChildStdout>,
    NodeAddr,
    UserId,
) {
    let bin = sydd_binary();
    let mut child = Command::new(&bin)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|err| panic!("cannot spawn {}: {err}", bin.display()));
    let mut stdout = BufReader::new(child.stdout.take().expect("sydd stdout"));
    let mut ready = String::new();
    stdout.read_line(&mut ready).expect("sydd stdout read");
    let mut parts = ready.split_whitespace();
    assert_eq!(parts.next(), Some("READY"), "unexpected banner: {ready}");
    let dir_addr = NodeAddr::new(parts.next().expect("dir addr").parse().expect("dir addr"));
    let host_user = UserId::new(parts.next().expect("host user").parse().expect("host user"));
    (child, stdout, dir_addr, host_user)
}

fn main() {
    // Process 1: the fleet host — directory + Andy's device.
    let (mut sydd, mut sydd_out, dir_addr, andy) = spawn_sydd();
    println!("sydd up: directory at {dir_addr}, host user {andy}");

    // Process 2 (this one): Phil's device, registered with the remote
    // directory over TCP.
    let tcp = FramedTcpTransport::loopback();
    let phil_device = DeviceRuntime::new(
        &tcp,
        dir_addr,
        PHIL,
        "phil",
        None,
        Arc::new(SystemClock::new()),
    )
    .expect("mint phil against remote directory");
    phil_device.node().set_identity(PHIL, Vec::new());
    let phil = CalendarApp::install(&phil_device).expect("install calendar");

    // The §4.3 negotiation, across the process boundary.
    let slot = TimeSlot::new(2, 10);
    let outcome = phil
        .schedule(MeetingSpec::plain("cross-process sync", slot, vec![andy]))
        .expect("schedule meeting");
    assert_eq!(outcome.status, MeetingStatus::Confirmed, "{outcome:?}");
    println!("meeting {:?} confirmed at day 2, slot 10", outcome.meeting);

    // Tracing quickstart: with SYD_TRACE_OUT set, dump this process's
    // span trees as a chrome trace_event file (open it in Perfetto or
    // chrome://tracing). Andy's and the directory's halves of each RPC
    // live inside the sydd process, so assembly runs in lossy mode and
    // flags those trees incomplete — the client spans and transport
    // queueing gaps are still all visible.
    if let Ok(path) = std::env::var("SYD_TRACE_OUT") {
        let mut collector = syd::trace::Collector::new(syd::trace::AssemblyMode::Lossy);
        collector.drain_global();
        let (trees, _) = collector.assemble_all();
        let doc = syd::trace::chrome_trace(&trees, collector.labels());
        std::fs::write(&path, doc).expect("write trace file");
        println!("phil: wrote {} span trees to {path}", trees.len());
    }

    // Audit this process's device…
    let deadline = Instant::now() + Duration::from_secs(2);
    while phil_device.store().locks().held_count() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    phil_device.sweep_stale_sessions(Duration::ZERO);
    syd::check::audit([&phil_device]).assert_clean();
    println!("phil: audit clean");

    // …and ask sydd to audit its side and exit.
    let mut stdin = sydd.stdin.take().expect("sydd stdin");
    writeln!(stdin, "exit").expect("signal sydd");
    drop(stdin);
    let verdict = {
        let mut line = String::new();
        sydd_out.read_line(&mut line).expect("sydd verdict");
        line.trim().to_string()
    };
    let status = sydd.wait().expect("sydd exit status");
    assert_eq!(verdict, "AUDIT_OK", "sydd audit failed");
    assert!(status.success(), "sydd exited with {status}");
    println!("andy: audit clean — two processes, one confirmed meeting");
}
