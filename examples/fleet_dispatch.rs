//! The SyDFleet application (Figure 2): position tracking over
//! subscription links, group queries, and negotiated zone reassignment.
//!
//! ```sh
//! cargo run --example fleet_dispatch
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use std::time::{Duration, Instant};

use syd::fleet::{deploy_fleet, Position};
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::types::UserId;

fn main() {
    let env = SydEnv::new(NetConfig::wireless_lan(), "fleet passphrase");
    let (dispatcher, vehicles) = deploy_fleet(&env, 6).unwrap();
    let users: Vec<UserId> = vehicles.iter().map(|v| v.user()).collect();

    // Vehicles drive around; the dispatcher's board follows via links.
    for (i, vehicle) in vehicles.iter().enumerate() {
        vehicle
            .move_to(Position {
                x: (i * 3) as f64,
                y: (i % 2 * 5) as f64,
            })
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(3);
    while dispatcher.board().len() < vehicles.len() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("dispatcher board (fed by subscription links):");
    for (vehicle, pos) in dispatcher.board() {
        println!("  {vehicle}: ({:.1}, {:.1})", pos.x, pos.y);
    }

    // A delivery comes in at (7, 1): nearest idle vehicle wins.
    let chosen = dispatcher
        .dispatch_delivery(&users, Position { x: 7.0, y: 1.0 }, "parcel-4711")
        .unwrap();
    println!("parcel-4711 assigned to {chosen}");

    // Rush hour downtown: move at least 3 idle vehicles there, atomically.
    match dispatcher.reassign_zone(&users, "downtown", 3) {
        Ok(moved) => println!("reassigned to downtown: {moved:?}"),
        Err(e) => println!("reassignment failed: {e}"),
    }
    for vehicle in &vehicles {
        println!(
            "  {}: zone={}, delivery={:?}",
            vehicle.user(),
            vehicle.zone().unwrap(),
            vehicle.delivery().unwrap()
        );
    }
}
