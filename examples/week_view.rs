//! A week-view rendering of several users' calendars after a burst of
//! scheduling activity — the paper's GUI, reduced to a terminal grid.
//!
//! ```sh
//! cargo run --example week_view
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use syd::calendar::{CalendarApp, MeetingSpec, SlotState};
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::types::{Priority, SlotRange, TimeSlot};

fn main() {
    let env = SydEnv::new(NetConfig::ideal(), "week passphrase");
    let names = ["phil", "andy", "suzy", "raja"];
    let apps: Vec<_> = names
        .iter()
        .map(|n| CalendarApp::install(&env.device(n, "pw").unwrap()).unwrap())
        .collect();

    // Personal engagements.
    apps[1].mark_busy(TimeSlot::new(0, 9)).unwrap();
    apps[1].mark_busy(TimeSlot::new(0, 10)).unwrap();
    apps[2].mark_busy(TimeSlot::new(1, 14)).unwrap();
    apps[3].mark_busy(TimeSlot::new(2, 11)).unwrap();

    // A burst of meetings.
    let everyone: Vec<_> = apps.iter().map(|a| a.user()).collect();
    apps[0]
        .schedule(MeetingSpec::plain(
            "standup",
            TimeSlot::new(0, 11),
            everyone[1..].to_vec(),
        ))
        .unwrap();
    apps[2]
        .schedule(MeetingSpec::plain(
            "design",
            TimeSlot::new(1, 10),
            vec![apps[0].user(), apps[3].user()],
        ))
        .unwrap();
    apps[1]
        .schedule(
            MeetingSpec::plain("exec", TimeSlot::new(1, 10), vec![apps[0].user()])
                .with_priority(Priority::new(220)),
        )
        .unwrap();
    // Give the bumped "design" meeting a moment to auto-reschedule.
    std::thread::sleep(std::time::Duration::from_millis(300));

    // Render day 0–2, hours 9..15, one row per user.
    println!("week view (M=meeting tentative, C=confirmed, x=busy, .=free)\n");
    print!("{:>6} |", "");
    for day in 0..3u32 {
        for hour in 9..15u16 {
            print!(" d{day}@{hour:02}");
        }
        print!(" |");
    }
    println!();
    for (name, app) in names.iter().zip(&apps) {
        print!("{name:>6} |");
        for day in 0..3u32 {
            for hour in 9..15u16 {
                let state = app.slot_state(TimeSlot::new(day, hour).ordinal()).unwrap();
                let mark = match state {
                    SlotState::Free => "  .  ",
                    SlotState::Busy => "  x  ",
                    SlotState::Tentative(_) => "  M  ",
                    SlotState::Reserved(_) => "  C  ",
                };
                print!("{mark}");
            }
            print!(" |");
        }
        println!();
    }

    println!("\nmeetings known to phil:");
    let range = SlotRange::days(0, 3);
    for ordinal in range.start.ordinal()..range.end.ordinal() {
        if let Some(meeting) = apps[0].slot_state(ordinal).unwrap().meeting() {
            if let Some(rec) = apps[0].meeting(meeting).unwrap() {
                println!(
                    "  {} at {}: {:?} (priority {}, {} reserved)",
                    rec.title,
                    TimeSlot::from_ordinal(rec.ordinal),
                    rec.status,
                    rec.priority,
                    rec.reserved.len(),
                );
            }
        }
    }
}
