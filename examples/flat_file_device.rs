//! Heterogeneous data stores (§2): one participant's "database" is a flat
//! text file — "an ad-hoc data store such as a flat file, an EXCEL
//! worksheet or a list repository" — imported into their device object,
//! after which they coordinate like everyone else.
//!
//! ```sh
//! cargo run --example flat_file_device
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use syd::calendar::{CalendarApp, MeetingSpec, MeetingStatus};
use syd::kernel::SydEnv;
use syd::net::NetConfig;
use syd::store::{export_table, import_table, Predicate, Store};
use syd::types::{SlotRange, TimeSlot};

fn main() {
    // Suzy's "calendar" lives in an ASCII list on her ancient organizer.
    let suzy_file = "\
slot:i64,label:str
9,dentist
10,dentist
33,pick up kids
";
    // Import the flat file into a store — the paper's deviceware adapter.
    let imported = Store::new();
    let rows = import_table(&imported, "busy_list", suzy_file, true).unwrap();
    println!("imported {rows} busy entries from suzy's flat file");

    // Stand up the deployment.
    let env = SydEnv::new(NetConfig::ideal(), "flat-file passphrase");
    let phil = CalendarApp::install(&env.device("phil", "pw").unwrap()).unwrap();
    let suzy = CalendarApp::install(&env.device("suzy", "pw").unwrap()).unwrap();

    // Feed the imported list into suzy's calendar object.
    for row in imported.select("busy_list", &Predicate::True).unwrap() {
        let ordinal = row.values[0].as_i64().unwrap() as u64;
        suzy.mark_busy(TimeSlot::from_ordinal(ordinal)).unwrap();
    }

    // Phil schedules around suzy's flat-file engagements transparently.
    let common = phil
        .find_common_slots(
            &[phil.user(), suzy.user()],
            SlotRange::new(TimeSlot::new(0, 8), TimeSlot::new(0, 12)),
        )
        .unwrap();
    println!("common free slots on day 0 (8:00–12:00): {common:?}");
    assert!(
        !common.contains(&TimeSlot::new(0, 9)),
        "dentist blocks 9:00"
    );
    assert!(!common.contains(&TimeSlot::new(0, 10)));

    let outcome = phil
        .schedule(MeetingSpec::plain("sync", common[0], vec![suzy.user()]))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);
    println!("meeting confirmed at {}", common[0]);

    // And suzy's device can export its current calendar back to text for
    // the organizer to re-sync.
    let exported = export_table(suzy.device().store(), "slots").unwrap();
    println!("\nsuzy's calendar, exported back to flat text:\n{exported}");
}
