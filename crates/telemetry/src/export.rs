//! Renderings of a metrics snapshot: a human-readable table for harness
//! output and JSON-lines for tooling.

use crate::metrics::MetricsSnapshot;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as an aligned, human-readable table.
///
/// Counters and gauges get one `name value` line each; histograms get
/// count/mean and the p50/p95/p99 summary in microseconds.
pub fn metrics_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if snap.is_empty() {
        out.push_str("(no metrics registered)\n");
        return out;
    }
    let width = snap
        .counters
        .iter()
        .map(|(k, _)| k.len())
        .chain(snap.gauges.iter().map(|(k, _)| k.len()))
        .chain(snap.histograms.iter().map(|(k, _)| k.len()))
        .max()
        .unwrap_or(0);
    for (name, value) in &snap.counters {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "{name:<width$}  count={} mean={}us p50={}us p95={}us p99={}us\n",
            h.count, h.mean, h.p50, h.p95, h.p99
        ));
    }
    out
}

/// Renders a snapshot as JSON-lines: one object per metric.
pub fn metrics_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
            json_escape(name),
            value
        ));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
            json_escape(name),
            value
        ));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum_us\":{},\"mean_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}\n",
            json_escape(name),
            h.count,
            h.sum,
            h.mean,
            h.p50,
            h.p95,
            h.p99
        ));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn table_lists_every_metric() {
        let reg = Registry::new();
        reg.counter("rpc.retries").add(3);
        reg.gauge("pool.size").set(4);
        reg.histogram("rpc.call").record(100);
        let table = metrics_table(&reg.snapshot());
        assert!(table.contains("rpc.retries"), "{table}");
        assert!(table.contains("pool.size"), "{table}");
        assert!(table.contains("p99="), "{table}");
    }

    #[test]
    fn empty_table_says_so() {
        let table = metrics_table(&Registry::new().snapshot());
        assert!(table.contains("no metrics"), "{table}");
    }

    #[test]
    fn jsonl_has_one_line_per_metric() {
        let reg = Registry::new();
        reg.counter("c").inc();
        reg.gauge("g").set(1);
        reg.histogram("h").record(10);
        let jsonl = metrics_jsonl(&reg.snapshot());
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"type\":\"counter\""), "{jsonl}");
        assert!(jsonl.contains("\"type\":\"gauge\""), "{jsonl}");
        assert!(jsonl.contains("\"type\":\"histogram\""), "{jsonl}");
    }
}
