//! Named counters, gauges and log-bucketed latency histograms.
//!
//! The design splits the cold path from the hot path. Looking a metric up
//! by name takes a mutex and may allocate — callers do that once, at
//! construction time, and hold on to the returned [`Counter`] /
//! [`Gauge`] / [`Histogram`] handle. Recording through a handle is a
//! relaxed atomic operation on shared storage: no lock, no allocation,
//! no branching beyond the bucket computation. That keeps the RPC
//! round-trip path within benchmark noise.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of logarithmic histogram buckets: bucket 0 holds zero, bucket
/// `i` holds values with `floor(log2(v)) == i - 1`, the last bucket
/// absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter handle.
///
/// Cloning is cheap (an `Arc` bump); all clones share the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a detached gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram handle, intended for latencies in
/// microseconds.
///
/// `record` performs three relaxed atomic adds and nothing else, so it
/// is safe to call from RPC completion paths.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

#[inline]
fn bucket_index(value: u64) -> usize {
    // 0 → bucket 0; otherwise floor(log2(v)) + 1, saturating at the top.
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Representative value for a bucket, used when reading percentiles
/// back out: the midpoint of the bucket's value range.
fn bucket_mid(index: usize) -> u64 {
    if index == 0 {
        return 0;
    }
    let lo = 1u64 << (index - 1);
    lo + lo / 2
}

impl Histogram {
    /// Creates a detached histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (typically microseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        self.cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Approximate percentile (`p` in `0.0..=1.0`), reported as the
    /// midpoint of the bucket containing the target rank.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.cells.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_mid(i);
            }
        }
        bucket_mid(HISTOGRAM_BUCKETS - 1)
    }

    /// Snapshot of count/sum/mean and the standard percentiles.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum();
        HistogramSummary {
            count,
            sum,
            mean: sum.checked_div(count).unwrap_or(0),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Integer mean (`sum / count`).
    pub mean: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics.
///
/// Registration (`counter`/`gauge`/`histogram`) is the cold path and
/// takes a mutex; it returns a handle that records lock-free. Asking for
/// the same name twice returns a handle to the same underlying cell, so
/// independent modules can share a metric by name.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
    /// When set, every operation delegates to the parent: this registry
    /// is a near-zero-cost forwarder (see [`Registry::with_parent`]).
    parent: Option<Arc<Registry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a *scoped* registry that delegates every operation to
    /// `parent`.
    ///
    /// Fleet mode: a process hosting 10k devices cannot afford 10k
    /// copies of the full metric families (each histogram alone is 64
    /// buckets). A scoped registry owns no cells at all — handles it
    /// returns are the parent's, so all devices sharing one parent
    /// aggregate into one set of cells while keeping the per-device
    /// `Arc<Registry>` plumbing unchanged.
    pub fn with_parent(parent: Arc<Registry>) -> Self {
        Registry {
            inner: Mutex::new(RegistryInner::default()),
            parent: Some(parent),
        }
    }

    /// True when this registry delegates to a parent.
    pub fn is_scoped(&self) -> bool {
        self.parent.is_some()
    }

    /// Gets or creates the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(parent) = &self.parent {
            return parent.counter(name);
        }
        let mut inner = self.inner.lock();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(parent) = &self.parent {
            return parent.gauge(name);
        }
        let mut inner = self.inner.lock();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(parent) = &self.parent {
            return parent.histogram(name);
        }
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The counter called `name`, if it has been registered.
    pub fn get_counter(&self, name: &str) -> Option<Counter> {
        if let Some(parent) = &self.parent {
            return parent.get_counter(name);
        }
        self.inner.lock().counters.get(name).cloned()
    }

    /// The gauge called `name`, if it has been registered.
    pub fn get_gauge(&self, name: &str) -> Option<Gauge> {
        if let Some(parent) = &self.parent {
            return parent.get_gauge(name);
        }
        self.inner.lock().gauges.get(name).cloned()
    }

    /// The histogram called `name`, if it has been registered.
    pub fn get_histogram(&self, name: &str) -> Option<Histogram> {
        if let Some(parent) = &self.parent {
            return parent.get_histogram(name);
        }
        self.inner.lock().histograms.get(name).cloned()
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        if let Some(parent) = &self.parent {
            return parent.snapshot();
        }
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Registry`]'s contents.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn counter_shares_storage_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.get_counter("x").unwrap().get(), 3);
        assert!(reg.get_counter("y").is_none());
    }

    #[test]
    fn scoped_registry_delegates_everything_to_parent() {
        let parent = Arc::new(Registry::new());
        let a = Registry::with_parent(Arc::clone(&parent));
        let b = Registry::with_parent(Arc::clone(&parent));
        assert!(a.is_scoped() && !parent.is_scoped());
        a.counter("c").inc();
        b.counter("c").add(2);
        assert_eq!(parent.get_counter("c").unwrap().get(), 3);
        a.gauge("g").set(4);
        assert_eq!(b.get_gauge("g").unwrap().get(), 4);
        a.histogram("h").record(9);
        assert_eq!(parent.get_histogram("h").unwrap().count(), 1);
        let snap = b.snapshot();
        assert_eq!(snap.counters, vec![("c".to_string(), 3)]);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_indices_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        // Huge values saturate into the last bucket instead of indexing
        // past the array.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 62), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket of [64, 127]
        }
        for _ in 0..10 {
            h.record(10_000); // bucket of [8192, 16383]
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 100 + 10 * 10_000);
        let p50 = h.percentile(0.50);
        assert!((64..=127).contains(&p50), "p50={p50}");
        let p99 = h.percentile(0.99);
        assert!((8_192..=16_383).contains(&p99), "p99={p99}");
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, (90 * 100 + 10 * 10_000) / 100);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s, HistogramSummary::default());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").add(5);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(7);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a".to_string(), 5), ("b".to_string(), 1)]
        );
        assert_eq!(snap.gauges, vec![("g".to_string(), -2)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
        assert!(!snap.is_empty());
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        let _ = h.percentile(1.0);
        let _ = h.percentile(0.0);
    }
}
