//! Bounded ring-buffer event journal for postmortems.
//!
//! Each device keeps one [`Journal`]. Hot paths append structured
//! events — span begin/end, the §4.3 negotiation state transitions
//! (mark/lock/change/abort), waiting-link promotion — and the ring
//! buffer keeps the most recent `capacity` of them. When a scenario
//! fails, `dump()` renders a human-readable timeline and `to_jsonl()`
//! a machine-readable one; both carry the trace/span ids captured from
//! [`crate::trace::current`] at record time, so events from different
//! devices can be stitched into one end-to-end story.

use crate::export::json_escape;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

/// What kind of thing happened. Mirrors the negotiation protocol's
/// state machine plus generic span and link events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A traced operation started.
    SpanBegin,
    /// A traced operation finished.
    SpanEnd,
    /// Negotiation mark request (vote + lock attempt).
    Mark,
    /// An entity lock was acquired for a negotiation session.
    Lock,
    /// Negotiation commit applied a change.
    Change,
    /// Negotiation abort — the detail carries the reason.
    Abort,
    /// A waiting link was promoted (§4.2 op. 3).
    Promotion,
    /// Anything else worth keeping in the timeline.
    Info,
}

impl EventKind {
    /// Stable short name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Mark => "mark",
            EventKind::Lock => "lock",
            EventKind::Change => "change",
            EventKind::Abort => "abort",
            EventKind::Promotion => "promotion",
            EventKind::Info => "info",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One journal entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEvent {
    /// Monotonic sequence number; gaps reveal ring-buffer eviction.
    pub seq: u64,
    /// Microseconds since the journal was created.
    pub at_micros: u64,
    /// Trace id captured from the recording thread (0 when untraced).
    pub trace: u64,
    /// Span id captured from the recording thread (0 when untraced).
    pub span: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Free-form detail (entity, session, reason, …).
    pub detail: String,
}

struct JournalInner {
    next_seq: u64,
    events: VecDeque<JournalEvent>,
}

/// A bounded, thread-safe event ring buffer.
pub struct Journal {
    capacity: usize,
    epoch: Instant,
    inner: Mutex<JournalInner>,
}

/// Default ring capacity: enough for several meeting lifecycles on one
/// device without unbounded growth on long runs.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

impl Default for Journal {
    fn default() -> Self {
        Self::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            inner: Mutex::new(JournalInner {
                next_seq: 0,
                events: VecDeque::with_capacity(capacity.clamp(1, 1024)),
            }),
        }
    }

    /// Appends an event, stamping it with the current thread's trace
    /// context (zeros when none is installed). Evicts the oldest event
    /// when full.
    pub fn record(&self, kind: EventKind, detail: impl Into<String>) {
        let (trace, span) = match crate::trace::current() {
            Some(ctx) => (ctx.trace, ctx.span),
            None => (0, 0),
        };
        let at_micros = self.epoch.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(JournalEvent {
            seq,
            at_micros,
            trace,
            span,
            kind,
            detail: detail.into(),
        });
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<JournalEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// True if any retained event carries `trace`.
    pub fn contains_trace(&self, trace: u64) -> bool {
        self.inner.lock().events.iter().any(|e| e.trace == trace)
    }

    /// Human-readable timeline, one line per event.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "#{:<6} +{:>10}us trace={:016x} span={:016x} {:<10} {}\n",
                e.seq, e.at_micros, e.trace, e.span, e.kind, e.detail
            ));
        }
        out
    }

    /// JSON-lines rendering, one object per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "{{\"seq\":{},\"at_us\":{},\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"kind\":\"{}\",\"detail\":\"{}\"}}\n",
                e.seq,
                e.at_micros,
                e.trace,
                e.span,
                e.kind,
                json_escape(&e.detail)
            ));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::trace;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let j = Journal::new(16);
        j.record(EventKind::Mark, "entity=slot:1 session=7");
        j.record(EventKind::Change, "entity=slot:1 session=7");
        let events = j.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].kind, EventKind::Mark);
        assert!(events[0].at_micros <= events[1].at_micros);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.record(EventKind::Info, format!("e{i}"));
        }
        let events = j.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "e2");
        assert_eq!(events[2].detail, "e4");
        assert_eq!(j.recorded(), 5);
    }

    #[test]
    fn captures_current_trace_context() {
        let j = Journal::new(8);
        j.record(EventKind::Info, "untraced");
        let ctx = trace::root_span();
        {
            let _g = trace::enter(ctx);
            j.record(EventKind::SpanBegin, "traced");
        }
        let events = j.events();
        assert_eq!(events[0].trace, 0);
        assert_eq!(events[1].trace, ctx.trace);
        assert_eq!(events[1].span, ctx.span);
        assert!(j.contains_trace(ctx.trace));
        assert!(!j.contains_trace(0xffff_ffff_ffff_ffff));
    }

    #[test]
    fn dump_and_jsonl_render_every_event() {
        let j = Journal::new(8);
        j.record(EventKind::Abort, "session=9 reason=\"constraint-failed\"");
        j.record(EventKind::Promotion, "link=4");
        let dump = j.dump();
        assert!(dump.contains("abort"), "{dump}");
        assert!(dump.contains("constraint-failed"), "{dump}");
        let jsonl = j.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\\\"constraint-failed\\\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\":\"promotion\""), "{jsonl}");
    }
}
