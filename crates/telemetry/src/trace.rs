//! Thread-local trace-context propagation.
//!
//! A *trace* is one end-to-end operation (a meeting setup, a cancel
//! cascade); a *span* is one hop of it (a single RPC dispatch, one
//! reconcile round). The context travels two ways:
//!
//! * **in-process** — via a thread-local. SyD's RPC layer dispatches
//!   each inbound request on a worker thread and blocks that thread for
//!   nested outbound calls, so a thread-local set around the handler
//!   (`enter`) is inherited by every nested invocation the handler
//!   makes, with no API changes anywhere in between;
//! * **on the wire** — via the optional trace field of
//!   `syd_wire::Request`, written from [`current`] by the caller and
//!   re-entered (hop + 1) by the server before dispatch.
//!
//! Worker threads are pooled and reused, so [`SpanGuard`] restores the
//! previous context on drop instead of clearing it.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The propagated context: which trace this thread is working for,
/// which span within it, and how many RPC hops deep it is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanCtx {
    /// End-to-end operation id, stable across every hop.
    pub trace: u64,
    /// This hop's span id.
    pub span: u64,
    /// Number of RPC dispatches between the root and this context.
    pub hop: u32,
}

impl SpanCtx {
    /// A child context for an outbound call: same trace, fresh span,
    /// same hop count (the receiving server increments the hop).
    pub fn child(&self) -> SpanCtx {
        SpanCtx {
            trace: self.trace,
            span: fresh_id(),
            hop: self.hop,
        }
    }
}

thread_local! {
    static CURRENT: Cell<Option<SpanCtx>> = const { Cell::new(None) };
}

static NEXT: AtomicU64 = AtomicU64::new(0);
static SEED: OnceLock<u64> = OnceLock::new();

fn seed() -> u64 {
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        nanos ^ 0x9e37_79b9_7f4a_7c15
    })
}

/// Generates a process-unique, well-mixed, non-zero 64-bit id.
///
/// A splitmix64 step over a seeded counter: ids from concurrent threads
/// never collide (the counter is atomic) and look random enough that
/// trace ids from different runs are distinguishable in merged logs.
pub fn fresh_id() -> u64 {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let mut z = seed().wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

/// A fresh root context: new trace, new span, hop 0.
pub fn root_span() -> SpanCtx {
    SpanCtx {
        trace: fresh_id(),
        span: fresh_id(),
        hop: 0,
    }
}

/// The context the current thread is working under, if any.
pub fn current() -> Option<SpanCtx> {
    CURRENT.with(Cell::get)
}

/// Installs `ctx` as the current thread's context until the returned
/// guard drops, at which point the previous context is restored.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub fn enter(ctx: SpanCtx) -> SpanGuard {
    let previous = CURRENT.with(|c| c.replace(Some(ctx)));
    SpanGuard { previous }
}

/// Restores the previously-installed [`SpanCtx`] on drop.
///
/// Restoring (rather than clearing) matters because dispatch threads
/// are pooled: a cleared context would leak span state from one request
/// into the next, and a nested guard would clobber its parent.
#[derive(Debug)]
pub struct SpanGuard {
    previous: Option<SpanCtx>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let previous = self.previous;
        CURRENT.with(|c| c.set(previous));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn fresh_ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..1000).map(|_| fresh_id()).collect::<Vec<_>>()))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "cross-thread duplicate {id:#x}");
            }
        }
    }

    #[test]
    fn enter_nests_and_restores() {
        assert_eq!(current(), None);
        let outer = root_span();
        let g1 = enter(outer);
        assert_eq!(current(), Some(outer));
        {
            let inner = outer.child();
            assert_eq!(inner.trace, outer.trace);
            assert_ne!(inner.span, outer.span);
            let g2 = enter(inner);
            assert_eq!(current(), Some(inner));
            drop(g2);
        }
        assert_eq!(current(), Some(outer));
        drop(g1);
        assert_eq!(current(), None);
    }

    #[test]
    fn context_is_per_thread() {
        let ctx = root_span();
        let _g = enter(ctx);
        std::thread::spawn(|| assert_eq!(current(), None))
            .join()
            .unwrap();
        assert_eq!(current(), Some(ctx));
    }
}
