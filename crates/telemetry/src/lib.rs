//! Cross-cutting observability for SyD.
//!
//! The paper's evaluation (Figures 3–4, §6) is a story about *where time
//! and messages go*: kernel layer crossings, negotiation rounds, link
//! cascades. This crate makes those costs visible at runtime rather than
//! only under Criterion:
//!
//! * [`metrics`] — a registry of named counters, gauges and log-bucketed
//!   latency histograms. Recording through a preregistered handle is a
//!   single relaxed atomic op: no locks, no allocation, cheap enough for
//!   the RPC hot path.
//! * [`trace`] — thread-local trace-context propagation. A root span is
//!   minted at the first outbound `Node::call`; servers re-enter the
//!   received context (hop + 1) before dispatching, so nested invocations
//!   (engine group invokes, negotiation fan-out, cancel cascades) inherit
//!   one trace id end to end.
//! * [`journal`] — a bounded ring-buffer event journal per device
//!   recording span begin/end and negotiation state transitions
//!   (mark/lock/change/abort, waiting-link promotion) for postmortem
//!   dumps when a scenario fails.
//! * [`export`] — human-readable table and JSON-lines renderings of a
//!   metrics snapshot, shared by `DeviceRuntime`, `Network` and the
//!   `experiments` harness.
//! * [`names`] — the central registry of metric name constants; every
//!   call site registers through one of these (enforced statically by
//!   `syd-lint`'s `counter-registry` rule).
//!
//! The crate deliberately depends on nothing but `parking_lot` so every
//! layer — wire, net, kernel, apps — can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod journal;
pub mod metrics;
pub mod names;
pub mod trace;

pub use export::{json_escape, metrics_jsonl, metrics_table};
pub use journal::{EventKind, Journal, JournalEvent};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry};
pub use trace::{current, enter, fresh_id, root_span, SpanCtx, SpanGuard};
