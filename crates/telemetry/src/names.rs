//! Central registry of every telemetry metric name.
//!
//! All counters, gauges and histograms recorded anywhere in the workspace
//! must register under one of these constants. Inline string literals at
//! call sites are rejected by `syd-lint`'s `counter-registry` rule, which
//! cross-checks call sites against this file: a typo'd name can no longer
//! silently split a metric in two, and a constant that loses its last
//! call site is reported as orphaned.
//!
//! Grouped by owning subsystem; the `<subsystem>.<metric>` naming scheme
//! matches what `metrics_table`/`metrics_jsonl` render.

// --- rpc (syd-net node) ---------------------------------------------------

/// Histogram: end-to-end latency of one outbound RPC, µs.
pub const RPC_CALL: &str = "rpc.call";
/// Counter: outbound RPC attempts retried after loss or timeout.
pub const RPC_RETRIES: &str = "rpc.retries";
/// Counter: outbound RPCs that exhausted their deadline.
pub const RPC_TIMEOUTS: &str = "rpc.timeouts";
/// Counter: inbound RPC requests dispatched to a handler.
pub const RPC_REQUESTS_SERVED: &str = "rpc.requests_served";

// --- transport (syd-transport backends) -----------------------------------

/// Counter: connections currently or ever established (monotonic).
pub const TRANSPORT_CONNS: &str = "transport.conns";
/// Counter: inbound connections accepted by the listener.
pub const TRANSPORT_ACCEPTS: &str = "transport.accepts";
/// Counter: dial attempts made after a connection was lost.
pub const TRANSPORT_RECONNECTS: &str = "transport.reconnects";
/// Counter: payload bytes received off the wire.
pub const TRANSPORT_BYTES_IN: &str = "transport.bytes_in";
/// Counter: payload bytes written to the wire.
pub const TRANSPORT_BYTES_OUT: &str = "transport.bytes_out";
/// Counter: frames decoded from the wire.
pub const TRANSPORT_FRAMES_IN: &str = "transport.frames_in";
/// Counter: frames encoded onto the wire.
pub const TRANSPORT_FRAMES_OUT: &str = "transport.frames_out";
/// Counter: frames dropped due to decode/length errors.
pub const TRANSPORT_FRAME_ERRORS: &str = "transport.frame_errors";

// --- negotiation (syd-core §4.3 protocol) ----------------------------------

/// Counter: negotiation sessions started by this coordinator.
pub const NEGOTIATE_SESSIONS: &str = "negotiate.sessions";
/// Counter: negotiation sessions that ended in a protocol abort.
pub const NEGOTIATE_ABORTS: &str = "negotiate.aborts";

// --- engine (syd-core group invocation) ------------------------------------

/// Histogram: latency of one `SydEngine::invoke*` call, µs.
pub const ENGINE_INVOKE: &str = "engine.invoke";
/// Counter: group resolves served by one batched directory round trip.
pub const ENGINE_BATCH_RESOLVES: &str = "engine.batch_resolves";
/// Counter: per-user fallback lookups after a failed batch resolve.
pub const ENGINE_RESOLVE_FALLBACKS: &str = "engine.resolve_fallbacks";

// --- listener (syd-core dispatch) ------------------------------------------

/// Counter: requests dispatched through `SydListener`.
pub const LISTENER_DISPATCH: &str = "listener.dispatch";
/// Counter: requests rejected by the listener's auth check.
pub const LISTENER_AUTH_FAILURES: &str = "listener.auth_failures";

// --- directory (syd-core SyDDirectory) -------------------------------------

/// Counter: single-entity directory lookups served.
pub const DIR_LOOKUPS: &str = "dir.lookups";
/// Counter: batched `lookup_many` round trips served.
pub const DIR_BATCH_LOOKUPS: &str = "dir.batch_lookups";
/// Counter: user entries resolved inside batched lookups.
pub const DIR_BATCH_LOOKUP_USERS: &str = "dir.batch_lookup_users";

// --- proxy (syd-core SyDProxy) ---------------------------------------------

/// Counter: requests answered from a proxy-cached snapshot.
pub const PROXY_SERVED: &str = "proxy.served";

// --- calendar (syd-calendar app) -------------------------------------------

/// Histogram: latency of one `schedule_meeting` negotiation, µs.
pub const CALENDAR_SCHEDULE: &str = "calendar.schedule";
/// Histogram: latency of one reconcile pass, µs.
pub const CALENDAR_RECONCILE: &str = "calendar.reconcile";
/// Counter: meetings cancelled (including cascade deletions).
pub const CALENDAR_CANCELS: &str = "calendar.cancels";

// --- span kinds (syd-trace timed spans) -------------------------------------
//
// Span kind strings share this registry so `syd-lint`'s registry rule can
// cross-check span call sites exactly like metric call sites: a typo'd
// kind would otherwise split one protocol phase across two tree labels.

/// Span: client side of one outbound RPC (send → response completion).
pub const SPAN_RPC_CLIENT: &str = "rpc.client";
/// Span: server side of one RPC (handler entry → response sent).
pub const SPAN_RPC_SERVER: &str = "rpc.server";
/// Span: directory resolution for a group invocation (cache + lookups).
pub const SPAN_DIR_RESOLVE: &str = "dir.resolve";
/// Span: the §4.3 negotiation mark/lock round, coordinator side.
pub const SPAN_MARK_ROUND: &str = "negotiate.mark_round";
/// Span: the §4.3 negotiation commit/abort round, coordinator side.
pub const SPAN_COMMIT_ROUND: &str = "negotiate.commit_round";
/// Span: cascade traversal over coordination links (delete/bump fan-out).
pub const SPAN_CASCADE: &str = "links.cascade";
/// Span: transport-level queueing of one frame (enqueue → flush/deliver).
pub const SPAN_TRANSPORT_QUEUE: &str = "transport.queue";
/// Span: bounded entity-lock acquisition inside a kernel mark handler.
pub const SPAN_LOCK_WAIT: &str = "device.lock_wait";
/// Span: one end-to-end `schedule_meeting` negotiation (root span).
pub const SPAN_SCHEDULE: &str = "calendar.schedule_op";
/// Span: one reconcile pass over the local store (root span).
pub const SPAN_RECONCILE: &str = "calendar.reconcile_op";

// --- model (syd-model state-space explorer) --------------------------------

/// Counter: distinct states visited by the DFS explorer.
pub const MODEL_STATES_EXPLORED: &str = "model.states_explored";
/// Counter: invariant violations found during exploration.
pub const MODEL_VIOLATIONS: &str = "model.violations";

/// Every registered metric name, for exhaustiveness checks and tooling.
pub const ALL: &[&str] = &[
    RPC_CALL,
    RPC_RETRIES,
    RPC_TIMEOUTS,
    RPC_REQUESTS_SERVED,
    TRANSPORT_CONNS,
    TRANSPORT_ACCEPTS,
    TRANSPORT_RECONNECTS,
    TRANSPORT_BYTES_IN,
    TRANSPORT_BYTES_OUT,
    TRANSPORT_FRAMES_IN,
    TRANSPORT_FRAMES_OUT,
    TRANSPORT_FRAME_ERRORS,
    NEGOTIATE_SESSIONS,
    NEGOTIATE_ABORTS,
    ENGINE_INVOKE,
    ENGINE_BATCH_RESOLVES,
    ENGINE_RESOLVE_FALLBACKS,
    LISTENER_DISPATCH,
    LISTENER_AUTH_FAILURES,
    DIR_LOOKUPS,
    DIR_BATCH_LOOKUPS,
    DIR_BATCH_LOOKUP_USERS,
    PROXY_SERVED,
    CALENDAR_SCHEDULE,
    CALENDAR_RECONCILE,
    CALENDAR_CANCELS,
    SPAN_RPC_CLIENT,
    SPAN_RPC_SERVER,
    SPAN_DIR_RESOLVE,
    SPAN_MARK_ROUND,
    SPAN_COMMIT_ROUND,
    SPAN_CASCADE,
    SPAN_TRANSPORT_QUEUE,
    SPAN_LOCK_WAIT,
    SPAN_SCHEDULE,
    SPAN_RECONCILE,
    MODEL_STATES_EXPLORED,
    MODEL_VIOLATIONS,
];

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::ALL;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique_and_well_formed() {
        let set: BTreeSet<&str> = ALL.iter().copied().collect();
        assert_eq!(set.len(), ALL.len(), "duplicate metric name in registry");
        for name in ALL {
            assert!(
                name.split('.').count() == 2
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "metric name {name:?} must be <subsystem>.<snake_case>"
            );
        }
    }
}
