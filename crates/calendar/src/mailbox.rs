//! Simulated e-mail: "the users involved in the meeting are notified about
//! the details of the meeting using an e-mail message" (§5.1).
//!
//! Each device serves a `mailbox` service whose `deliver` method appends
//! to a local `mail` table; [`Mailbox::send`] is the SMTP stand-in. Mail is
//! best-effort, exactly like the prototype's SMTP: delivery failures are
//! reported but never block calendar operations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use syd_core::DeviceRuntime;
use syd_store::{Column, ColumnType, Predicate, Schema, Store};
use syd_types::{ServiceName, SydResult, Timestamp, UserId, Value};

/// The mailbox service name.
pub fn mailbox_service() -> ServiceName {
    ServiceName::new("mailbox")
}

const T_MAIL: &str = "mail";

/// One delivered message.
#[derive(Clone, Debug, PartialEq)]
pub struct Mail {
    /// Local delivery id.
    pub id: u64,
    /// Sender.
    pub from: UserId,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
    /// Delivery time (device clock).
    pub received: Timestamp,
}

/// A device's mailbox: local inbox plus outgoing delivery.
pub struct Mailbox {
    device: DeviceRuntime,
    store: Store,
    next_id: AtomicU64,
}

impl Mailbox {
    /// Installs the mailbox on a device: creates the `mail` table and
    /// registers `mailbox/deliver`.
    pub fn install(device: &DeviceRuntime) -> SydResult<Arc<Mailbox>> {
        let store = device.store().clone();
        store.create_table(Schema::new(
            T_MAIL,
            vec![
                Column::required("id", ColumnType::I64),
                Column::required("from", ColumnType::I64),
                Column::required("subject", ColumnType::Str),
                Column::required("body", ColumnType::Str),
                Column::required("received", ColumnType::I64),
            ],
            &["id"],
        )?)?;
        let mailbox = Arc::new(Mailbox {
            device: device.clone(),
            store,
            next_id: AtomicU64::new(1),
        });
        let weak = Arc::downgrade(&mailbox);
        device.register_service(
            &mailbox_service(),
            "deliver",
            Arc::new(move |ctx, args: &[Value]| {
                let mailbox = weak.upgrade().ok_or(syd_types::SydError::Shutdown)?;
                let subject = args
                    .first()
                    .ok_or_else(|| syd_types::SydError::Protocol("deliver needs subject".into()))?
                    .as_str()?;
                let body = args.get(1).map(|v| v.as_str()).transpose()?.unwrap_or("");
                mailbox.deliver_local(ctx.caller, subject, body)?;
                Ok(Value::Null)
            }),
        )?;
        Ok(mailbox)
    }

    fn deliver_local(&self, from: UserId, subject: &str, body: &str) -> SydResult<u64> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.store.insert(
            T_MAIL,
            vec![
                Value::from(id),
                Value::from(from.raw()),
                Value::str(subject),
                Value::str(body),
                Value::from(self.device.clock().now().as_micros()),
            ],
        )?;
        self.device
            .events()
            .publish_local("mailbox.delivered", &Value::str(subject));
        Ok(id)
    }

    /// Sends a message to `to`'s mailbox. Best effort.
    pub fn send(&self, to: UserId, subject: &str, body: &str) -> SydResult<()> {
        self.device
            .engine()
            .invoke(
                to,
                &mailbox_service(),
                "deliver",
                vec![Value::str(subject), Value::str(body)],
            )
            .map(|_| ())
    }

    /// The local inbox, oldest first.
    pub fn inbox(&self) -> SydResult<Vec<Mail>> {
        self.store
            .query(T_MAIL)
            .order_by("id", true)
            .run()?
            .into_iter()
            .map(|row| {
                Ok(Mail {
                    id: row.values[0].as_i64()? as u64,
                    from: UserId::new(row.values[1].as_i64()? as u64),
                    subject: row.values[2].as_str()?.to_owned(),
                    body: row.values[3].as_str()?.to_owned(),
                    received: Timestamp::from_micros(row.values[4].as_i64()? as u64),
                })
            })
            .collect()
    }

    /// Number of messages in the inbox.
    pub fn unread(&self) -> SydResult<usize> {
        self.store.count(T_MAIL, &Predicate::True)
    }

    /// Deletes everything in the inbox.
    pub fn clear(&self) -> SydResult<usize> {
        self.store.delete(T_MAIL, &Predicate::True)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_core::SydEnv;
    use syd_net::NetConfig;

    #[test]
    fn send_and_receive() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let a = env.device("alice", "").unwrap();
        let b = env.device("bob", "").unwrap();
        let ma = Mailbox::install(&a).unwrap();
        let mb = Mailbox::install(&b).unwrap();

        ma.send(b.user(), "meeting confirmed", "day 3 14:00")
            .unwrap();
        ma.send(b.user(), "meeting cancelled", "sorry").unwrap();

        let inbox = mb.inbox().unwrap();
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].subject, "meeting confirmed");
        assert_eq!(inbox[0].from, a.user());
        assert_eq!(inbox[1].subject, "meeting cancelled");
        assert_eq!(mb.unread().unwrap(), 2);
        assert_eq!(ma.unread().unwrap(), 0);

        mb.clear().unwrap();
        assert_eq!(mb.unread().unwrap(), 0);
    }

    #[test]
    fn send_to_unknown_user_fails_cleanly() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let a = env.device("alice", "").unwrap();
        let ma = Mailbox::install(&a).unwrap();
        assert!(ma.send(UserId::new(999), "hi", "x").is_err());
    }

    #[test]
    fn delivery_publishes_local_event() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let a = env.device("alice", "").unwrap();
        let b = env.device("bob", "").unwrap();
        let ma = Mailbox::install(&a).unwrap();
        let _mb = Mailbox::install(&b).unwrap();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::<String>::new()));
        let sc = Arc::clone(&seen);
        b.events().subscribe(
            "mailbox.",
            Arc::new(move |_t, payload| {
                sc.lock().push(payload.as_str().unwrap_or("?").to_owned());
            }),
        );
        ma.send(b.user(), "ping", "").unwrap();
        assert_eq!(*seen.lock(), vec!["ping".to_owned()]);
    }
}
