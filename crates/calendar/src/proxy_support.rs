//! Calendar-on-proxy support (§5.2 applied to the showcase app).
//!
//! "If a SyD calendar object A is down or disconnected, a proxy takes over
//! the place of A" — concretely: peers planning meetings still need A's
//! free-slot view. This module replicates a user's calendar tables to a
//! [`ProxyHost`] and installs read-side `calendar` service methods on the
//! replica (`free_slots`, `slot_status`, `meeting_info`), so availability
//! queries and meeting lookups keep answering while the device is off.
//!
//! Writes (reservations) deliberately stay on the primary: a negotiation
//! against a disconnected participant should *fail* and leave the meeting
//! tentative — the availability-link machinery then confirms it when the
//! device returns, which is the paper's own answer to that situation.

use std::sync::Arc;

use syd_core::proxy::{enable_replication, ProxyHost, ProxyMethod};
use syd_store::{Column, ColumnType, Predicate, Schema, Store};
use syd_types::{MeetingId, SydResult, UserId, Value};

use crate::app::{calendar_service, CalendarApp};
use crate::model::Meeting;

fn replica_schema(store: &Store) -> SydResult<()> {
    store.create_table(Schema::new(
        "slots",
        vec![
            Column::required("ordinal", ColumnType::I64),
            Column::required("status", ColumnType::Str),
            Column::nullable("meeting", ColumnType::I64),
            Column::required("priority", ColumnType::I64),
        ],
        &["ordinal"],
    )?)?;
    store.create_table(Schema::new(
        "meetings",
        vec![
            Column::required("id", ColumnType::I64),
            Column::required("data", ColumnType::Any),
        ],
        &["id"],
    )?)?;
    Ok(())
}

fn free_slots_method() -> ProxyMethod {
    Arc::new(|_ctx, store: &Store, args: &[Value]| {
        let start = args[0].as_i64()? as u64;
        let end = args[1].as_i64()? as u64;
        let occupied: Vec<u64> = store
            .query("slots")
            .filter(Predicate::Between(
                "ordinal".into(),
                Value::from(start),
                Value::from(end.saturating_sub(1)),
            ))
            .column("ordinal")?
            .into_iter()
            .filter_map(|v| v.as_i64().ok().map(|n| n as u64))
            .collect();
        Ok(Value::list(
            (start..end)
                .filter(|o| !occupied.contains(o))
                .map(Value::from),
        ))
    })
}

fn slot_status_method() -> ProxyMethod {
    Arc::new(|_ctx, store: &Store, args: &[Value]| {
        let ordinal = args[0].as_i64()? as u64;
        match store.get_by_key("slots", &[Value::from(ordinal)])? {
            None => Ok(Value::map([
                ("status", Value::str("free")),
                ("meeting", Value::Null),
                ("priority", Value::from(0u64)),
            ])),
            Some(row) => Ok(Value::map([
                ("status", row.values[1].clone()),
                ("meeting", row.values[2].clone()),
                ("priority", row.values[3].clone()),
            ])),
        }
    })
}

fn meeting_info_method() -> ProxyMethod {
    Arc::new(|_ctx, store: &Store, args: &[Value]| {
        let id = MeetingId::new(args[0].as_i64()? as u64);
        match store.get_by_key("meetings", &[Value::from(id.raw())])? {
            None => Ok(Value::Null),
            Some(row) => {
                // Validate the stored record before serving it on.
                let rec = Meeting::from_value(&row.values[1])?;
                Ok(rec.to_value())
            }
        }
    })
}

/// Hosts `user`'s calendar read path on `proxy` and starts replication
/// from `app`'s primary store. Call once per hosted calendar user.
pub fn host_calendar_on_proxy(proxy: &ProxyHost, app: &CalendarApp) -> SydResult<()> {
    let user: UserId = app.user();
    let svc = calendar_service();
    proxy.host_user(user, |store| {
        replica_schema(store)?;
        Ok(vec![
            ((svc.clone(), "free_slots".to_owned()), free_slots_method()),
            (
                (svc.clone(), "slot_status".to_owned()),
                slot_status_method(),
            ),
            (
                (svc.clone(), "meeting_info".to_owned()),
                meeting_info_method(),
            ),
        ])
    })?;
    enable_replication(app.device(), proxy.addr(), &["slots", "meetings"])?;
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::model::{MeetingSpec, MeetingStatus};
    use std::time::{Duration, Instant};
    use syd_core::SydEnv;
    use syd_net::NetConfig;
    use syd_types::{SlotRange, TimeSlot};

    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(3);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out: {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn availability_queries_survive_a_disconnect() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let phil = CalendarApp::install(&env.device("phil", "").unwrap()).unwrap();
        let andy = CalendarApp::install(&env.device("andy", "").unwrap()).unwrap();
        let suzy = CalendarApp::install(&env.device("suzy", "").unwrap()).unwrap();
        let proxy = env.proxy("asp", "").unwrap();
        host_calendar_on_proxy(&proxy, &phil).unwrap();

        // Phil books two slots; replication mirrors them.
        phil.mark_busy(TimeSlot::new(0, 9)).unwrap();
        let outcome = phil
            .schedule(MeetingSpec::plain(
                "m",
                TimeSlot::new(0, 11),
                vec![andy.user()],
            ))
            .unwrap();
        assert_eq!(outcome.status, MeetingStatus::Confirmed);
        wait_for(
            || {
                proxy
                    .replica_store(phil.user())
                    .unwrap()
                    .row_count("slots")
                    .unwrap()
                    >= 2
            },
            "replication",
        );

        // Phil's iPAQ goes dark…
        phil.device().disconnect().unwrap();

        // …yet suzy can still plan around phil's calendar: find-common-
        // slots transparently reads phil's view from the proxy.
        let common = suzy
            .find_common_slots(
                &[suzy.user(), phil.user(), andy.user()],
                SlotRange::new(TimeSlot::new(0, 8), TimeSlot::new(0, 13)),
            )
            .unwrap();
        assert!(!common.contains(&TimeSlot::new(0, 9)), "phil busy at 9");
        assert!(!common.contains(&TimeSlot::new(0, 11)), "meeting at 11");
        assert!(common.contains(&TimeSlot::new(0, 8)));

        // Meeting info is served from the replica too.
        let info = suzy
            .device()
            .engine()
            .invoke(
                phil.user(),
                &calendar_service(),
                "meeting_info",
                vec![Value::from(outcome.meeting.raw())],
            )
            .unwrap();
        let rec = Meeting::from_value(&info).unwrap();
        assert_eq!(rec.id, outcome.meeting);

        // Scheduling with phil while he's off leaves the meeting tentative
        // (writes don't go to the proxy, by design).
        let attempt = suzy
            .schedule(MeetingSpec::plain(
                "while-away",
                TimeSlot::new(0, 8),
                vec![phil.user()],
            ))
            .unwrap();
        assert_eq!(attempt.status, MeetingStatus::Tentative);

        // Phil returns: the tentative meeting can now confirm.
        phil.device().reconnect().unwrap();
        let status = suzy.reconcile(attempt.meeting).unwrap();
        assert_eq!(status, MeetingStatus::Confirmed);
    }
}
