//! Calendar data model: slots, meetings, scheduling specs.

use syd_types::{Priority, SydError, SydResult, TimeSlot, UserId, Value};

pub use syd_types::MeetingId;

/// Name of the SyD entity representing one calendar slot on a device.
/// Entities are device-local, so every participant's copy of "day 3,
/// 14:00" has the same name on their own device.
pub fn slot_entity(ordinal: u64) -> String {
    format!("slot:{ordinal}")
}

/// Parses a slot entity name back to its ordinal.
pub fn parse_slot_entity(entity: &str) -> SydResult<u64> {
    entity
        .strip_prefix("slot:")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SydError::App(format!("not a slot entity: `{entity}`")))
}

/// State of one slot in a user's calendar. Absent row = free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotState {
    /// Nothing scheduled.
    Free,
    /// Personal (non-meeting) engagement.
    Busy,
    /// Held tentatively for a meeting.
    Tentative(MeetingId),
    /// Committed to a meeting.
    Reserved(MeetingId),
}

impl SlotState {
    /// The meeting holding this slot, if any.
    pub fn meeting(&self) -> Option<MeetingId> {
        match self {
            SlotState::Tentative(m) | SlotState::Reserved(m) => Some(*m),
            _ => None,
        }
    }

    /// True iff the slot has no occupant at all.
    pub fn is_free(&self) -> bool {
        matches!(self, SlotState::Free)
    }
}

/// Meeting lifecycle status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeetingStatus {
    /// Some participants could not be reserved; waiting on availability.
    Tentative,
    /// Every required participant holds the slot.
    Confirmed,
    /// Cancelled by the initiator.
    Cancelled,
    /// Lost its slot to a higher-priority meeting; being rescheduled.
    Bumped,
}

impl MeetingStatus {
    /// Stable storage string.
    pub fn as_str(self) -> &'static str {
        match self {
            MeetingStatus::Tentative => "tent",
            MeetingStatus::Confirmed => "conf",
            MeetingStatus::Cancelled => "cancelled",
            MeetingStatus::Bumped => "bumped",
        }
    }

    /// Inverse of [`MeetingStatus::as_str`].
    pub fn parse(s: &str) -> SydResult<MeetingStatus> {
        Ok(match s {
            "tent" => MeetingStatus::Tentative,
            "conf" => MeetingStatus::Confirmed,
            "cancelled" => MeetingStatus::Cancelled,
            "bumped" => MeetingStatus::Bumped,
            other => return Err(SydError::App(format!("bad meeting status `{other}`"))),
        })
    }
}

/// An OR-group in a meeting spec: at least `k` of `members` must attend
/// (§5's "50% among the faculty of Biology and at least two … from
/// Physics"; §6's "multiple 'OR' groups").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSpec {
    /// Candidate members.
    pub members: Vec<UserId>,
    /// Quorum: minimum attendees from this group.
    pub k: u32,
}

impl GroupSpec {
    /// Builds a group spec.
    pub fn new(members: Vec<UserId>, k: u32) -> Self {
        GroupSpec { members, k }
    }
}

/// What the initiator asks for when setting up a meeting.
#[derive(Clone, Debug)]
pub struct MeetingSpec {
    /// Meeting title (also the mailbox subject).
    pub title: String,
    /// The slot to schedule into.
    pub slot: TimeSlot,
    /// Users that must attend (the initiator is always required and is
    /// added automatically).
    pub must_attend: Vec<UserId>,
    /// OR-groups with quorums; group members attend when available.
    pub groups: Vec<GroupSpec>,
    /// Participants whose schedule may change at will (supervisors, §5):
    /// they get subscription back links instead of negotiation back links.
    pub supervisors: Vec<UserId>,
    /// Meeting priority — a strictly higher priority may bump existing
    /// reservations (§6).
    pub priority: Priority,
}

impl MeetingSpec {
    /// A plain meeting: everyone listed must attend.
    pub fn plain(title: impl Into<String>, slot: TimeSlot, attendees: Vec<UserId>) -> Self {
        MeetingSpec {
            title: title.into(),
            slot,
            must_attend: attendees,
            groups: Vec::new(),
            supervisors: Vec::new(),
            priority: Priority::NORMAL,
        }
    }

    /// Builder: sets the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Builder: adds an OR-group.
    pub fn with_group(mut self, group: GroupSpec) -> Self {
        self.groups.push(group);
        self
    }

    /// Builder: marks users as supervisors.
    pub fn with_supervisors(mut self, supervisors: Vec<UserId>) -> Self {
        self.supervisors = supervisors;
        self
    }

    /// Every user that may participate (musts + group members), deduped,
    /// preserving first-occurrence order.
    pub fn all_participants(&self, initiator: UserId) -> Vec<UserId> {
        let mut out = vec![initiator];
        for &u in self
            .must_attend
            .iter()
            .chain(self.groups.iter().flat_map(|g| g.members.iter()))
        {
            if !out.contains(&u) {
                out.push(u);
            }
        }
        out
    }
}

/// A meeting record, as stored in every participant's database.
#[derive(Clone, Debug, PartialEq)]
pub struct Meeting {
    /// Meeting id (globally unique: initiator-scoped).
    pub id: MeetingId,
    /// Title.
    pub title: String,
    /// The user who called the meeting (only they may cancel it).
    pub initiator: UserId,
    /// The slot (ordinal) the meeting occupies.
    pub ordinal: u64,
    /// Lifecycle status.
    pub status: MeetingStatus,
    /// Priority.
    pub priority: Priority,
    /// Link correlation id tying all this meeting's links together.
    pub corr: String,
    /// Users currently holding the slot for this meeting.
    pub reserved: Vec<UserId>,
    /// Users that must attend (including the initiator).
    pub musts: Vec<UserId>,
    /// OR-groups.
    pub groups: Vec<GroupSpec>,
    /// Supervisors.
    pub supervisors: Vec<UserId>,
}

impl Meeting {
    /// All users that may participate.
    pub fn all_participants(&self) -> Vec<UserId> {
        let mut out = self.musts.clone();
        for g in &self.groups {
            for &u in &g.members {
                if !out.contains(&u) {
                    out.push(u);
                }
            }
        }
        out
    }

    /// Users not currently reserved.
    pub fn missing(&self) -> Vec<UserId> {
        self.all_participants()
            .into_iter()
            .filter(|u| !self.reserved.contains(u))
            .collect()
    }

    /// True iff the reserved set satisfies musts + every group quorum.
    pub fn constraints_satisfied_by(&self, reserved: &[UserId]) -> bool {
        self.musts.iter().all(|m| reserved.contains(m))
            && self
                .groups
                .iter()
                .all(|g| g.members.iter().filter(|m| reserved.contains(m)).count() >= g.k as usize)
    }

    /// True iff the current reserved set satisfies the constraints.
    pub fn constraints_satisfied(&self) -> bool {
        self.constraints_satisfied_by(&self.reserved)
    }

    /// Wire/storage encoding.
    pub fn to_value(&self) -> Value {
        Value::map([
            ("id", Value::from(self.id.raw())),
            ("title", Value::str(self.title.clone())),
            ("initiator", Value::from(self.initiator.raw())),
            ("ordinal", Value::from(self.ordinal)),
            ("status", Value::str(self.status.as_str())),
            ("priority", Value::from(self.priority.level() as u32)),
            ("corr", Value::str(self.corr.clone())),
            (
                "reserved",
                Value::list(self.reserved.iter().map(|u| Value::from(u.raw()))),
            ),
            (
                "musts",
                Value::list(self.musts.iter().map(|u| Value::from(u.raw()))),
            ),
            (
                "groups",
                Value::list(self.groups.iter().map(|g| {
                    Value::map([
                        (
                            "members",
                            Value::list(g.members.iter().map(|u| Value::from(u.raw()))),
                        ),
                        ("k", Value::from(g.k)),
                    ])
                })),
            ),
            (
                "supervisors",
                Value::list(self.supervisors.iter().map(|u| Value::from(u.raw()))),
            ),
        ])
    }

    /// Inverse of [`Meeting::to_value`].
    pub fn from_value(v: &Value) -> SydResult<Meeting> {
        fn users(v: &Value) -> SydResult<Vec<UserId>> {
            v.as_list()?
                .iter()
                .map(|u| Ok(UserId::new(u.as_i64()? as u64)))
                .collect()
        }
        Ok(Meeting {
            id: MeetingId::new(v.get("id")?.as_i64()? as u64),
            title: v.get("title")?.as_str()?.to_owned(),
            initiator: UserId::new(v.get("initiator")?.as_i64()? as u64),
            ordinal: v.get("ordinal")?.as_i64()? as u64,
            status: MeetingStatus::parse(v.get("status")?.as_str()?)?,
            priority: Priority::new(v.get("priority")?.as_i64()? as u8),
            corr: v.get("corr")?.as_str()?.to_owned(),
            reserved: users(v.get("reserved")?)?,
            musts: users(v.get("musts")?)?,
            groups: v
                .get("groups")?
                .as_list()?
                .iter()
                .map(|g| {
                    Ok(GroupSpec {
                        members: users(g.get("members")?)?,
                        k: g.get("k")?.as_i64()? as u32,
                    })
                })
                .collect::<SydResult<_>>()?,
            supervisors: users(v.get("supervisors")?)?,
        })
    }
}

/// What [`crate::CalendarApp::schedule`] returns.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleOutcome {
    /// The new meeting's id.
    pub meeting: MeetingId,
    /// Confirmed or tentative.
    pub status: MeetingStatus,
    /// Users holding the slot.
    pub reserved: Vec<UserId>,
    /// Users the meeting is still waiting on.
    pub pending: Vec<UserId>,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn u(n: u64) -> UserId {
        UserId::new(n)
    }

    #[test]
    fn slot_entity_round_trip() {
        for ordinal in [0u64, 1, 99, 100_000] {
            assert_eq!(parse_slot_entity(&slot_entity(ordinal)).unwrap(), ordinal);
        }
        assert!(parse_slot_entity("meeting:4").is_err());
        assert!(parse_slot_entity("slot:abc").is_err());
    }

    #[test]
    fn slot_state_accessors() {
        assert!(SlotState::Free.is_free());
        assert!(!SlotState::Busy.is_free());
        assert_eq!(
            SlotState::Tentative(MeetingId::new(3)).meeting(),
            Some(MeetingId::new(3))
        );
        assert_eq!(SlotState::Busy.meeting(), None);
    }

    #[test]
    fn status_round_trip() {
        for s in [
            MeetingStatus::Tentative,
            MeetingStatus::Confirmed,
            MeetingStatus::Cancelled,
            MeetingStatus::Bumped,
        ] {
            assert_eq!(MeetingStatus::parse(s.as_str()).unwrap(), s);
        }
        assert!(MeetingStatus::parse("zzz").is_err());
    }

    #[test]
    fn spec_participants_dedupe_and_include_initiator() {
        let spec = MeetingSpec::plain("m", TimeSlot::new(1, 9), vec![u(2), u(3)])
            .with_group(GroupSpec::new(vec![u(3), u(4)], 1));
        let all = spec.all_participants(u(1));
        assert_eq!(all, vec![u(1), u(2), u(3), u(4)]);
    }

    fn meeting() -> Meeting {
        Meeting {
            id: MeetingId::new(7),
            title: "standup".into(),
            initiator: u(1),
            ordinal: 33,
            status: MeetingStatus::Tentative,
            priority: Priority::NORMAL,
            corr: "corr:1:5".into(),
            reserved: vec![u(1), u(2)],
            musts: vec![u(1), u(2)],
            groups: vec![GroupSpec::new(vec![u(3), u(4), u(5)], 2)],
            supervisors: vec![u(2)],
        }
    }

    #[test]
    fn meeting_value_round_trip() {
        let m = meeting();
        assert_eq!(Meeting::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn constraint_evaluation() {
        let m = meeting();
        // musts ok but group quorum (2 of {3,4,5}) unmet.
        assert!(!m.constraints_satisfied());
        assert!(m.constraints_satisfied_by(&[u(1), u(2), u(3), u(5)]));
        assert!(!m.constraints_satisfied_by(&[u(1), u(3), u(4)])); // must 2 missing
        assert!(!m.constraints_satisfied_by(&[u(1), u(2), u(3)])); // quorum 1 < 2
    }

    #[test]
    fn missing_lists_unreserved_participants() {
        let m = meeting();
        assert_eq!(m.missing(), vec![u(3), u(4), u(5)]);
        assert_eq!(m.all_participants(), vec![u(1), u(2), u(3), u(4), u(5)]);
    }
}
