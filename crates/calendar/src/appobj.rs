//! The SyD Application Object (§3.2): `Calendars_of_committee_SyDAppC`.
//!
//! "A SyDApp constructs an object called
//! `Calendars_of_phil+andy+suzy_SyDAppO` that 'links' together and defines
//! a set of methods that can operate on the calendar objects of all three
//! individuals … The SyDAppO may support the following methods:
//! `Find_earliest_meeting_time()`, `Change_meeting_time_to_next_available()`,
//! etc. The SyDAppO would be instantiated from a general class called
//! `Calendars_of_committee_SyDAppC` that could be provided by a vendor or
//! written by users themselves."
//!
//! [`CommitteeCalendar`] is that general class: an aggregation of member
//! calendars bound to one local [`CalendarApp`], exposing exactly the
//! paper's convenience methods on top of the kernel's group primitives.

use std::sync::Arc;

use syd_types::{SlotRange, SydError, SydResult, TimeSlot, UserId};

use crate::app::CalendarApp;
use crate::model::{MeetingId, MeetingSpec, MeetingStatus, ScheduleOutcome};

/// An aggregation of several users' calendars (`SyDAppO`), operated from
/// one member's device.
pub struct CommitteeCalendar {
    app: Arc<CalendarApp>,
    members: Vec<UserId>,
    name: String,
}

impl CommitteeCalendar {
    /// Builds the application object: `app`'s user plus `others` form the
    /// committee. The display name mimics the paper's
    /// `Calendars_of_phil+andy+suzy` convention.
    pub fn new(app: Arc<CalendarApp>, others: Vec<UserId>, names: &[&str]) -> Self {
        let mut members = vec![app.user()];
        for u in others {
            if !members.contains(&u) {
                members.push(u);
            }
        }
        CommitteeCalendar {
            app,
            members,
            name: format!("Calendars_of_{}", names.join("+")),
        }
    }

    /// The object's name, e.g. `Calendars_of_phil+andy+suzy`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Committee members (the local user first).
    pub fn members(&self) -> &[UserId] {
        &self.members
    }

    /// §3.2 `Find_earliest_meeting_time()`: the first slot in `range`
    /// every member has free.
    pub fn find_earliest_meeting_time(&self, range: SlotRange) -> SydResult<Option<TimeSlot>> {
        Ok(self
            .app
            .find_common_slots(&self.members, range)?
            .into_iter()
            .next())
    }

    /// Schedules a committee meeting at the earliest common slot in
    /// `range`.
    pub fn schedule_earliest(&self, title: &str, range: SlotRange) -> SydResult<ScheduleOutcome> {
        let slot = self
            .find_earliest_meeting_time(range)?
            .ok_or_else(|| SydError::App(format!("{}: no common slot in {range}", self.name)))?;
        let others: Vec<UserId> = self
            .members
            .iter()
            .copied()
            .filter(|&u| u != self.app.user())
            .collect();
        self.app.schedule(MeetingSpec::plain(title, slot, others))
    }

    /// §3.2 `Change_meeting_time_to_next_available()`: moves an existing
    /// committee meeting to the next slot after its current one that every
    /// member has free. Returns the new slot.
    pub fn change_meeting_time_to_next_available(
        &self,
        meeting: MeetingId,
        horizon: u64,
    ) -> SydResult<TimeSlot> {
        let rec = self
            .app
            .meeting(meeting)?
            .ok_or_else(|| SydError::App(format!("unknown meeting {meeting}")))?;
        let search = SlotRange::new(
            TimeSlot::from_ordinal(rec.ordinal + 1),
            TimeSlot::from_ordinal(rec.ordinal + 1 + horizon),
        );
        let candidates = self.app.find_common_slots(&self.members, search)?;
        for slot in candidates {
            if self.app.request_change(meeting, slot)? {
                return Ok(slot);
            }
            // A candidate can be stolen between the query and the move;
            // try the next one — the negotiation keeps this race safe.
        }
        Err(SydError::App(format!(
            "{}: no movable slot within {horizon} slots",
            self.name
        )))
    }

    /// The committee's view of a meeting, read from the local record.
    pub fn meeting_status(&self, meeting: MeetingId) -> SydResult<Option<MeetingStatus>> {
        Ok(self.app.meeting(meeting)?.map(|m| m.status))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_core::SydEnv;
    use syd_net::NetConfig;

    fn rig() -> (SydEnv, Vec<Arc<CalendarApp>>) {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let apps = ["phil", "andy", "suzy"]
            .iter()
            .map(|n| CalendarApp::install(&env.device(n, "").unwrap()).unwrap())
            .collect();
        (env, apps)
    }

    fn committee(apps: &[Arc<CalendarApp>]) -> CommitteeCalendar {
        CommitteeCalendar::new(
            Arc::clone(&apps[0]),
            apps[1..].iter().map(|a| a.user()).collect(),
            &["phil", "andy", "suzy"],
        )
    }

    #[test]
    fn naming_follows_the_paper() {
        let (_env, apps) = rig();
        let c = committee(&apps);
        assert_eq!(c.name(), "Calendars_of_phil+andy+suzy");
        assert_eq!(c.members().len(), 3);
    }

    #[test]
    fn find_earliest_skips_anyones_busy_slot() {
        let (_env, apps) = rig();
        let c = committee(&apps);
        apps[0].mark_busy(TimeSlot::new(0, 0)).unwrap();
        apps[1].mark_busy(TimeSlot::new(0, 1)).unwrap();
        apps[2].mark_busy(TimeSlot::new(0, 2)).unwrap();
        let earliest = c
            .find_earliest_meeting_time(SlotRange::whole_day(0))
            .unwrap();
        assert_eq!(earliest, Some(TimeSlot::new(0, 3)));
    }

    #[test]
    fn schedule_earliest_confirms() {
        let (_env, apps) = rig();
        let c = committee(&apps);
        apps[1].mark_busy(TimeSlot::new(0, 0)).unwrap();
        let outcome = c
            .schedule_earliest("committee sync", SlotRange::whole_day(0))
            .unwrap();
        assert_eq!(outcome.status, MeetingStatus::Confirmed);
        let rec = apps[0].meeting(outcome.meeting).unwrap().unwrap();
        assert_eq!(rec.ordinal, TimeSlot::new(0, 1).ordinal());
        // No common slot at all → error.
        for app in &apps {
            for slot in SlotRange::whole_day(1).iter() {
                let _ = app.mark_busy(slot);
            }
        }
        assert!(c
            .schedule_earliest("impossible", SlotRange::whole_day(1))
            .is_err());
    }

    #[test]
    fn change_to_next_available_moves_past_conflicts() {
        let (_env, apps) = rig();
        let c = committee(&apps);
        let outcome = c
            .schedule_earliest("sync", SlotRange::whole_day(0))
            .unwrap();
        // Members are busy in the next two slots after the meeting.
        apps[1].mark_busy(TimeSlot::new(0, 1)).unwrap();
        apps[2].mark_busy(TimeSlot::new(0, 2)).unwrap();
        let new_slot = c
            .change_meeting_time_to_next_available(outcome.meeting, 24)
            .unwrap();
        assert_eq!(new_slot, TimeSlot::new(0, 3));
        for app in &apps {
            assert_eq!(
                app.slot_state(new_slot.ordinal()).unwrap().meeting(),
                Some(outcome.meeting)
            );
            assert!(app.slot_state(0).unwrap().is_free());
        }
        assert_eq!(
            c.meeting_status(outcome.meeting).unwrap(),
            Some(MeetingStatus::Confirmed)
        );
    }

    #[test]
    fn change_fails_when_nothing_is_available() {
        let (_env, apps) = rig();
        let c = committee(&apps);
        let outcome = c
            .schedule_earliest("sync", SlotRange::whole_day(0))
            .unwrap();
        for slot in SlotRange::new(TimeSlot::new(0, 1), TimeSlot::new(0, 6)).iter() {
            apps[1].mark_busy(slot).unwrap();
        }
        let err = c
            .change_meeting_time_to_next_available(outcome.meeting, 4)
            .unwrap_err();
        assert!(err.to_string().contains("no movable slot"), "{err}");
        // Meeting unchanged.
        let rec = apps[0].meeting(outcome.meeting).unwrap().unwrap();
        assert_eq!(rec.ordinal, 0);
    }
}
