//! Scheduling operations: the §5 meeting lifecycle as initiator-side logic.
//!
//! Everything here runs on the initiator's device and drives peers through
//! the kernel: the negotiation protocol for reservations, coordination
//! links for change propagation, and direct service calls for bookkeeping.
//!
//! The workhorse is [`CalendarApp::reconcile`]: one repair round that
//! reserves whoever is now available, re-evaluates the meeting's
//! constraints (musts + OR-group quorums), escalates tentative → confirmed
//! (or degrades back), installs back links at new holders, and queues
//! availability links at the still-missing. Meeting setup, peer-available
//! wakeups, participant changes and post-bump rescheduling all funnel into
//! it, which is what makes the whole lifecycle idempotent and
//! re-entrant — the property the paper's event-driven triggers need.

use syd_core::links::{Constraint, LinkKind, LinkRef, LinkSpec};
use syd_core::negotiate::Participant;
use syd_store::Predicate;
use syd_telemetry::EventKind;
use syd_types::{MeetingId, SlotBitmap, SlotRange, SydError, SydResult, TimeSlot, UserId, Value};

use crate::app::{calendar_service, CalendarApp, T_BACKLINKS};
use crate::model::{slot_entity, Meeting, MeetingSpec, MeetingStatus, ScheduleOutcome};

/// How far ahead (in slots) auto-rescheduling searches for a new time.
const RESCHEDULE_HORIZON: u64 = 7 * 24;

/// How many times a lock-contended reservation grab is retried before the
/// round gives up and leaves the meeting tentative.
const GRAB_RETRIES: u32 = 4;

/// Backoff before retrying a contended grab. Staggered by user id so two
/// racing coordinators don't re-collide in lockstep, growing per attempt.
fn grab_backoff(user: UserId, attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(u64::from(attempt + 1) * (3 + user.raw() % 7))
}

impl CalendarApp {
    // ---- queries -------------------------------------------------------------

    /// §5 step (i)–(iii): query every participant for free slots in the
    /// range and intersect the views. Fails if any participant cannot be
    /// reached — "ensure that all participants confirm, before the
    /// subsequent actions would be valid".
    ///
    /// Availability travels as a [`SlotBitmap`] — one bit per slot in the
    /// window, whatever the calendars' density — and the views intersect
    /// by bitwise AND. A peer that predates the bitmap method (it answers
    /// [`SydError::NoSuchService`]) is re-queried with the classic
    /// ordinal-list `free_slots` form, so mixed fleets keep working.
    pub fn find_common_slots(
        &self,
        participants: &[UserId],
        range: SlotRange,
    ) -> SydResult<Vec<TimeSlot>> {
        let start = range.start.ordinal();
        let end = range.end.ordinal();
        // Local view first.
        let mut common = self.free_bitmap(start, end)?;
        let others: Vec<UserId> = participants
            .iter()
            .copied()
            .filter(|&u| u != self.user())
            .collect();
        let result = self.device.engine().invoke_group(
            &others,
            &calendar_service(),
            "free_slots_bitmap",
            vec![Value::from(start), Value::from(end)],
        );
        for (user, outcome) in result.outcomes {
            let theirs = match outcome {
                Ok(v) => SlotBitmap::unpack(v.as_bytes()?)?,
                Err(SydError::NoSuchService(_, _)) => {
                    // Back-compat: ordinal list from an old peer.
                    let free = self
                        .device
                        .engine()
                        .invoke(
                            user,
                            &calendar_service(),
                            "free_slots",
                            vec![Value::from(start), Value::from(end)],
                        )
                        .map_err(|e| SydError::App(format!("could not query {user}: {e}")))?;
                    let ords = free
                        .as_list()?
                        .iter()
                        .filter_map(|v| v.as_i64().ok())
                        .map(|n| TimeSlot::from_ordinal(n as u64));
                    SlotBitmap::from_free_slots(range, ords)
                }
                Err(e) => {
                    return Err(SydError::App(format!("could not query {user}: {e}")));
                }
            };
            common.and_assign(&theirs);
        }
        Ok(common.to_slots())
    }

    /// The pre-bitmap form of [`CalendarApp::find_common_slots`]: every
    /// peer returns its free ordinals as a list and the initiator
    /// intersects by membership scan. Kept (and tested) as the
    /// compatibility reference and for A/B benchmarking — both paths must
    /// return identical slots in identical (ascending) order.
    pub fn find_common_slots_via_lists(
        &self,
        participants: &[UserId],
        range: SlotRange,
    ) -> SydResult<Vec<TimeSlot>> {
        let start = range.start.ordinal();
        let end = range.end.ordinal();
        // Local view first.
        let mut common: Option<Vec<u64>> = Some(self.free_ordinals(start, end)?);
        let others: Vec<UserId> = participants
            .iter()
            .copied()
            .filter(|&u| u != self.user())
            .collect();
        let result = self.device.engine().invoke_group(
            &others,
            &calendar_service(),
            "free_slots",
            vec![Value::from(start), Value::from(end)],
        );
        for (user, outcome) in result.outcomes {
            let free =
                outcome.map_err(|e| SydError::App(format!("could not query {user}: {e}")))?;
            let theirs: Vec<u64> = free
                .as_list()?
                .iter()
                .filter_map(|v| v.as_i64().ok().map(|n| n as u64))
                .collect();
            let current = common.take().unwrap_or_default();
            common = Some(current.into_iter().filter(|o| theirs.contains(o)).collect());
        }
        Ok(common
            .unwrap_or_default()
            .into_iter()
            .map(TimeSlot::from_ordinal)
            .collect())
    }

    // ---- meeting setup ---------------------------------------------------------

    /// Sets up a meeting (§5): reserves the chosen slot at every available
    /// participant and returns a confirmed or tentative outcome.
    pub fn schedule(&self, spec: MeetingSpec) -> SydResult<ScheduleOutcome> {
        // One meeting setup = one trace: every RPC this call fans out
        // (status queries, negotiation marks/commits, link installs)
        // carries the same trace id across all participants' journals —
        // and the root `calendar.schedule_op` span anchors the tree the
        // critical-path analyzer attributes.
        let mut op_span = self
            .device
            .node()
            .tracer()
            .span(syd_telemetry::names::SPAN_SCHEDULE);
        let started = std::time::Instant::now();
        let id = self.alloc_meeting();
        op_span.attr("meeting", id.raw());
        self.device.journal().record(
            EventKind::SpanBegin,
            format!(
                "calendar.schedule meeting={} slot={}",
                id.raw(),
                spec.slot.ordinal()
            ),
        );
        let result = self.schedule_inner(id, spec);
        self.metrics.schedule.record_duration(started.elapsed());
        self.device.journal().record(
            EventKind::SpanEnd,
            match &result {
                Ok(out) => format!(
                    "calendar.schedule meeting={} status={:?}",
                    id.raw(),
                    out.status
                ),
                Err(err) => format!("calendar.schedule meeting={} error={err}", id.raw()),
            },
        );
        result
    }

    fn schedule_inner(&self, id: MeetingId, spec: MeetingSpec) -> SydResult<ScheduleOutcome> {
        let corr = format!("meeting:{}", id.raw());
        let ordinal = spec.slot.ordinal();

        let mut musts = spec.must_attend.clone();
        if !musts.contains(&self.user()) {
            musts.insert(0, self.user());
        }
        let rec = Meeting {
            id,
            title: spec.title.clone(),
            initiator: self.user(),
            ordinal,
            status: MeetingStatus::Tentative,
            priority: spec.priority,
            corr: corr.clone(),
            reserved: Vec::new(),
            musts,
            groups: spec.groups.clone(),
            supervisors: spec.supervisors.clone(),
        };
        self.put_meeting(&rec)?;

        // The forward negotiation-and link from the initiator's slot to
        // every participant's slot (§5: "a negotiation-and link is created
        // from user A's slot to the specific slot in each calendar table").
        let participants = rec.all_participants();
        let refs: Vec<LinkRef> = participants
            .iter()
            .map(|&u| LinkRef::new(u, slot_entity(ordinal), "reserve"))
            .collect();
        self.device.links().add_local(
            LinkSpec::negotiation(slot_entity(ordinal), Constraint::And, refs)
                .with_priority(spec.priority)
                .with_corr(corr),
        )?;

        let status = self.reconcile(id)?;
        let rec = self
            .meeting(id)?
            .ok_or_else(|| SydError::App(format!("meeting {id:?} vanished after write")))?;
        Ok(ScheduleOutcome {
            meeting: id,
            status,
            reserved: rec.reserved.clone(),
            pending: rec.missing(),
        })
    }

    // ---- the repair round --------------------------------------------------------

    /// One reservation/repair round (see module docs). Initiator only.
    pub fn reconcile(&self, id: MeetingId) -> SydResult<MeetingStatus> {
        let mut op_span = self
            .device
            .node()
            .tracer()
            .span(syd_telemetry::names::SPAN_RECONCILE);
        op_span.attr("meeting", id.raw());
        let started = std::time::Instant::now();
        let result = self.reconcile_inner(id);
        self.metrics.reconcile.record_duration(started.elapsed());
        result
    }

    fn reconcile_inner(&self, id: MeetingId) -> SydResult<MeetingStatus> {
        let guard = self.reconcile_guard(id);
        let _g = guard.lock();

        let Some(mut rec) = self.meeting(id)? else {
            return Err(SydError::App(format!("unknown meeting {id}")));
        };
        if rec.initiator != self.user() {
            return Err(SydError::App(format!(
                "{} is not the initiator of {id}",
                self.user()
            )));
        }
        if matches!(rec.status, MeetingStatus::Cancelled | MeetingStatus::Bumped) {
            return Ok(rec.status);
        }
        let svc = calendar_service();
        let participants = rec.all_participants();
        let ordinal = rec.ordinal;

        // Who currently holds the slot for this meeting?
        let status_calls: Vec<(UserId, Vec<Value>)> = participants
            .iter()
            .map(|&u| (u, vec![Value::from(ordinal)]))
            .collect();
        let statuses = self
            .device
            .engine()
            .invoke_group_varied(&status_calls, &svc, "slot_status");
        let mut holders: Vec<UserId> = Vec::new();
        let mut missing: Vec<UserId> = Vec::new();
        for (user, outcome) in statuses.outcomes {
            let holds = outcome
                .ok()
                .and_then(|v| v.get("meeting").ok().and_then(|m| m.as_i64().ok()))
                .is_some_and(|m| m as u64 == id.raw());
            if holds {
                holders.push(user);
            } else {
                missing.push(user);
            }
        }

        // Grab whoever is now available. A contended round (another
        // initiator's negotiation mid-flight on some slot) commits
        // nothing; back off for a user-staggered moment and retry so that
        // exactly one of the racing coordinators ends up holding the
        // slots — committing partial sets under crossed locks is how a
        // slot gets split between two meetings.
        let mut newly: Vec<UserId> = Vec::new();
        if !missing.is_empty() {
            let change = Self::reserve_change(&rec);
            let parts: Vec<Participant> = missing
                .iter()
                .map(|&u| Participant::new(u, slot_entity(ordinal), change.clone()))
                .collect();
            let mut outcome = self.device.negotiator().negotiate_available(&parts)?;
            for attempt in 0..GRAB_RETRIES {
                if outcome.contended.is_empty() {
                    break;
                }
                std::thread::sleep(grab_backoff(self.user(), attempt));
                outcome = self.device.negotiator().negotiate_available(&parts)?;
            }
            newly = outcome.committed;
            holders.extend(newly.iter().copied());
            missing.retain(|u| !holders.contains(u));
        }

        // Evaluate constraints and set the status.
        let reserved: Vec<UserId> = participants
            .iter()
            .copied()
            .filter(|u| holders.contains(u))
            .collect();
        let satisfied =
            rec.constraints_satisfied_by(&reserved) && reserved.contains(&rec.initiator);
        let previous = rec.status;
        rec.reserved = reserved;
        rec.status = if satisfied {
            MeetingStatus::Confirmed
        } else {
            MeetingStatus::Tentative
        };
        self.put_meeting(&rec)?;

        // Broadcast the record (best effort; unreachable peers catch up on
        // the next round).
        let _ = self.device.engine().invoke_group(
            &participants,
            &svc,
            "update_meeting",
            vec![rec.to_value()],
        );

        // Back links at holders that lack one (§5: "the target slots at A,
        // B, C and D create negotiation links back to A's slot"; a
        // supervisor gets "only a subscription back link").
        for &user in &rec.reserved {
            if user == self.user() || self.backlink_installed(id, user)? {
                continue;
            }
            let kind = if rec.supervisors.contains(&user) {
                LinkKind::Subscription
            } else {
                LinkKind::Negotiation(Constraint::And)
            };
            let back = syd_core::links::Link {
                id: syd_types::LinkId::new(0),
                kind,
                status: syd_core::links::LinkStatus::Permanent,
                entity: slot_entity(ordinal),
                refs: vec![LinkRef::new(
                    rec.initiator,
                    slot_entity(ordinal),
                    format!("participant_changed:{}", id.raw()),
                )],
                priority: rec.priority,
                created: self.device.clock().now(),
                expires: None,
                corr: rec.corr.clone(),
            };
            if self
                .device
                .engine()
                .invoke(
                    user,
                    &syd_core::negotiate::link_service(),
                    "install_link",
                    vec![back.to_value()],
                )
                .is_ok()
            {
                self.mark_backlink(id, user)?;
            }
        }

        // Availability queues at the missing; drop stale queues at the
        // newly reserved.
        for &user in &missing {
            let _ = self.device.engine().invoke(
                user,
                &svc,
                "queue_availability",
                vec![Value::from(ordinal), rec.to_value()],
            );
        }
        for &user in &newly {
            if user == self.user() {
                let _ = self.drop_availability_local(id);
            } else {
                let _ = self.device.engine().invoke(
                    user,
                    &svc,
                    "drop_availability",
                    vec![Value::from(id.raw())],
                );
            }
        }

        // E-mail on the tentative → confirmed transition (§5.1).
        if rec.status == MeetingStatus::Confirmed && previous != MeetingStatus::Confirmed {
            for &user in &rec.reserved {
                if user != self.user() {
                    let _ = self.mailbox.send(
                        user,
                        &format!("confirmed: {}", rec.title),
                        &format!("meeting {} at ordinal {}", rec.id, rec.ordinal),
                    );
                }
            }
        }
        self.device
            .events()
            .publish_local("calendar.reconciled", &Value::from(id.raw()));
        self.device.journal().record(
            EventKind::Info,
            format!(
                "calendar.reconcile meeting={} status={:?} reserved={}",
                id.raw(),
                rec.status,
                rec.reserved.len()
            ),
        );
        Ok(rec.status)
    }

    fn reserve_change(rec: &Meeting) -> Value {
        Value::map([
            ("action", Value::str("reserve")),
            ("meeting", Value::from(rec.id.raw())),
            ("priority", Value::from(rec.priority.level() as u32)),
            ("record", rec.to_value()),
        ])
    }

    fn backlink_installed(&self, meeting: MeetingId, user: UserId) -> SydResult<bool> {
        Ok(self
            .store
            .get_by_key(
                T_BACKLINKS,
                &[Value::from(meeting.raw()), Value::from(user.raw())],
            )?
            .is_some())
    }

    fn mark_backlink(&self, meeting: MeetingId, user: UserId) -> SydResult<()> {
        let _ = self.store.insert(
            T_BACKLINKS,
            vec![Value::from(meeting.raw()), Value::from(user.raw())],
        );
        Ok(())
    }

    fn clear_backlinks(&self, meeting: MeetingId) -> SydResult<()> {
        self.store.delete(
            T_BACKLINKS,
            &Predicate::Eq("meeting".into(), Value::from(meeting.raw())),
        )?;
        Ok(())
    }

    // ---- cancellation (§4.4) ----------------------------------------------------

    /// Cancels a meeting. Initiator only (§6; participants use
    /// [`CalendarApp::leave`]). Releases every slot, tears the link web
    /// down (cascade), and thereby promotes waiting availability links of
    /// other tentative meetings — the paper's automatic tentative →
    /// confirmed conversion.
    pub fn cancel(&self, id: MeetingId) -> SydResult<()> {
        let Some(mut rec) = self.meeting(id)? else {
            return Err(SydError::App(format!("unknown meeting {id}")));
        };
        if rec.initiator != self.user() {
            return Err(SydError::App(
                "only the initiator can cancel a meeting".into(),
            ));
        }
        if rec.status == MeetingStatus::Cancelled {
            return Ok(());
        }
        self.metrics.cancels.inc();
        self.device.journal().record(
            EventKind::Info,
            format!("calendar.cancel meeting={}", id.raw()),
        );
        let reserved = rec.reserved.clone();
        rec.status = MeetingStatus::Cancelled;
        rec.reserved.clear();
        self.put_meeting(&rec)?;
        let svc = calendar_service();
        let participants = rec.all_participants();

        // Step 5: update the calendar databases (free the slots). This
        // fires permanent availability links at each device.
        let _ = self.device.engine().invoke_group(
            &participants,
            &svc,
            "release_slot",
            vec![
                Value::from(rec.ordinal),
                Value::from(id.raw()),
                Value::str("cancelled"),
            ],
        );
        let _ = self.device.engine().invoke_group(
            &participants,
            &svc,
            "update_meeting",
            vec![rec.to_value()],
        );

        // Steps 1–4, 6–7: delete the link web; cascades along the corr and
        // promotes the highest-priority waiting links at every device.
        loop {
            let links = self.device.links().by_corr(&rec.corr)?;
            let Some(first) = links.first() else { break };
            let _ = self.device.links().delete(first.id, true);
        }
        self.clear_backlinks(id)?;

        // Drop availability queues of this meeting at non-reserved
        // participants.
        for &user in &participants {
            if user == self.user() {
                let _ = self.drop_availability_local(id);
            } else {
                let _ = self.device.engine().invoke(
                    user,
                    &svc,
                    "drop_availability",
                    vec![Value::from(id.raw())],
                );
            }
        }

        for &user in &reserved {
            if user != self.user() {
                let _ = self.mailbox.send(
                    user,
                    &format!("cancelled: {}", rec.title),
                    &format!("meeting {} was cancelled", rec.id),
                );
            }
        }
        Ok(())
    }

    // ---- change of time (§5: "D wants to change the schedule") -----------------

    /// Asks the meeting's initiator to move it to `new_slot`. Called on a
    /// participant's device; returns whether the move happened. "If not
    /// all can agree, then D would be unable to change the schedule."
    pub fn request_change(&self, id: MeetingId, new_slot: TimeSlot) -> SydResult<bool> {
        let Some(rec) = self.meeting(id)? else {
            return Err(SydError::App(format!("unknown meeting {id}")));
        };
        if rec.initiator == self.user() {
            return self.handle_change_request(id, new_slot.ordinal());
        }
        let out = self.device.engine().invoke(
            rec.initiator,
            &calendar_service(),
            "change_request",
            vec![
                Value::from(id.raw()),
                Value::from(new_slot.ordinal()),
                Value::from(self.user().raw()),
            ],
        )?;
        out.as_bool()
    }

    /// Initiator side of a change request: negotiation-and over every
    /// current holder at the new slot; only if all can move does the
    /// meeting move.
    pub(crate) fn handle_change_request(&self, id: MeetingId, new_ordinal: u64) -> SydResult<bool> {
        let guard = self.reconcile_guard(id);
        let _g = guard.lock();
        let Some(mut rec) = self.meeting(id)? else {
            return Ok(false);
        };
        if matches!(rec.status, MeetingStatus::Cancelled) || rec.ordinal == new_ordinal {
            return Ok(false);
        }
        let old_ordinal = rec.ordinal;
        let holders = rec.reserved.clone();
        if holders.is_empty() {
            return Ok(false);
        }
        // All-or-nothing reserve at the new slot.
        let mut moved_rec = rec.clone();
        moved_rec.ordinal = new_ordinal;
        let change = Self::reserve_change(&moved_rec);
        let parts: Vec<Participant> = holders
            .iter()
            .map(|&u| Participant::new(u, slot_entity(new_ordinal), change.clone()))
            .collect();
        let outcome = self.device.negotiator().negotiate_and(&parts)?;
        if !outcome.satisfied {
            return Ok(false);
        }

        let svc = calendar_service();
        let participants = rec.all_participants();
        // Free the old slots and retire the old link web.
        let _ = self.device.engine().invoke_group(
            &participants,
            &svc,
            "release_slot",
            vec![
                Value::from(old_ordinal),
                Value::from(id.raw()),
                Value::str(rec.status.as_str()),
            ],
        );
        loop {
            let links = self.device.links().by_corr(&rec.corr)?;
            let Some(first) = links.first() else { break };
            let _ = self.device.links().delete(first.id, true);
        }
        self.clear_backlinks(id)?;

        rec.ordinal = new_ordinal;
        self.put_meeting(&rec)?;
        // Fresh forward link at the new slot, then a repair round to
        // rebuild back links, availability queues and the status.
        let refs: Vec<LinkRef> = participants
            .iter()
            .map(|&u| LinkRef::new(u, slot_entity(new_ordinal), "reserve"))
            .collect();
        self.device.links().add_local(
            LinkSpec::negotiation(slot_entity(new_ordinal), Constraint::And, refs)
                .with_priority(rec.priority)
                .with_corr(rec.corr.clone()),
        )?;
        drop(_g);
        let _ = self.reconcile(id)?;
        Ok(true)
    }

    // ---- leaving (§5.1 "can drop out of the meeting if the constraints
    // are still met"; §5 quorum cancellation) ------------------------------------

    /// Asks to drop out of a meeting. Granted if the constraints still
    /// hold without this user, or if a replacement group member commits;
    /// must-attendees can never leave.
    pub fn leave(&self, id: MeetingId) -> SydResult<bool> {
        let Some(rec) = self.meeting(id)? else {
            return Err(SydError::App(format!("unknown meeting {id}")));
        };
        if rec.initiator == self.user() {
            return Err(SydError::App(
                "the initiator cancels rather than leaves".into(),
            ));
        }
        let out = self.device.engine().invoke(
            rec.initiator,
            &calendar_service(),
            "leave_request",
            vec![Value::from(id.raw()), Value::from(self.user().raw())],
        )?;
        out.as_bool()
    }

    pub(crate) fn handle_leave_request(&self, id: MeetingId, user: UserId) -> SydResult<bool> {
        let guard = self.reconcile_guard(id);
        let _g = guard.lock();
        let Some(mut rec) = self.meeting(id)? else {
            return Ok(false);
        };
        if rec.musts.contains(&user) || !rec.reserved.contains(&user) {
            return Ok(false);
        }
        let hypothetical: Vec<UserId> = rec
            .reserved
            .iter()
            .copied()
            .filter(|&u| u != user)
            .collect();
        if !rec.constraints_satisfied_by(&hypothetical) {
            // Try to recruit replacements from the affected groups
            // ("only if an additional commitment is found, is the
            // cancellation request granted").
            let candidates: Vec<UserId> = rec
                .groups
                .iter()
                .filter(|g| g.members.contains(&user))
                .flat_map(|g| g.members.iter().copied())
                .filter(|&u| u != user && !rec.reserved.contains(&u))
                .collect();
            if candidates.is_empty() {
                return Ok(false);
            }
            let change = Self::reserve_change(&rec);
            let parts: Vec<Participant> = candidates
                .iter()
                .map(|&u| Participant::new(u, slot_entity(rec.ordinal), change.clone()))
                .collect();
            let outcome = self.device.negotiator().negotiate_available(&parts)?;
            let mut extended = hypothetical.clone();
            extended.extend(outcome.committed.iter().copied());
            if !rec.constraints_satisfied_by(&extended) {
                // Release the recruits we grabbed but cannot use.
                for &u in &outcome.committed {
                    let _ = self.device.engine().invoke(
                        u,
                        &calendar_service(),
                        "release_slot",
                        vec![
                            Value::from(rec.ordinal),
                            Value::from(id.raw()),
                            Value::str(rec.status.as_str()),
                        ],
                    );
                }
                return Ok(false);
            }
            rec.reserved = rec
                .all_participants()
                .into_iter()
                .filter(|u| extended.contains(u))
                .collect();
        } else {
            rec.reserved = hypothetical;
        }
        self.put_meeting(&rec)?;
        // Free the leaver's slot and broadcast the new roster.
        let _ = self.device.engine().invoke(
            user,
            &calendar_service(),
            "release_slot",
            vec![
                Value::from(rec.ordinal),
                Value::from(id.raw()),
                Value::str(rec.status.as_str()),
            ],
        );
        let participants = rec.all_participants();
        let _ = self.device.engine().invoke_group(
            &participants,
            &calendar_service(),
            "update_meeting",
            vec![rec.to_value()],
        );
        Ok(true)
    }

    // ---- supervisor unilateral change (§5) --------------------------------------

    /// A supervisor changes their schedule at will: frees the meeting's
    /// slot (optionally marking a new personal engagement) and informs the
    /// initiator through the subscription back link. The meeting degrades
    /// to tentative and waits for the supervisor to become available.
    pub fn supervisor_change(
        &self,
        id: MeetingId,
        new_engagement: Option<TimeSlot>,
    ) -> SydResult<()> {
        let Some(rec) = self.meeting(id)? else {
            return Err(SydError::App(format!("unknown meeting {id}")));
        };
        if !rec.supervisors.contains(&self.user()) {
            return Err(SydError::App(format!(
                "{} is not a supervisor of {id}",
                self.user()
            )));
        }
        self.release_local(rec.ordinal, id, rec.status.as_str())?;
        if let Some(slot) = new_engagement {
            self.mark_busy(slot)?;
        }
        // Inform the initiator through the back subscription link when
        // present, directly otherwise.
        let entity = slot_entity(rec.ordinal);
        let back = self
            .device
            .links()
            .by_corr(&rec.corr)?
            .into_iter()
            .find(|l| l.entity == entity && matches!(l.kind, LinkKind::Subscription));
        match back {
            Some(link) => {
                let _ = self.device.links().fire_link(
                    &link,
                    &Value::str("supervisor changed schedule"),
                    self.device.negotiator(),
                );
            }
            None => {
                let _ = self.device.engine().invoke(
                    rec.initiator,
                    &calendar_service(),
                    "peer_available",
                    vec![Value::from(id.raw())],
                );
            }
        }
        Ok(())
    }

    // ---- bump rescheduling (§6) ---------------------------------------------------

    /// Reschedules a meeting that lost its slot to a higher-priority one.
    /// Idempotent per bump; runs synchronously in the `meeting_bumped`
    /// service call (which the bumper fires asynchronously).
    pub(crate) fn auto_reschedule(&self, id: MeetingId, old_ordinal: u64) {
        {
            let mut guard = self.rescheduling.lock();
            if guard.contains(&id) {
                return;
            }
            guard.push(id);
        }
        let result = self.auto_reschedule_inner(id, old_ordinal);
        self.rescheduling.lock().retain(|&m| m != id);
        if let Err(err) = result {
            self.device
                .events()
                .publish_local("calendar.reschedule_failed", &Value::str(err.to_string()));
        }
    }

    fn auto_reschedule_inner(&self, id: MeetingId, old_ordinal: u64) -> SydResult<()> {
        let Some(mut rec) = self.meeting(id)? else {
            return Ok(());
        };
        if rec.initiator != self.user() || rec.status == MeetingStatus::Cancelled {
            return Ok(());
        }
        let svc = calendar_service();
        let participants = rec.all_participants();

        // Release whatever remains of the old reservation and retire the
        // old link web (promoting any waiting links at those slots).
        let _ = self.device.engine().invoke_group(
            &participants,
            &svc,
            "release_slot",
            vec![
                Value::from(old_ordinal),
                Value::from(id.raw()),
                Value::str("bumped"),
            ],
        );
        loop {
            let links = self.device.links().by_corr(&rec.corr)?;
            let Some(first) = links.first() else { break };
            let _ = self.device.links().delete(first.id, true);
        }
        self.clear_backlinks(id)?;

        // Find the next slot everyone shares.
        let range = SlotRange::new(
            TimeSlot::from_ordinal(old_ordinal + 1),
            TimeSlot::from_ordinal(old_ordinal + 1 + RESCHEDULE_HORIZON),
        );
        let candidates = self.find_common_slots(&participants, range)?;
        let Some(new_slot) = candidates.first() else {
            rec.status = MeetingStatus::Bumped;
            self.put_meeting(&rec)?;
            for &user in &participants {
                if user != self.user() {
                    let _ = self.mailbox.send(
                        user,
                        &format!("bumped: {}", rec.title),
                        "no common slot found for automatic rescheduling",
                    );
                }
            }
            return Ok(());
        };

        rec.ordinal = new_slot.ordinal();
        rec.status = MeetingStatus::Tentative;
        rec.reserved.clear();
        self.put_meeting(&rec)?;
        let refs: Vec<LinkRef> = participants
            .iter()
            .map(|&u| LinkRef::new(u, slot_entity(rec.ordinal), "reserve"))
            .collect();
        self.device.links().add_local(
            LinkSpec::negotiation(slot_entity(rec.ordinal), Constraint::And, refs)
                .with_priority(rec.priority)
                .with_corr(rec.corr.clone()),
        )?;
        let status = self.reconcile(id)?;
        for &user in &participants {
            if user != self.user() {
                let _ = self.mailbox.send(
                    user,
                    &format!("rescheduled: {}", rec.title),
                    &format!("moved to ordinal {} ({status:?})", rec.ordinal),
                );
            }
        }
        Ok(())
    }
}
