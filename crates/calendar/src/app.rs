//! The per-user calendar application object (`SyDCalendar`).
//!
//! One [`CalendarApp`] wraps one [`DeviceRuntime`]: it owns the user's
//! slot and meeting tables, implements the kernel's [`EntityHandler`] (how
//! negotiated reservations apply to slots), the [`SubscriptionHandler`]
//! (how link notifications drive re-confirmation), the waiting-link
//! promotion hook, and the `calendar` service peers invoke.
//!
//! Scheduling *operations* (schedule / reconcile / cancel / change /
//! leave / bump) live in [`crate::app::ops`] as methods on the same type.

pub mod ops;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use syd_core::links::{FireResult, LinkKind, LinkSpec, LinkStatus};
use syd_core::{DeviceRuntime, EntityHandler, SubscriptionHandler};
use syd_store::{Column, ColumnType, Predicate, Schema, Store};
use syd_telemetry::names;
use syd_telemetry::{Counter, Histogram};
use syd_types::{
    MeetingId, Priority, ServiceName, SlotBitmap, SlotRange, SydError, SydResult, TimeSlot, UserId,
    Value,
};

use crate::mailbox::Mailbox;
use crate::model::{parse_slot_entity, slot_entity, Meeting, MeetingStatus, SlotState};

/// The calendar application's service name.
pub fn calendar_service() -> ServiceName {
    ServiceName::new("calendar")
}

pub(crate) const T_SLOTS: &str = "slots";
pub(crate) const T_MEETINGS: &str = "meetings";
/// Initiator-local bookkeeping: which participants already have a back
/// link installed for a meeting.
pub(crate) const T_BACKLINKS: &str = "backlinks";

/// One user's calendar application. Always used through `Arc`.
pub struct CalendarApp {
    pub(crate) device: DeviceRuntime,
    pub(crate) store: Store,
    pub(crate) mailbox: Arc<Mailbox>,
    pub(crate) metrics: CalendarMetrics,
    next_meeting: AtomicU64,
    /// Per-meeting serialization of reconcile rounds.
    pub(crate) reconcile_locks: Mutex<HashMap<MeetingId, Arc<Mutex<()>>>>,
    /// Meetings currently being rescheduled after a bump (dedup guard).
    pub(crate) rescheduling: Mutex<Vec<MeetingId>>,
}

/// Preregistered handles into the device's metrics registry; recording on
/// the scheduling paths never touches the registry lock.
pub(crate) struct CalendarMetrics {
    /// End-to-end `schedule()` latency ("calendar.schedule").
    pub(crate) schedule: Histogram,
    /// Per-round `reconcile()` latency ("calendar.reconcile").
    pub(crate) reconcile: Histogram,
    /// Meetings cancelled by this initiator ("calendar.cancels").
    pub(crate) cancels: Counter,
}

impl CalendarApp {
    /// Installs the calendar application on `device`: tables, mailbox,
    /// entity/subscription/promotion handlers and the `calendar` service.
    pub fn install(device: &DeviceRuntime) -> SydResult<Arc<CalendarApp>> {
        let store = device.store().clone();
        store.create_table(Schema::new(
            T_SLOTS,
            vec![
                Column::required("ordinal", ColumnType::I64),
                Column::required("status", ColumnType::Str),
                Column::nullable("meeting", ColumnType::I64),
                Column::required("priority", ColumnType::I64),
            ],
            &["ordinal"],
        )?)?;
        store.create_table(Schema::new(
            T_MEETINGS,
            vec![
                Column::required("id", ColumnType::I64),
                Column::required("data", ColumnType::Any),
            ],
            &["id"],
        )?)?;
        store.create_table(Schema::new(
            T_BACKLINKS,
            vec![
                Column::required("meeting", ColumnType::I64),
                Column::required("user", ColumnType::I64),
            ],
            &["meeting", "user"],
        )?)?;

        let mailbox = Mailbox::install(device)?;
        let registry = device.metrics();
        let metrics = CalendarMetrics {
            schedule: registry.histogram(names::CALENDAR_SCHEDULE),
            reconcile: registry.histogram(names::CALENDAR_RECONCILE),
            cancels: registry.counter(names::CALENDAR_CANCELS),
        };
        let app = Arc::new(CalendarApp {
            device: device.clone(),
            store,
            mailbox,
            metrics,
            next_meeting: AtomicU64::new(1),
            reconcile_locks: Mutex::new(HashMap::new()),
            rescheduling: Mutex::new(Vec::new()),
        });

        device.set_entity_handler(Arc::new(SlotEntityHandler(Arc::downgrade(&app))));
        device.set_subscription_handler(Arc::new(CalendarNotifications(Arc::downgrade(&app))));

        // Waiting-link promotion (§4.2 op. 3): a promoted availability link
        // is fired immediately — it notifies the waiting meeting's
        // initiator that this slot has opened up.
        let weak = Arc::downgrade(&app);
        device.links().set_promotion_handler(Arc::new(move |link| {
            let Some(app) = weak.upgrade() else { return };
            let link = link.clone();
            // Fire outside the deletion call stack.
            std::thread::spawn(move || {
                let _ = app.device.links().fire_link(
                    &link,
                    &Value::str("promoted"),
                    app.device.negotiator(),
                );
            });
        }));

        app.register_services()?;
        app.install_delegation()?;
        Ok(app)
    }

    /// The owning user.
    pub fn user(&self) -> UserId {
        self.device.user()
    }

    /// The underlying device.
    pub fn device(&self) -> &DeviceRuntime {
        &self.device
    }

    /// This user's mailbox.
    pub fn mailbox(&self) -> &Arc<Mailbox> {
        &self.mailbox
    }

    pub(crate) fn alloc_meeting(&self) -> MeetingId {
        MeetingId::new(
            (self.user().raw() << 24) | self.next_meeting.fetch_add(1, Ordering::Relaxed),
        )
    }

    // ---- local slot state --------------------------------------------------

    /// State of one local slot.
    pub fn slot_state(&self, ordinal: u64) -> SydResult<SlotState> {
        match self.store.get_by_key(T_SLOTS, &[Value::from(ordinal)])? {
            None => Ok(SlotState::Free),
            Some(row) => {
                let status = row.values[1].as_str()?;
                let meeting = match &row.values[2] {
                    Value::Null => None,
                    v => Some(MeetingId::new(v.as_i64()? as u64)),
                };
                Ok(match (status, meeting) {
                    ("tent", Some(m)) => SlotState::Tentative(m),
                    ("conf", Some(m)) => SlotState::Reserved(m),
                    // "busy" rows and defective unknown rows both block.
                    _ => SlotState::Busy,
                })
            }
        }
    }

    /// Priority attached to the slot's occupant (MIN when free).
    pub(crate) fn slot_priority(&self, ordinal: u64) -> SydResult<Priority> {
        match self.store.get_by_key(T_SLOTS, &[Value::from(ordinal)])? {
            None => Ok(Priority::MIN),
            Some(row) => Ok(Priority::new(row.values[3].as_i64()? as u8)),
        }
    }

    pub(crate) fn set_slot(
        &self,
        ordinal: u64,
        status: &str,
        meeting: Option<MeetingId>,
        priority: Priority,
    ) -> SydResult<()> {
        let row = vec![
            Value::from(ordinal),
            Value::str(status),
            meeting.map_or(Value::Null, |m| Value::from(m.raw())),
            Value::from(priority.level() as u32),
        ];
        if self
            .store
            .get_by_key(T_SLOTS, &[Value::from(ordinal)])?
            .is_some()
        {
            self.store.update(
                T_SLOTS,
                &Predicate::Eq("ordinal".into(), Value::from(ordinal)),
                &[
                    ("status".into(), row[1].clone()),
                    ("meeting".into(), row[2].clone()),
                    ("priority".into(), row[3].clone()),
                ],
            )?;
        } else {
            self.store.insert(T_SLOTS, row)?;
        }
        Ok(())
    }

    pub(crate) fn clear_slot(&self, ordinal: u64) -> SydResult<()> {
        self.store.delete(
            T_SLOTS,
            &Predicate::Eq("ordinal".into(), Value::from(ordinal)),
        )?;
        Ok(())
    }

    /// Marks a personal (non-meeting) engagement.
    pub fn mark_busy(&self, slot: TimeSlot) -> SydResult<()> {
        match self.slot_state(slot.ordinal())? {
            SlotState::Free => self.set_slot(slot.ordinal(), "busy", None, Priority::MAX),
            other => Err(SydError::App(format!(
                "slot {slot} is not free ({other:?})"
            ))),
        }
    }

    /// Frees a personal engagement; fires availability links queued on the
    /// slot ("whenever C becomes available … it will get triggered", §5).
    pub fn free_personal(&self, slot: TimeSlot) -> SydResult<()> {
        match self.slot_state(slot.ordinal())? {
            SlotState::Busy => {
                self.clear_slot(slot.ordinal())?;
                self.on_slot_freed(slot.ordinal());
                Ok(())
            }
            other => Err(SydError::App(format!(
                "slot {slot} is not a personal engagement ({other:?})"
            ))),
        }
    }

    /// Free slot ordinals within `[start, end)` ordinals.
    pub fn free_ordinals(&self, start: u64, end: u64) -> SydResult<Vec<u64>> {
        let occupied: Vec<u64> = self
            .store
            .query(T_SLOTS)
            .filter(Predicate::Between(
                "ordinal".into(),
                Value::from(start),
                Value::from(end.saturating_sub(1)),
            ))
            .column("ordinal")?
            .into_iter()
            .filter_map(|v| v.as_i64().ok().map(|n| n as u64))
            .collect();
        Ok((start..end).filter(|o| !occupied.contains(o)).collect())
    }

    /// Availability over `[start, end)` ordinals as a packed bitmap (set
    /// bit = free). Same answer as [`CalendarApp::free_ordinals`] but one
    /// bit per slot on the wire, whatever the calendar's density.
    pub fn free_bitmap(&self, start: u64, end: u64) -> SydResult<SlotBitmap> {
        let end = end.max(start);
        let range = SlotRange::new(TimeSlot::from_ordinal(start), TimeSlot::from_ordinal(end));
        let mut bm = SlotBitmap::all_free(range);
        let occupied = self
            .store
            .query(T_SLOTS)
            .filter(Predicate::Between(
                "ordinal".into(),
                Value::from(start),
                Value::from(end.saturating_sub(1)),
            ))
            .column("ordinal")?;
        for v in occupied {
            if let Ok(o) = v.as_i64() {
                bm.set_busy(TimeSlot::from_ordinal(o as u64));
            }
        }
        Ok(bm)
    }

    // ---- local meeting records -----------------------------------------------

    /// The locally stored record of a meeting.
    pub fn meeting(&self, id: MeetingId) -> SydResult<Option<Meeting>> {
        match self
            .store
            .get_by_key(T_MEETINGS, &[Value::from(id.raw())])?
        {
            None => Ok(None),
            Some(row) => Ok(Some(Meeting::from_value(&row.values[1])?)),
        }
    }

    pub(crate) fn put_meeting(&self, meeting: &Meeting) -> SydResult<()> {
        let key = Value::from(meeting.id.raw());
        let data = meeting.to_value();
        if self
            .store
            .get_by_key(T_MEETINGS, std::slice::from_ref(&key))?
            .is_some()
        {
            self.store.update(
                T_MEETINGS,
                &Predicate::Eq("id".into(), key),
                &[("data".into(), data)],
            )?;
        } else {
            self.store.insert(T_MEETINGS, vec![key, data])?;
        }
        Ok(())
    }

    // ---- slot-freed trigger ----------------------------------------------------

    /// Fires the highest-priority *permanent* availability link anchored on
    /// the freed slot. (Waiting/tentative availability links are promoted —
    /// and fired — by the kernel's cascade-delete path instead.)
    pub(crate) fn on_slot_freed(&self, ordinal: u64) {
        let entity = slot_entity(ordinal);
        let Ok(links) = self.device.links().on_entity(&entity) else {
            return;
        };
        let best = links
            .into_iter()
            .filter(|l| {
                l.status == LinkStatus::Permanent
                    && matches!(l.kind, LinkKind::Subscription)
                    && l.refs
                        .first()
                        .is_some_and(|r| r.action.starts_with("peer_available:"))
            })
            .max_by_key(|l| l.priority);
        if let Some(link) = best {
            let app_device = self.device.clone();
            std::thread::spawn(move || {
                let _ = app_device.links().fire_link(
                    &link,
                    &Value::str("slot freed"),
                    app_device.negotiator(),
                );
            });
        }
    }

    pub(crate) fn reconcile_guard(&self, id: MeetingId) -> Arc<Mutex<()>> {
        Arc::clone(
            self.reconcile_locks
                .lock()
                .entry(id)
                .or_insert_with(|| Arc::new(Mutex::new(()))),
        )
    }
}

// ---------------------------------------------------------------------------
// EntityHandler: how negotiated changes apply to slots (§4.3 participant side)
// ---------------------------------------------------------------------------

struct SlotEntityHandler(Weak<CalendarApp>);

fn change_field<'a>(change: &'a Value, key: &str) -> SydResult<&'a Value> {
    change.get(key)
}

impl EntityHandler for SlotEntityHandler {
    fn prepare(&self, entity: &str, change: &Value) -> SydResult<()> {
        let app = self.0.upgrade().ok_or(SydError::Shutdown)?;
        let ordinal = parse_slot_entity(entity)?;
        match change_field(change, "action")?.as_str()? {
            "reserve" => {
                let meeting = MeetingId::new(change_field(change, "meeting")?.as_i64()? as u64);
                let priority = Priority::new(change_field(change, "priority")?.as_i64()? as u8);
                match app.slot_state(ordinal)? {
                    SlotState::Free => Ok(()),
                    SlotState::Busy => Err(SydError::App(format!(
                        "slot {ordinal} is a personal engagement"
                    ))),
                    SlotState::Tentative(m) | SlotState::Reserved(m) if m == meeting => Ok(()),
                    SlotState::Tentative(_) | SlotState::Reserved(_) => {
                        let existing = app.slot_priority(ordinal)?;
                        if priority.outranks(existing) {
                            Ok(()) // bump allowed (§6)
                        } else {
                            Err(SydError::App(format!(
                                "slot {ordinal} is held at {existing} >= {priority}"
                            )))
                        }
                    }
                }
            }
            "release" => Ok(()),
            other => Err(SydError::Protocol(format!("bad change action `{other}`"))),
        }
    }

    fn commit(&self, entity: &str, change: &Value) -> SydResult<()> {
        let app = self.0.upgrade().ok_or(SydError::Shutdown)?;
        let ordinal = parse_slot_entity(entity)?;
        match change_field(change, "action")?.as_str()? {
            "reserve" => {
                let meeting = MeetingId::new(change_field(change, "meeting")?.as_i64()? as u64);
                let priority = Priority::new(change_field(change, "priority")?.as_i64()? as u8);
                // A different current occupant means we are bumping it.
                let bumped = match app.slot_state(ordinal)? {
                    SlotState::Tentative(m) | SlotState::Reserved(m) if m != meeting => Some(m),
                    _ => None,
                };
                app.set_slot(ordinal, "tent", Some(meeting), priority)?;
                // Record the meeting locally so this device can answer
                // meeting_info and manage links.
                if let Ok(rec) = Meeting::from_value(change_field(change, "record")?) {
                    // Keep a fresher local status if we already confirmed.
                    app.put_meeting(&rec)?;
                }
                if let Some(old) = bumped {
                    app.handle_local_bump(old, ordinal)?;
                }
                app.device
                    .events()
                    .publish_local("calendar.reserved", &Value::from(ordinal));
                Ok(())
            }
            "release" => {
                let meeting = MeetingId::new(change_field(change, "meeting")?.as_i64()? as u64);
                if app.slot_state(ordinal)?.meeting() == Some(meeting) {
                    app.clear_slot(ordinal)?;
                    app.on_slot_freed(ordinal);
                }
                Ok(())
            }
            other => Err(SydError::Protocol(format!("bad change action `{other}`"))),
        }
    }

    fn abort(&self, _entity: &str, _change: &Value) {
        // prepare wrote nothing, so nothing to undo.
    }
}

impl CalendarApp {
    /// A reservation just bumped `old` off `ordinal` on this device:
    /// record it and notify the bumped meeting's initiator (§6 "a low
    /// priority meeting can be bumped … and is then automatically
    /// rescheduled").
    fn handle_local_bump(&self, old: MeetingId, ordinal: u64) -> SydResult<()> {
        if let Some(mut rec) = self.meeting(old)? {
            rec.status = MeetingStatus::Bumped;
            self.put_meeting(&rec)?;
            let device = self.device.clone();
            let initiator = rec.initiator;
            std::thread::spawn(move || {
                let _ = device.engine().invoke(
                    initiator,
                    &calendar_service(),
                    "meeting_bumped",
                    vec![Value::from(old.raw()), Value::from(ordinal)],
                );
            });
        }
        self.device
            .events()
            .publish_local("calendar.bumped", &Value::from(old.raw()));
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// SubscriptionHandler: link notifications drive automatic repair
// ---------------------------------------------------------------------------

struct CalendarNotifications(Weak<CalendarApp>);

impl SubscriptionHandler for CalendarNotifications {
    fn on_notify(&self, _entity: &str, action: &str, _payload: &Value) -> SydResult<Value> {
        let app = self.0.upgrade().ok_or(SydError::Shutdown)?;
        let Some((kind, id)) = action.split_once(':') else {
            return Ok(Value::Null);
        };
        let Ok(raw) = id.parse::<u64>() else {
            return Ok(Value::Null);
        };
        let meeting = MeetingId::new(raw);
        match kind {
            // A pending participant's slot opened up, or a participant's
            // schedule changed: re-run the reservation round. Spawned so
            // the notifying call chain is never blocked on a negotiation.
            "peer_available" | "participant_changed" => {
                std::thread::spawn(move || {
                    let _ = app.reconcile(meeting);
                });
                Ok(Value::Null)
            }
            _ => Ok(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------------
// the `calendar` service (peer-invocable methods)
// ---------------------------------------------------------------------------

impl CalendarApp {
    fn register_services(self: &Arc<Self>) -> SydResult<()> {
        let svc = calendar_service();

        // free_slots(start, end) -> [ordinals]
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "free_slots",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let start = arg(args, 0)?.as_i64()? as u64;
                let end = arg(args, 1)?.as_i64()? as u64;
                Ok(Value::list(
                    app.free_ordinals(start, end)?.into_iter().map(Value::from),
                ))
            }),
        )?;

        // free_slots_bitmap(start, end) -> packed SlotBitmap bytes
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "free_slots_bitmap",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let start = arg(args, 0)?.as_i64()? as u64;
                let end = arg(args, 1)?.as_i64()? as u64;
                Ok(Value::Bytes(app.free_bitmap(start, end)?.pack()))
            }),
        )?;

        // slot_status(ordinal) -> {status, meeting, priority}
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "slot_status",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let ordinal = arg(args, 0)?.as_i64()? as u64;
                let state = app.slot_state(ordinal)?;
                let (status, meeting) = match state {
                    SlotState::Free => ("free", None),
                    SlotState::Busy => ("busy", None),
                    SlotState::Tentative(m) => ("tent", Some(m)),
                    SlotState::Reserved(m) => ("conf", Some(m)),
                };
                Ok(Value::map([
                    ("status", Value::str(status)),
                    (
                        "meeting",
                        meeting.map_or(Value::Null, |m| Value::from(m.raw())),
                    ),
                    (
                        "priority",
                        Value::from(app.slot_priority(ordinal)?.level() as u32),
                    ),
                ]))
            }),
        )?;

        // meeting_info(id) -> record | Null
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "meeting_info",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let id = MeetingId::new(arg(args, 0)?.as_i64()? as u64);
                Ok(app.meeting(id)?.map_or(Value::Null, |m| m.to_value()))
            }),
        )?;

        // update_meeting(record) -> Null — upsert + align local slot row
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "update_meeting",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let rec = Meeting::from_value(arg(args, 0)?)?;
                // Escalate the local slot row when the meeting confirms.
                if rec.status == MeetingStatus::Confirmed
                    && app.slot_state(rec.ordinal)?.meeting() == Some(rec.id)
                {
                    app.set_slot(rec.ordinal, "conf", Some(rec.id), rec.priority)?;
                }
                app.put_meeting(&rec)?;
                Ok(Value::Null)
            }),
        )?;

        // release_slot(ordinal, meeting, to_status) -> Bool
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "release_slot",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let ordinal = arg(args, 0)?.as_i64()? as u64;
                let meeting = MeetingId::new(arg(args, 1)?.as_i64()? as u64);
                let to_status = arg(args, 2)?.as_str()?;
                Ok(Value::Bool(app.release_local(ordinal, meeting, to_status)?))
            }),
        )?;

        // queue_availability(ordinal, record) -> Null
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "queue_availability",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let ordinal = arg(args, 0)?.as_i64()? as u64;
                let rec = Meeting::from_value(arg(args, 1)?)?;
                app.queue_availability_local(ordinal, &rec)?;
                Ok(Value::Null)
            }),
        )?;

        // peer_available(meeting) -> Bool(confirmed) — served by initiators
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "peer_available",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let meeting = MeetingId::new(arg(args, 0)?.as_i64()? as u64);
                let status = app.reconcile(meeting)?;
                Ok(Value::Bool(status == MeetingStatus::Confirmed))
            }),
        )?;

        // meeting_bumped(meeting, old_ordinal) -> Null — initiator reschedules
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "meeting_bumped",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let meeting = MeetingId::new(arg(args, 0)?.as_i64()? as u64);
                let old_ordinal = arg(args, 1)?.as_i64()? as u64;
                app.auto_reschedule(meeting, old_ordinal);
                Ok(Value::Null)
            }),
        )?;

        // change_request(meeting, new_ordinal, requester) -> Bool
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "change_request",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let meeting = MeetingId::new(arg(args, 0)?.as_i64()? as u64);
                let new_ordinal = arg(args, 1)?.as_i64()? as u64;
                Ok(Value::Bool(
                    app.handle_change_request(meeting, new_ordinal)?,
                ))
            }),
        )?;

        // drop_availability(meeting) -> Null — remove this user's queued
        // availability link for a meeting (it got reserved or cancelled).
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "drop_availability",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let meeting = MeetingId::new(arg(args, 0)?.as_i64()? as u64);
                app.drop_availability_local(meeting)?;
                Ok(Value::Null)
            }),
        )?;

        // leave_request(meeting, user) -> Bool
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "leave_request",
            Arc::new(move |ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let meeting = MeetingId::new(arg(args, 0)?.as_i64()? as u64);
                let user = UserId::new(arg(args, 1)?.as_i64()? as u64);
                // Only the user themself may ask to leave (when the
                // deployment authenticates, the claim is verified).
                if ctx.authenticated && ctx.caller != user {
                    return Err(SydError::AuthFailed(ctx.caller));
                }
                Ok(Value::Bool(app.handle_leave_request(meeting, user)?))
            }),
        )?;

        Ok(())
    }
}

pub(crate) fn arg(args: &[Value], i: usize) -> SydResult<&Value> {
    args.get(i)
        .ok_or_else(|| SydError::Protocol(format!("missing argument {i}")))
}

impl CalendarApp {
    /// Frees a slot held by `meeting` and updates the local record.
    pub(crate) fn release_local(
        &self,
        ordinal: u64,
        meeting: MeetingId,
        to_status: &str,
    ) -> SydResult<bool> {
        if self.slot_state(ordinal)?.meeting() != Some(meeting) {
            return Ok(false);
        }
        self.clear_slot(ordinal)?;
        if let Some(mut rec) = self.meeting(meeting)? {
            if let Ok(status) = MeetingStatus::parse(to_status) {
                rec.status = status;
                self.put_meeting(&rec)?;
            }
        }
        self.on_slot_freed(ordinal);
        Ok(true)
    }

    /// Installs a tentative *availability link* at this (unavailable)
    /// participant: a subscription link back to the meeting's initiator,
    /// waiting (§4.2 op. 3) on the link of whatever occupies the slot.
    pub(crate) fn queue_availability_local(&self, ordinal: u64, rec: &Meeting) -> SydResult<()> {
        self.put_meeting(rec)?;
        let entity = slot_entity(ordinal);
        let avail_corr = format!("avail:{}:{}", rec.id.raw(), self.user().raw());
        // Idempotent: one availability link per (meeting, this user).
        if !self.device.links().by_corr(&avail_corr)?.is_empty() {
            return Ok(());
        }
        let back_ref = syd_core::links::LinkRef::new(
            rec.initiator,
            slot_entity(ordinal),
            format!("peer_available:{}", rec.id.raw()),
        );
        let spec = LinkSpec::subscription(entity.clone(), vec![back_ref])
            .with_priority(rec.priority)
            .with_corr(avail_corr);
        // If a meeting occupies the slot, wait on its back link so the
        // kernel promotes us when that meeting is torn down; a personal
        // engagement has no link, so the link stays permanent and
        // `free_personal` fires it directly.
        let occupier = self.slot_state(ordinal)?.meeting();
        let waits_on = match occupier {
            Some(m) => {
                let occ_corr = self.meeting(m)?.map(|r| r.corr);
                occ_corr.and_then(|corr| {
                    self.device.links().by_corr(&corr).ok().and_then(|links| {
                        links.into_iter().find(|l| l.entity == entity).map(|l| l.id)
                    })
                })
            }
            None => None,
        };
        let spec = match waits_on {
            Some(link) => spec.waiting_on(link, rec.id.raw()),
            None => spec,
        };
        self.device.links().add_local(spec)?;
        // Slot already free (raced with a release): tell the initiator now.
        if self.slot_state(ordinal)?.is_free() {
            let device = self.device.clone();
            let initiator = rec.initiator;
            let id = rec.id;
            std::thread::spawn(move || {
                let _ = device.engine().invoke(
                    initiator,
                    &calendar_service(),
                    "peer_available",
                    vec![Value::from(id.raw())],
                );
            });
        }
        Ok(())
    }

    /// Removes this user's availability link for `meeting` (it got
    /// reserved, or the meeting is gone).
    pub(crate) fn drop_availability_local(&self, meeting: MeetingId) -> SydResult<()> {
        let corr = format!("avail:{}:{}", meeting.raw(), self.user().raw());
        for link in self.device.links().by_corr(&corr)? {
            let _ = self.device.links().delete(link.id, false);
        }
        Ok(())
    }

    /// Fires all links anchored on a local slot entity (used by tests and
    /// the fleet/bidding apps; the calendar itself fires selectively).
    pub fn fire_entity(&self, ordinal: u64, payload: &Value) -> SydResult<Vec<FireResult>> {
        self.device.entity_changed(&slot_entity(ordinal), payload)
    }
}
