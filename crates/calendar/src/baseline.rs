//! The "current practice" calendar of §3.3/§6 — the benchmark baseline.
//!
//! The paper contrasts SyD with how contemporary calendar applications
//! worked: "each user stores a copy of every member's folder on his local
//! machine. Each time a meeting needs to be set up, the initiator sends an
//! email to the required participants. The recipients then manually have
//! to accept this meeting before it can be scheduled. There is no concept
//! of priority …, only the initiator of a meeting can cancel that meeting.
//! There is no option of automatic rescheduling" (§6).
//!
//! This module implements that workflow faithfully on the same network
//! substrate so the comparison (experiment E1) measures protocol
//! differences, not implementation differences:
//!
//! * **Replicated folders** — every user keeps a copy of every other
//!   user's busy list, refreshed only by polling
//!   ([`BaselineCalendar::refresh_replicas`]); views go stale between
//!   polls.
//! * **E-mail + manual accept** — meeting setup is an invite fan-out; a
//!   human must call [`BaselineCalendar::accept`] on each device; the
//!   meeting commits only after every RSVP arrives, and commits can fail
//!   because the free-slot view was stale.
//! * **No priorities, no bumping, no tentative meetings, no automatic
//!   anything** — failures are reported and the human starts over.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use syd_core::DeviceRuntime;
use syd_store::{Column, ColumnType, Predicate, Schema, Store};
use syd_types::{ServiceName, SydError, SydResult, TimeSlot, UserId, Value};

/// The baseline calendar's service name.
pub fn baseline_service() -> ServiceName {
    ServiceName::new("bcal")
}

const T_BSLOTS: &str = "bslots";
const T_REPLICAS: &str = "breplicas";

/// Counters for the E1 comparison.
#[derive(Debug, Default)]
pub struct BaselineStats {
    /// Poll rounds executed.
    pub polls: AtomicU64,
    /// Invites sent (initiator side).
    pub invites_sent: AtomicU64,
    /// RSVPs received.
    pub rsvps: AtomicU64,
    /// Finalize/commit attempts.
    pub commits: AtomicU64,
    /// Proposals that failed at commit time (stale view).
    pub stale_failures: AtomicU64,
}

/// Lifecycle of one proposal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProposalStatus {
    /// Waiting for RSVPs.
    Pending,
    /// Everyone accepted and slots were written.
    Scheduled,
    /// Someone declined.
    Declined,
    /// Commit failed (slot taken since the stale free-slot query).
    Failed,
}

struct Proposal {
    id: u64,
    slot: TimeSlot,
    participants: Vec<UserId>,
    accepted: Vec<UserId>,
    status: ProposalStatus,
}

/// One user's baseline calendar.
pub struct BaselineCalendar {
    device: DeviceRuntime,
    store: Store,
    proposals: Mutex<Vec<Proposal>>,
    /// Invites awaiting a human decision on this device:
    /// `(proposal, initiator, slot)`.
    inbox: Mutex<Vec<(u64, UserId, TimeSlot)>>,
    next_proposal: AtomicU64,
    /// Shared statistics.
    pub stats: Arc<BaselineStats>,
}

impl BaselineCalendar {
    /// Installs the baseline calendar on a device.
    pub fn install(device: &DeviceRuntime) -> SydResult<Arc<BaselineCalendar>> {
        let store = device.store().clone();
        store.create_table(Schema::new(
            T_BSLOTS,
            vec![Column::required("ordinal", ColumnType::I64)],
            &["ordinal"],
        )?)?;
        store.create_table(Schema::new(
            T_REPLICAS,
            vec![
                Column::required("user", ColumnType::I64),
                Column::required("ordinal", ColumnType::I64),
            ],
            &["user", "ordinal"],
        )?)?;

        let app = Arc::new(BaselineCalendar {
            device: device.clone(),
            store,
            proposals: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
            next_proposal: AtomicU64::new(1),
            stats: Arc::new(BaselineStats::default()),
        });
        app.register_services()?;
        Ok(app)
    }

    /// The owning user.
    pub fn user(&self) -> UserId {
        self.device.user()
    }

    // ---- local slots --------------------------------------------------------

    /// True iff the slot has no entry.
    pub fn is_free(&self, slot: TimeSlot) -> SydResult<bool> {
        Ok(self
            .store
            .get_by_key(T_BSLOTS, &[Value::from(slot.ordinal())])?
            .is_none())
    }

    /// Marks a slot busy.
    pub fn mark_busy(&self, slot: TimeSlot) -> SydResult<()> {
        if !self.is_free(slot)? {
            return Err(SydError::App(format!("slot {slot} already busy")));
        }
        self.store
            .insert(T_BSLOTS, vec![Value::from(slot.ordinal())])?;
        Ok(())
    }

    /// Frees a slot.
    pub fn free(&self, slot: TimeSlot) -> SydResult<()> {
        self.store.delete(
            T_BSLOTS,
            &Predicate::Eq("ordinal".into(), Value::from(slot.ordinal())),
        )?;
        Ok(())
    }

    fn busy_ordinals(&self, start: u64, end: u64) -> SydResult<Vec<u64>> {
        Ok(self
            .store
            .query(T_BSLOTS)
            .filter(Predicate::Between(
                "ordinal".into(),
                Value::from(start),
                Value::from(end.saturating_sub(1)),
            ))
            .column("ordinal")?
            .into_iter()
            .filter_map(|v| v.as_i64().ok().map(|n| n as u64))
            .collect())
    }

    // ---- replicated folders ---------------------------------------------------

    /// Polls every user's folder and replaces the local replicas — the
    /// §6 "copy of every member's folder", kept fresh only by polling.
    pub fn refresh_replicas(&self, users: &[UserId], start: u64, end: u64) -> SydResult<()> {
        self.stats.polls.fetch_add(1, Ordering::Relaxed);
        let result = self.device.engine().invoke_group(
            users,
            &baseline_service(),
            "folder",
            vec![Value::from(start), Value::from(end)],
        );
        for (user, outcome) in result.outcomes {
            let Ok(folder) = outcome else { continue };
            self.store.delete(
                T_REPLICAS,
                &Predicate::Eq("user".into(), Value::from(user.raw())),
            )?;
            for v in folder.as_list()? {
                let _ = self
                    .store
                    .insert(T_REPLICAS, vec![Value::from(user.raw()), v.clone()]);
            }
        }
        Ok(())
    }

    /// Free slots according to the (possibly stale) local replicas plus
    /// the local folder.
    pub fn replica_free_slots(
        &self,
        users: &[UserId],
        start: u64,
        end: u64,
    ) -> SydResult<Vec<TimeSlot>> {
        let mine = self.busy_ordinals(start, end)?;
        let replicated: Vec<u64> = self
            .store
            .select(T_REPLICAS, &Predicate::True)?
            .into_iter()
            .filter_map(|row| {
                let user = row.values[0].as_i64().ok()? as u64;
                let ordinal = row.values[1].as_i64().ok()? as u64;
                users.contains(&UserId::new(user)).then_some(ordinal)
            })
            .collect();
        Ok((start..end)
            .filter(|o| !mine.contains(o) && !replicated.contains(o))
            .map(TimeSlot::from_ordinal)
            .collect())
    }

    /// Total replica rows held locally (the §6 storage-footprint
    /// comparison: SyD stores "only that particular user's information").
    pub fn replica_rows(&self) -> SydResult<usize> {
        self.store.count(T_REPLICAS, &Predicate::True)
    }

    // ---- meeting workflow ---------------------------------------------------------

    /// Proposes a meeting: e-mails an invite to every participant. The
    /// humans must [`BaselineCalendar::accept`]; once every RSVP is in,
    /// the initiator commits.
    pub fn propose(&self, slot: TimeSlot, participants: &[UserId]) -> SydResult<u64> {
        let id = (self.user().raw() << 24) | self.next_proposal.fetch_add(1, Ordering::Relaxed);
        self.proposals.lock().push(Proposal {
            id,
            slot,
            participants: participants.to_vec(),
            accepted: Vec::new(),
            status: ProposalStatus::Pending,
        });
        for &user in participants {
            self.stats.invites_sent.fetch_add(1, Ordering::Relaxed);
            self.device.engine().invoke(
                user,
                &baseline_service(),
                "invite",
                vec![
                    Value::from(id),
                    Value::from(self.user().raw()),
                    Value::from(slot.ordinal()),
                ],
            )?;
        }
        Ok(id)
    }

    /// Invites waiting for this user's decision.
    pub fn pending_invites(&self) -> Vec<(u64, UserId, TimeSlot)> {
        self.inbox.lock().clone()
    }

    /// The human accepts an invite; an RSVP travels back to the initiator,
    /// who commits once everyone has answered.
    pub fn accept(&self, proposal: u64) -> SydResult<()> {
        let entry = {
            let mut inbox = self.inbox.lock();
            let idx = inbox
                .iter()
                .position(|(id, _, _)| *id == proposal)
                .ok_or_else(|| SydError::App(format!("no invite {proposal}")))?;
            inbox.remove(idx)
        };
        let (_, initiator, _) = entry;
        self.device.engine().invoke(
            initiator,
            &baseline_service(),
            "rsvp",
            vec![
                Value::from(proposal),
                Value::from(self.user().raw()),
                Value::Bool(true),
            ],
        )?;
        Ok(())
    }

    /// The human declines an invite.
    pub fn decline(&self, proposal: u64) -> SydResult<()> {
        let entry = {
            let mut inbox = self.inbox.lock();
            let idx = inbox
                .iter()
                .position(|(id, _, _)| *id == proposal)
                .ok_or_else(|| SydError::App(format!("no invite {proposal}")))?;
            inbox.remove(idx)
        };
        let (_, initiator, _) = entry;
        self.device.engine().invoke(
            initiator,
            &baseline_service(),
            "rsvp",
            vec![
                Value::from(proposal),
                Value::from(self.user().raw()),
                Value::Bool(false),
            ],
        )?;
        Ok(())
    }

    /// Status of a proposal (initiator side).
    pub fn proposal_status(&self, proposal: u64) -> Option<ProposalStatus> {
        self.proposals
            .lock()
            .iter()
            .find(|p| p.id == proposal)
            .map(|p| p.status)
    }

    /// Cancels a scheduled meeting — initiator only, no automation: the
    /// other calendars just get told to free the slot.
    pub fn cancel(&self, proposal: u64, participants: &[UserId], slot: TimeSlot) -> SydResult<()> {
        {
            let mut proposals = self.proposals.lock();
            if let Some(p) = proposals.iter_mut().find(|p| p.id == proposal) {
                p.status = ProposalStatus::Failed;
            }
        }
        self.free(slot)?;
        for &user in participants {
            let _ = self.device.engine().invoke(
                user,
                &baseline_service(),
                "free_slot",
                vec![Value::from(slot.ordinal())],
            );
        }
        Ok(())
    }

    fn try_finalize(self: &Arc<Self>, proposal: u64) -> SydResult<()> {
        let (slot, participants) = {
            let proposals = self.proposals.lock();
            let Some(p) = proposals.iter().find(|p| p.id == proposal) else {
                return Ok(());
            };
            if p.status != ProposalStatus::Pending || p.accepted.len() != p.participants.len() {
                return Ok(());
            }
            (p.slot, p.participants.clone())
        };
        // Commit: write the slot everywhere; stale views surface here.
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        let mut ok = self.is_free(slot)?;
        if ok {
            self.mark_busy(slot)?;
        }
        let mut written = vec![];
        if ok {
            for &user in &participants {
                let out = self.device.engine().invoke(
                    user,
                    &baseline_service(),
                    "commit_slot",
                    vec![Value::from(slot.ordinal())],
                );
                match out {
                    Ok(Value::Bool(true)) => written.push(user),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            // Stale view: roll back manually, meeting failed, the human
            // starts over.
            self.stats.stale_failures.fetch_add(1, Ordering::Relaxed);
            let _ = self.free(slot);
            for &user in &written {
                let _ = self.device.engine().invoke(
                    user,
                    &baseline_service(),
                    "free_slot",
                    vec![Value::from(slot.ordinal())],
                );
            }
        }
        let mut proposals = self.proposals.lock();
        if let Some(p) = proposals.iter_mut().find(|p| p.id == proposal) {
            p.status = if ok {
                ProposalStatus::Scheduled
            } else {
                ProposalStatus::Failed
            };
        }
        Ok(())
    }

    fn register_services(self: &Arc<Self>) -> SydResult<()> {
        let svc = baseline_service();

        // folder(start, end) -> busy ordinals
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "folder",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let start = args[0].as_i64()? as u64;
                let end = args[1].as_i64()? as u64;
                Ok(Value::list(
                    app.busy_ordinals(start, end)?.into_iter().map(Value::from),
                ))
            }),
        )?;

        // invite(proposal, initiator, ordinal) -> Null
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "invite",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let proposal = args[0].as_i64()? as u64;
                let initiator = UserId::new(args[1].as_i64()? as u64);
                let slot = TimeSlot::from_ordinal(args[2].as_i64()? as u64);
                app.inbox.lock().push((proposal, initiator, slot));
                Ok(Value::Null)
            }),
        )?;

        // rsvp(proposal, user, accepted) -> Null
        let weak: Weak<BaselineCalendar> = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "rsvp",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let proposal = args[0].as_i64()? as u64;
                let user = UserId::new(args[1].as_i64()? as u64);
                let accepted = args[2].as_bool()?;
                app.stats.rsvps.fetch_add(1, Ordering::Relaxed);
                {
                    let mut proposals = app.proposals.lock();
                    if let Some(p) = proposals.iter_mut().find(|p| p.id == proposal) {
                        if accepted {
                            if !p.accepted.contains(&user) {
                                p.accepted.push(user);
                            }
                        } else {
                            p.status = ProposalStatus::Declined;
                        }
                    }
                }
                app.try_finalize(proposal)?;
                Ok(Value::Null)
            }),
        )?;

        // commit_slot(ordinal) -> Bool (false when taken: stale view)
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "commit_slot",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let slot = TimeSlot::from_ordinal(args[0].as_i64()? as u64);
                if app.is_free(slot)? {
                    app.mark_busy(slot)?;
                    Ok(Value::Bool(true))
                } else {
                    Ok(Value::Bool(false))
                }
            }),
        )?;

        // free_slot(ordinal) -> Null
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "free_slot",
            Arc::new(move |_ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let slot = TimeSlot::from_ordinal(args[0].as_i64()? as u64);
                app.free(slot)?;
                Ok(Value::Null)
            }),
        )?;

        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::time::Duration;
    use syd_core::SydEnv;
    use syd_net::NetConfig;

    fn rig(n: usize) -> (SydEnv, Vec<Arc<BaselineCalendar>>) {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let apps = (0..n)
            .map(|i| {
                let d = env.device(&format!("user{i}"), "").unwrap();
                BaselineCalendar::install(&d).unwrap()
            })
            .collect();
        (env, apps)
    }

    fn wait_status(
        app: &BaselineCalendar,
        proposal: u64,
        expect: ProposalStatus,
    ) -> ProposalStatus {
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        loop {
            let status = app.proposal_status(proposal).unwrap();
            if status == expect || std::time::Instant::now() > deadline {
                return status;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn happy_path_requires_manual_accepts() {
        let (_env, apps) = rig(3);
        let slot = TimeSlot::new(1, 10);
        let participants = vec![apps[1].user(), apps[2].user()];
        let proposal = apps[0].propose(slot, &participants).unwrap();
        assert_eq!(
            apps[0].proposal_status(proposal).unwrap(),
            ProposalStatus::Pending
        );

        // Nothing happens until the humans click accept.
        assert_eq!(apps[1].pending_invites().len(), 1);
        apps[1].accept(proposal).unwrap();
        assert_eq!(
            apps[0].proposal_status(proposal).unwrap(),
            ProposalStatus::Pending
        );
        apps[2].accept(proposal).unwrap();
        assert_eq!(
            wait_status(&apps[0], proposal, ProposalStatus::Scheduled),
            ProposalStatus::Scheduled
        );
        // Slots written everywhere.
        for app in &apps {
            assert!(!app.is_free(slot).unwrap());
        }
    }

    #[test]
    fn decline_kills_the_proposal() {
        let (_env, apps) = rig(2);
        let slot = TimeSlot::new(1, 9);
        let proposal = apps[0].propose(slot, &[apps[1].user()]).unwrap();
        apps[1].decline(proposal).unwrap();
        assert_eq!(
            wait_status(&apps[0], proposal, ProposalStatus::Declined),
            ProposalStatus::Declined
        );
        assert!(apps[0].is_free(slot).unwrap());
        assert!(apps[1].is_free(slot).unwrap());
    }

    #[test]
    fn stale_view_fails_at_commit() {
        let (_env, apps) = rig(2);
        let slot = TimeSlot::new(2, 14);
        let proposal = apps[0].propose(slot, &[apps[1].user()]).unwrap();
        // Between invite and accept, the participant books the slot.
        apps[1].mark_busy(slot).unwrap();
        apps[1].accept(proposal).unwrap();
        assert_eq!(
            wait_status(&apps[0], proposal, ProposalStatus::Failed),
            ProposalStatus::Failed
        );
        // Initiator's write rolled back.
        assert!(apps[0].is_free(slot).unwrap());
        assert_eq!(apps[0].stats.stale_failures.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn replicas_go_stale_between_polls() {
        let (_env, apps) = rig(2);
        let users = vec![apps[1].user()];
        apps[0].refresh_replicas(&users, 0, 48).unwrap();
        assert_eq!(apps[0].replica_free_slots(&users, 0, 48).unwrap().len(), 48);
        // Bob books a slot; Alice's replica doesn't know.
        apps[1].mark_busy(TimeSlot::new(0, 5)).unwrap();
        assert_eq!(
            apps[0].replica_free_slots(&users, 0, 48).unwrap().len(),
            48,
            "stale replica still shows the slot free"
        );
        apps[0].refresh_replicas(&users, 0, 48).unwrap();
        assert_eq!(apps[0].replica_free_slots(&users, 0, 48).unwrap().len(), 47);
        assert_eq!(apps[0].replica_rows().unwrap(), 1);
        assert_eq!(apps[0].stats.polls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cancel_frees_everywhere_but_nothing_else_happens() {
        let (_env, apps) = rig(2);
        let slot = TimeSlot::new(3, 9);
        let users = vec![apps[1].user()];
        let proposal = apps[0].propose(slot, &users).unwrap();
        apps[1].accept(proposal).unwrap();
        wait_status(&apps[0], proposal, ProposalStatus::Scheduled);
        apps[0].cancel(proposal, &users, slot).unwrap();
        assert!(apps[0].is_free(slot).unwrap());
        assert!(apps[1].is_free(slot).unwrap());
    }
}
