//! Delegation (§5): "an executive may want to delegate the task of
//! scheduling a meeting to a staff who would be able to call the meeting
//! with the transferred authority of his boss."
//!
//! A grant lives in the *delegator's* database (their device is the
//! authority on what they delegated) and is checked over the network at
//! scheduling time: the staff member schedules with the executive's
//! priority, and the executive is recorded as a must-attendee unless the
//! grant says otherwise. Grants can be revoked at any time and may expire.

use syd_store::{Column, ColumnType, Predicate, Schema};
use syd_types::{Priority, SydError, SydResult, Timestamp, UserId, Value};

use crate::app::{arg, calendar_service, CalendarApp};
use crate::model::{MeetingSpec, ScheduleOutcome};

const T_DELEGATIONS: &str = "delegations";

/// A delegation grant as seen by the grantee.
#[derive(Clone, Debug, PartialEq)]
pub struct Delegation {
    /// Who granted the authority.
    pub delegator: UserId,
    /// Who may exercise it.
    pub delegate: UserId,
    /// The priority the delegate may schedule with.
    pub priority: Priority,
    /// Optional expiry.
    pub expires: Option<Timestamp>,
}

impl CalendarApp {
    /// Installs the delegation table and service methods. Called from
    /// `CalendarApp::install`.
    pub(crate) fn install_delegation(self: &std::sync::Arc<Self>) -> SydResult<()> {
        self.store.create_table(Schema::new(
            T_DELEGATIONS,
            vec![
                Column::required("delegate", ColumnType::I64),
                Column::required("priority", ColumnType::I64),
                Column::nullable("expires", ColumnType::I64),
            ],
            &["delegate"],
        )?)?;

        // authority_check(delegate) -> {priority} | error — served by the
        // delegator's device, so authority is always checked against the
        // live grant, not a stale copy.
        let weak = std::sync::Arc::downgrade(self);
        self.device.register_service(
            &calendar_service(),
            "authority_check",
            std::sync::Arc::new(move |ctx, args: &[Value]| {
                let app = weak.upgrade().ok_or(SydError::Shutdown)?;
                let delegate = UserId::new(arg(args, 0)?.as_i64()? as u64);
                // When authenticated, only the delegate themself can
                // exercise the grant.
                if ctx.authenticated && ctx.caller != delegate {
                    return Err(SydError::AuthFailed(ctx.caller));
                }
                let grant = app
                    .delegation_for(delegate)?
                    .ok_or_else(|| SydError::App(format!("{delegate} holds no delegation")))?;
                if let Some(expires) = grant.expires {
                    if app.device.clock().now() > expires {
                        return Err(SydError::App("delegation expired".into()));
                    }
                }
                Ok(Value::map([(
                    "priority",
                    Value::from(grant.priority.level() as u32),
                )]))
            }),
        )?;
        Ok(())
    }

    /// Grants `delegate` the authority to schedule with `priority` on this
    /// user's behalf.
    pub fn delegate_authority(
        &self,
        delegate: UserId,
        priority: Priority,
        expires: Option<Timestamp>,
    ) -> SydResult<()> {
        let row = vec![
            Value::from(delegate.raw()),
            Value::from(priority.level() as u32),
            expires.map_or(Value::Null, |t| Value::from(t.as_micros())),
        ];
        if self
            .store
            .get_by_key(T_DELEGATIONS, &[Value::from(delegate.raw())])?
            .is_some()
        {
            self.store.update(
                T_DELEGATIONS,
                &Predicate::Eq("delegate".into(), Value::from(delegate.raw())),
                &[
                    ("priority".into(), row[1].clone()),
                    ("expires".into(), row[2].clone()),
                ],
            )?;
        } else {
            self.store.insert(T_DELEGATIONS, row)?;
        }
        Ok(())
    }

    /// Revokes a delegation.
    pub fn revoke_delegation(&self, delegate: UserId) -> SydResult<()> {
        self.store.delete(
            T_DELEGATIONS,
            &Predicate::Eq("delegate".into(), Value::from(delegate.raw())),
        )?;
        Ok(())
    }

    /// The grant this user holds for `delegate`, if any (delegator side).
    pub fn delegation_for(&self, delegate: UserId) -> SydResult<Option<Delegation>> {
        match self
            .store
            .get_by_key(T_DELEGATIONS, &[Value::from(delegate.raw())])?
        {
            None => Ok(None),
            Some(row) => Ok(Some(Delegation {
                delegator: self.user(),
                delegate,
                priority: Priority::new(row.values[1].as_i64()? as u8),
                expires: match &row.values[2] {
                    Value::Null => None,
                    v => Some(Timestamp::from_micros(v.as_i64()? as u64)),
                },
            })),
        }
    }

    /// Schedules a meeting *with the transferred authority* of `boss`:
    /// the boss's device is asked to confirm the grant, the meeting runs
    /// at the granted priority, and the boss is added as a must-attendee.
    pub fn schedule_on_behalf_of(
        &self,
        boss: UserId,
        mut spec: MeetingSpec,
    ) -> SydResult<ScheduleOutcome> {
        let authority = self.device.engine().invoke(
            boss,
            &calendar_service(),
            "authority_check",
            vec![Value::from(self.user().raw())],
        )?;
        let priority = Priority::new(authority.get("priority")?.as_i64()? as u8);
        spec.priority = priority;
        if !spec.must_attend.contains(&boss) {
            spec.must_attend.push(boss);
        }
        self.schedule(spec)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::model::MeetingStatus;
    use crate::CalendarApp;
    use std::sync::Arc;
    use syd_core::SydEnv;
    use syd_net::NetConfig;
    use syd_types::TimeSlot;

    fn rig() -> (SydEnv, Vec<Arc<CalendarApp>>) {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let apps = (0..3)
            .map(|i| CalendarApp::install(&env.device(&format!("u{i}"), "").unwrap()).unwrap())
            .collect();
        (env, apps)
    }

    #[test]
    fn staff_schedules_with_boss_authority() {
        let (_env, apps) = rig();
        let boss = &apps[0];
        let staff = &apps[1];
        let third = &apps[2];

        boss.delegate_authority(staff.user(), Priority::new(210), None)
            .unwrap();

        // A low-priority meeting already holds the slot.
        let slot = TimeSlot::new(1, 10);
        let low = third
            .schedule(
                MeetingSpec::plain("low", slot, vec![staff.user()])
                    .with_priority(Priority::new(50)),
            )
            .unwrap();
        assert_eq!(low.status, MeetingStatus::Confirmed);

        // The staff member schedules on the boss's behalf: executive
        // priority bumps the low meeting.
        let outcome = staff
            .schedule_on_behalf_of(
                boss.user(),
                MeetingSpec::plain("exec sync", slot, vec![third.user()]),
            )
            .unwrap();
        assert_eq!(outcome.status, MeetingStatus::Confirmed);
        let rec = staff.meeting(outcome.meeting).unwrap().unwrap();
        assert_eq!(rec.priority, Priority::new(210));
        assert!(rec.musts.contains(&boss.user()), "boss is a must-attendee");
        assert_eq!(
            staff.slot_state(slot.ordinal()).unwrap().meeting(),
            Some(outcome.meeting)
        );
    }

    #[test]
    fn no_grant_no_authority() {
        let (_env, apps) = rig();
        let err = apps[1]
            .schedule_on_behalf_of(
                apps[0].user(),
                MeetingSpec::plain("m", TimeSlot::new(1, 9), vec![]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("no delegation"), "{err}");
    }

    #[test]
    fn revocation_takes_effect_immediately() {
        let (_env, apps) = rig();
        apps[0]
            .delegate_authority(apps[1].user(), Priority::HIGH, None)
            .unwrap();
        assert!(apps[0].delegation_for(apps[1].user()).unwrap().is_some());
        apps[0].revoke_delegation(apps[1].user()).unwrap();
        assert!(apps[0].delegation_for(apps[1].user()).unwrap().is_none());
        assert!(apps[1]
            .schedule_on_behalf_of(
                apps[0].user(),
                MeetingSpec::plain("m", TimeSlot::new(1, 9), vec![]),
            )
            .is_err());
    }

    #[test]
    fn expired_grant_is_refused() {
        use syd_types::{Clock, SimClock};
        let clock = SimClock::new();
        let env = SydEnv::new_insecure(NetConfig::ideal())
            .with_clock(Arc::new(clock.clone()) as Arc<dyn Clock>);
        let boss = CalendarApp::install(&env.device("boss", "").unwrap()).unwrap();
        let staff = CalendarApp::install(&env.device("staff", "").unwrap()).unwrap();
        boss.delegate_authority(
            staff.user(),
            Priority::HIGH,
            Some(Timestamp::from_micros(1_000)),
        )
        .unwrap();
        // Valid before expiry…
        staff
            .schedule_on_behalf_of(
                boss.user(),
                MeetingSpec::plain("m", TimeSlot::new(1, 9), vec![]),
            )
            .unwrap();
        // …refused after.
        clock.advance(std::time::Duration::from_millis(5));
        let err = staff
            .schedule_on_behalf_of(
                boss.user(),
                MeetingSpec::plain("m", TimeSlot::new(2, 9), vec![]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("expired"), "{err}");
    }

    #[test]
    fn grants_can_be_updated() {
        let (_env, apps) = rig();
        apps[0]
            .delegate_authority(apps[1].user(), Priority::new(100), None)
            .unwrap();
        apps[0]
            .delegate_authority(apps[1].user(), Priority::new(250), None)
            .unwrap();
        let grant = apps[0].delegation_for(apps[1].user()).unwrap().unwrap();
        assert_eq!(grant.priority, Priority::new(250));
    }
}
