//! The SyD calendar-of-meetings application (§3.2, §5).
//!
//! "Several individuals maintain their independent schedule information in
//! their hand-held and other devices" (§1); this crate is that application,
//! built entirely on the `syd-core` kernel — coordination links do the
//! heavy lifting, exactly as the paper describes:
//!
//! * **Meeting setup** — find common free slots across participants
//!   (engine group query + intersection), then reserve through the §4.3
//!   negotiation protocol. If everyone reserves, the meeting is
//!   **confirmed**; otherwise it is **tentative**: slots are held at the
//!   available participants, and *availability links* are queued at the
//!   unavailable ones (waiting, per §4.2 op. 3, on the link of whatever
//!   occupies their slot).
//! * **Automatic confirmation** — when a blocking meeting is cancelled,
//!   the kernel's cascade delete promotes the highest-priority waiting
//!   link, which notifies the tentative meeting's initiator, who re-runs
//!   the reservation round — "automatic triggers … possibly convert
//!   tentative meetings into confirmed ones" with no human in the loop.
//! * **Priority bumping** — a higher-priority meeting may take a reserved
//!   slot; the bumped meeting's initiator is notified and automatically
//!   reschedules (§6).
//! * **Supervisors** — a supervisor's slot carries only a *subscription*
//!   back link, so they change their schedule at will; the meeting
//!   degrades to tentative and waits for them (§5).
//! * **Quorums** — must-attendees plus multiple OR-groups ("50% of
//!   Biology and at least two from Physics"), with leave requests granted
//!   only while quorums hold or a replacement commits (§5, §6).
//! * **E-mail notification** — participants get mailbox messages on
//!   meeting transitions ([`mailbox`], §5.1).
//!
//! [`baseline`] implements the §3.3/§6 "current practice" calendar
//! (replicated folders, e-mail round trips, manual accepts, polling) that
//! the benchmarks compare against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod appobj;
pub mod baseline;
pub mod delegation;
pub mod mailbox;
pub mod model;
pub mod proxy_support;

pub use app::CalendarApp;
pub use appobj::CommitteeCalendar;
pub use baseline::{BaselineCalendar, BaselineStats};
pub use delegation::Delegation;
pub use mailbox::{Mail, Mailbox};
pub use model::{
    slot_entity, GroupSpec, Meeting, MeetingId, MeetingSpec, MeetingStatus, ScheduleOutcome,
    SlotState,
};
pub use proxy_support::host_calendar_on_proxy;
