//! End-to-end telemetry: one meeting setup produces one trace that spans
//! every participant's journal, the negotiation counters and RPC
//! histograms tick, and a forced abort shows up in the postmortem dump
//! with its reason.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;

use syd_calendar::{CalendarApp, MeetingSpec, MeetingStatus};
use syd_core::SydEnv;
use syd_net::NetConfig;
use syd_telemetry::names;
use syd_telemetry::EventKind;
use syd_types::{TimeSlot, UserId};

fn rig(n: usize) -> (SydEnv, Vec<Arc<CalendarApp>>) {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let apps = (0..n)
        .map(|i| {
            let device = env.device(&format!("user{i}"), "").unwrap();
            CalendarApp::install(&device).unwrap()
        })
        .collect();
    (env, apps)
}

#[test]
fn one_trace_spans_all_participants_and_metrics_tick() {
    let (_env, apps) = rig(4);
    let slot = TimeSlot::new(3, 10);
    let attendees: Vec<UserId> = apps[1..].iter().map(|a| a.user()).collect();
    let outcome = apps[0]
        .schedule(MeetingSpec::plain("telemetry", slot, attendees))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    // The initiator's journal recorded the schedule span; pull its trace.
    let trace = apps[0]
        .device()
        .journal()
        .events()
        .into_iter()
        .find(|e| e.kind == EventKind::SpanBegin && e.detail.contains("calendar.schedule"))
        .expect("schedule span recorded")
        .trace;
    assert_ne!(trace, 0, "schedule opened a root trace");

    // The same trace id appears in every participant's journal: the
    // negotiation marks/commits arrived with the propagated context.
    for app in &apps {
        assert!(
            app.device().journal().contains_trace(trace),
            "device {} journal lacks trace {trace:016x}:\n{}",
            app.user(),
            app.device().journal().dump()
        );
    }

    // Counters and histograms ticked on the initiator.
    let metrics = apps[0].device().metrics();
    let sessions = metrics
        .get_counter(names::NEGOTIATE_SESSIONS)
        .expect("negotiate.sessions registered");
    assert!(sessions.get() >= 1, "no negotiation sessions counted");
    let rpc = metrics
        .get_histogram(names::RPC_CALL)
        .expect("rpc.call registered");
    assert!(rpc.count() >= 1, "no rpc latencies recorded");
    assert!(rpc.summary().p50 > 0, "rpc p50 should be positive");
    let schedule = metrics
        .get_histogram(names::CALENDAR_SCHEDULE)
        .expect("calendar.schedule registered");
    assert_eq!(schedule.count(), 1);

    // Participants served requests and journalled the state transitions.
    for app in &apps[1..] {
        let dump = app.device().journal().dump();
        assert!(dump.contains("lock"), "{dump}");
        assert!(dump.contains("vote=yes"), "{dump}");
        assert!(dump.contains("change"), "{dump}");
    }
}

#[test]
fn forced_abort_lands_in_journal_with_reason() {
    let (_env, apps) = rig(3);
    let slot = TimeSlot::new(4, 9);
    let attendees: Vec<UserId> = apps[1..].iter().map(|a| a.user()).collect();
    let outcome = apps[0]
        .schedule(MeetingSpec::plain("movable", slot, attendees))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    // The move target is busy at one holder, so the negotiation-and over
    // the new slot fails and the yes-voters are aborted.
    let target = TimeSlot::new(4, 15);
    apps[2].mark_busy(target).unwrap();
    let moved = apps[0].request_change(outcome.meeting, target).unwrap();
    assert!(!moved, "change should fail against a busy holder");

    let dump = apps[0].device().journal().dump();
    assert!(
        dump.contains("reason=constraint-failed"),
        "coordinator journal lacks the abort reason:\n{dump}"
    );
    let aborts = apps[0]
        .device()
        .metrics()
        .get_counter(names::NEGOTIATE_ABORTS)
        .expect("negotiate.aborts registered");
    assert!(aborts.get() >= 1);

    // The jsonl export renders the same story for machines.
    let jsonl = apps[0].device().telemetry_jsonl();
    assert!(jsonl.contains("\"kind\":\"abort\""), "{jsonl}");
    assert!(jsonl.contains("constraint-failed"), "{jsonl}");
}
