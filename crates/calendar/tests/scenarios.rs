//! End-to-end calendar scenarios — the narrative walkthroughs of §4.4 and
//! §5, executed against live devices on the simulated network.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;
use std::time::{Duration, Instant};

use syd_calendar::{CalendarApp, GroupSpec, MeetingSpec, MeetingStatus, SlotState};
use syd_core::SydEnv;
use syd_net::NetConfig;
use syd_types::{MeetingId, Priority, SlotRange, TimeSlot, UserId, Value};

fn rig(n: usize) -> (SydEnv, Vec<Arc<CalendarApp>>) {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let apps = (0..n)
        .map(|i| {
            let device = env.device(&format!("user{i}"), "").unwrap();
            CalendarApp::install(&device).unwrap()
        })
        .collect();
    (env, apps)
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn meeting_status(app: &CalendarApp, id: MeetingId) -> MeetingStatus {
    app.meeting(id).unwrap().unwrap().status
}

#[test]
fn meeting_confirms_when_everyone_is_free() {
    let (_env, apps) = rig(4);
    let slot = TimeSlot::new(1, 14);
    let attendees: Vec<UserId> = apps[1..].iter().map(|a| a.user()).collect();
    let outcome = apps[0]
        .schedule(MeetingSpec::plain("standup", slot, attendees))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);
    assert_eq!(outcome.reserved.len(), 4);
    assert!(outcome.pending.is_empty());
    // Every device holds the slot for this meeting.
    for app in &apps {
        assert_eq!(
            app.slot_state(slot.ordinal()).unwrap().meeting(),
            Some(outcome.meeting)
        );
    }
    // Participants were e-mailed.
    wait_for(
        || apps[1].mailbox().unread().unwrap() >= 1,
        "confirmation mail",
    );
    let mail = &apps[1].mailbox().inbox().unwrap()[0];
    assert!(mail.subject.contains("confirmed"), "{}", mail.subject);
}

#[test]
fn meeting_is_tentative_while_someone_is_busy_and_confirms_when_freed() {
    let (_env, apps) = rig(3);
    let slot = TimeSlot::new(2, 9);
    // user2 (C in the paper) is busy.
    apps[2].mark_busy(slot).unwrap();

    let attendees: Vec<UserId> = apps[1..].iter().map(|a| a.user()).collect();
    let outcome = apps[0]
        .schedule(MeetingSpec::plain("review", slot, attendees))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Tentative);
    assert_eq!(outcome.pending, vec![apps[2].user()]);
    // Available folks hold the slot tentatively.
    assert_eq!(
        apps[1].slot_state(slot.ordinal()).unwrap(),
        SlotState::Tentative(outcome.meeting)
    );

    // "Whenever C becomes available … a tentative meeting has been
    // converted to committed."
    apps[2].free_personal(slot).unwrap();
    wait_for(
        || meeting_status(&apps[0], outcome.meeting) == MeetingStatus::Confirmed,
        "automatic confirmation",
    );
    wait_for(
        || apps[2].slot_state(slot.ordinal()).unwrap().meeting() == Some(outcome.meeting),
        "C's reservation",
    );
}

#[test]
fn cancelling_a_meeting_confirms_the_tentative_one_waiting_on_it() {
    let (_env, apps) = rig(3);
    let slot = TimeSlot::new(3, 10);
    let others: Vec<UserId> = apps[1..].iter().map(|a| a.user()).collect();

    // Meeting 1 takes the slot everywhere.
    let m1 = apps[0]
        .schedule(MeetingSpec::plain("first", slot, others.clone()))
        .unwrap();
    assert_eq!(m1.status, MeetingStatus::Confirmed);

    // Meeting 2 (different initiator, same people, same slot) is blocked.
    let mut attendees2 = vec![apps[0].user(), apps[2].user()];
    attendees2.dedup();
    let m2 = apps[1]
        .schedule(MeetingSpec::plain("second", slot, attendees2))
        .unwrap();
    assert_eq!(m2.status, MeetingStatus::Tentative);

    // §4.4: cancel meeting 1 → waiting links promote → meeting 2 confirms
    // with no human involvement.
    apps[0].cancel(m1.meeting).unwrap();
    wait_for(
        || meeting_status(&apps[1], m2.meeting) == MeetingStatus::Confirmed,
        "automatic tentative→confirmed conversion",
    );
    for app in &apps {
        assert_eq!(
            app.slot_state(slot.ordinal()).unwrap().meeting(),
            Some(m2.meeting),
            "{} should now hold meeting 2",
            app.user()
        );
    }
}

#[test]
fn cancel_tears_down_all_links_everywhere() {
    let (_env, apps) = rig(3);
    let slot = TimeSlot::new(4, 11);
    let others: Vec<UserId> = apps[1..].iter().map(|a| a.user()).collect();
    let outcome = apps[0]
        .schedule(MeetingSpec::plain("m", slot, others))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);
    // Links exist at initiator (forward) and participants (back links).
    assert!(apps[0].device().links().count().unwrap() >= 1);
    assert!(apps[1].device().links().count().unwrap() >= 1);

    apps[0].cancel(outcome.meeting).unwrap();
    wait_for(
        || {
            apps.iter()
                .all(|a| a.device().links().count().unwrap() == 0)
        },
        "link teardown",
    );
    for app in &apps {
        assert!(app.slot_state(slot.ordinal()).unwrap().is_free());
    }
    wait_for(
        || apps[1].mailbox().unread().unwrap() >= 2,
        "cancellation mail",
    );
}

#[test]
fn higher_priority_meeting_bumps_and_victim_reschedules() {
    let (_env, apps) = rig(3);
    let slot = TimeSlot::new(5, 9);
    let others: Vec<UserId> = apps[1..].iter().map(|a| a.user()).collect();

    let low = apps[0]
        .schedule(MeetingSpec::plain("low", slot, others.clone()).with_priority(Priority::new(50)))
        .unwrap();
    assert_eq!(low.status, MeetingStatus::Confirmed);

    // An executive meeting outranks it on the same slot.
    let high = apps[1]
        .schedule(
            MeetingSpec::plain("high", slot, vec![apps[0].user(), apps[2].user()])
                .with_priority(Priority::new(200)),
        )
        .unwrap();
    assert_eq!(high.status, MeetingStatus::Confirmed);
    for app in &apps {
        assert_eq!(
            app.slot_state(slot.ordinal()).unwrap().meeting(),
            Some(high.meeting)
        );
    }

    // The bumped meeting automatically lands on another common slot.
    wait_for(
        || {
            apps[0].meeting(low.meeting).unwrap().is_some_and(|m| {
                m.ordinal != slot.ordinal() && m.status == MeetingStatus::Confirmed
            })
        },
        "automatic rescheduling of the bumped meeting",
    );
    let moved = apps[0].meeting(low.meeting).unwrap().unwrap();
    for app in &apps {
        assert_eq!(
            app.slot_state(moved.ordinal).unwrap().meeting(),
            Some(low.meeting),
            "rescheduled slot at {}",
            app.user()
        );
    }
}

#[test]
fn participant_change_request_moves_or_fails_atomically() {
    let (_env, apps) = rig(3);
    let slot = TimeSlot::new(6, 10);
    let new_slot = TimeSlot::new(6, 15);
    let others: Vec<UserId> = apps[1..].iter().map(|a| a.user()).collect();
    let outcome = apps[0]
        .schedule(MeetingSpec::plain("mtg", slot, others))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    // D (user2) asks to move the meeting; everyone is free → moves.
    assert!(apps[2].request_change(outcome.meeting, new_slot).unwrap());
    wait_for(
        || {
            apps.iter().all(|a| {
                a.slot_state(new_slot.ordinal()).unwrap().meeting() == Some(outcome.meeting)
                    && a.slot_state(slot.ordinal()).unwrap().is_free()
            })
        },
        "meeting moved everywhere",
    );

    // Another move fails because user1 is busy at the target: "D would be
    // unable to change the schedule of the meeting."
    let blocked = TimeSlot::new(6, 20);
    apps[1].mark_busy(blocked).unwrap();
    assert!(!apps[2].request_change(outcome.meeting, blocked).unwrap());
    // Nothing changed.
    for app in &apps {
        assert_eq!(
            app.slot_state(new_slot.ordinal()).unwrap().meeting(),
            Some(outcome.meeting)
        );
    }
}

#[test]
fn quorum_meeting_biology_physics() {
    // §5: B and C must attend, ≥50% of Biology (2 of 4), ≥2 of Physics.
    let (_env, apps) = rig(9);
    let initiator = &apps[0];
    let b = apps[1].user();
    let c = apps[2].user();
    let biology: Vec<UserId> = apps[3..7].iter().map(|a| a.user()).collect();
    let physics: Vec<UserId> = apps[7..9].iter().map(|a| a.user()).collect();
    let slot = TimeSlot::new(7, 11);

    // Two biologists and nobody else are busy.
    apps[3].mark_busy(slot).unwrap();
    apps[4].mark_busy(slot).unwrap();

    let spec = MeetingSpec::plain("faculty", slot, vec![b, c])
        .with_group(GroupSpec::new(biology.clone(), 2))
        .with_group(GroupSpec::new(physics.clone(), 2));
    let outcome = initiator.schedule(spec).unwrap();
    // 2 of 4 biologists free => quorum met; both physicists free.
    assert_eq!(outcome.status, MeetingStatus::Confirmed);
    assert!(outcome.reserved.contains(&b));
    assert!(outcome.reserved.contains(&c));
    assert_eq!(
        outcome.pending,
        vec![apps[3].user(), apps[4].user()],
        "busy biologists stay pending"
    );

    // A third biologist booked too => below quorum => tentative.
    let slot2 = TimeSlot::new(8, 11);
    for app in &apps[3..6] {
        app.mark_busy(slot2).unwrap();
    }
    let spec2 = MeetingSpec::plain("faculty2", slot2, vec![b, c])
        .with_group(GroupSpec::new(biology.clone(), 2))
        .with_group(GroupSpec::new(physics.clone(), 2));
    let outcome2 = initiator.schedule(spec2).unwrap();
    assert_eq!(outcome2.status, MeetingStatus::Tentative);

    // One busy biologist frees up → quorum reached → auto-confirm.
    apps[5].free_personal(slot2).unwrap();
    wait_for(
        || meeting_status(initiator, outcome2.meeting) == MeetingStatus::Confirmed,
        "quorum auto-confirmation",
    );
}

#[test]
fn leaving_respects_quorums_and_musts() {
    let (_env, apps) = rig(6);
    let slot = TimeSlot::new(9, 13);
    let must = apps[1].user();
    let group: Vec<UserId> = apps[2..6].iter().map(|a| a.user()).collect();
    let spec = MeetingSpec::plain("committee", slot, vec![must])
        .with_group(GroupSpec::new(group.clone(), 2));
    let outcome = apps[0].schedule(spec).unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);
    assert_eq!(outcome.reserved.len(), 6);

    // A must-attendee can never leave.
    assert!(!apps[1].leave(outcome.meeting).unwrap());

    // Group members may leave while the quorum holds (4 -> 3 -> 2).
    assert!(apps[2].leave(outcome.meeting).unwrap());
    assert!(apps[3].leave(outcome.meeting).unwrap());
    wait_for(
        || apps[3].slot_state(slot.ordinal()).unwrap().is_free(),
        "leaver's slot freed",
    );
    // Now exactly k=2 remain; the next leave would break the quorum and
    // there is no free replacement (the two leavers' slots are free but
    // they already said no… they are candidates again, actually: they are
    // free, so recruitment re-reserves one of them).
    assert!(apps[4].leave(outcome.meeting).unwrap());
    let rec = apps[0].meeting(outcome.meeting).unwrap().unwrap();
    assert!(
        rec.constraints_satisfied(),
        "quorum must still hold after recruitment: {rec:?}"
    );

    // Drain attendance down to exactly k=2 group members (each leave is
    // granted while the quorum holds or a free member can be recruited)…
    loop {
        let rec = apps[0].meeting(outcome.meeting).unwrap().unwrap();
        let attending: Vec<UserId> = rec
            .reserved
            .iter()
            .copied()
            .filter(|u| group.contains(u))
            .collect();
        if attending.len() <= 2 {
            break;
        }
        let leaver = apps.iter().find(|a| a.user() == attending[0]).unwrap();
        assert!(leaver.leave(outcome.meeting).unwrap());
    }
    // …then block every possible replacement and deny the final leave.
    let rec = apps[0].meeting(outcome.meeting).unwrap().unwrap();
    let attending: Vec<UserId> = rec
        .reserved
        .iter()
        .copied()
        .filter(|u| group.contains(u))
        .collect();
    assert_eq!(attending.len(), 2);
    for app in &apps[2..6] {
        if !attending.contains(&app.user()) && app.slot_state(slot.ordinal()).unwrap().is_free() {
            app.mark_busy(slot).unwrap();
        }
    }
    let leaver = apps.iter().find(|a| a.user() == attending[0]).unwrap();
    assert!(
        !leaver.leave(outcome.meeting).unwrap(),
        "leave must be denied when the quorum would break with no replacement"
    );
}

#[test]
fn supervisor_changes_schedule_at_will_and_meeting_waits() {
    let (_env, apps) = rig(3);
    let slot = TimeSlot::new(10, 10);
    let supervisor = apps[1].user();
    let spec = MeetingSpec::plain("exec-review", slot, vec![supervisor, apps[2].user()])
        .with_supervisors(vec![supervisor]);
    let outcome = apps[0].schedule(spec).unwrap();
    assert_eq!(outcome.status, MeetingStatus::Confirmed);

    // The supervisor walks away to a conflicting engagement.
    apps[1]
        .supervisor_change(outcome.meeting, Some(slot))
        .unwrap();
    wait_for(
        || meeting_status(&apps[0], outcome.meeting) == MeetingStatus::Tentative,
        "meeting degrades to tentative",
    );

    // When the supervisor frees up, the meeting re-confirms automatically.
    apps[1].free_personal(slot).unwrap();
    wait_for(
        || meeting_status(&apps[0], outcome.meeting) == MeetingStatus::Confirmed,
        "meeting re-confirms",
    );
}

#[test]
fn find_common_slots_intersects_views() {
    let (_env, apps) = rig(3);
    let users: Vec<UserId> = apps.iter().map(|a| a.user()).collect();
    // Day 0: user0 busy at 9, user1 busy at 10, user2 busy at 9 and 11.
    apps[0].mark_busy(TimeSlot::new(0, 9)).unwrap();
    apps[1].mark_busy(TimeSlot::new(0, 10)).unwrap();
    apps[2].mark_busy(TimeSlot::new(0, 9)).unwrap();
    apps[2].mark_busy(TimeSlot::new(0, 11)).unwrap();

    let common = apps[0]
        .find_common_slots(
            &users,
            SlotRange::new(TimeSlot::new(0, 8), TimeSlot::new(0, 13)),
        )
        .unwrap();
    assert_eq!(
        common,
        vec![TimeSlot::new(0, 8), TimeSlot::new(0, 12)],
        "9, 10, 11 are taken by someone"
    );
}

#[test]
fn bitmap_and_list_intersections_agree() {
    let (_env, apps) = rig(3);
    let users: Vec<UserId> = apps.iter().map(|a| a.user()).collect();
    // A scatter of engagements across a multi-day window (the window
    // straddles word boundaries in the bitmap: 3 days of 24 slots).
    apps[0].mark_busy(TimeSlot::new(1, 3)).unwrap();
    apps[0].mark_busy(TimeSlot::new(2, 23)).unwrap();
    apps[1].mark_busy(TimeSlot::new(1, 3)).unwrap();
    apps[1].mark_busy(TimeSlot::new(3, 0)).unwrap();
    apps[2].mark_busy(TimeSlot::new(2, 0)).unwrap();
    let range = SlotRange::new(TimeSlot::new(1, 2), TimeSlot::new(3, 5));

    let via_bitmaps = apps[0].find_common_slots(&users, range).unwrap();
    let via_lists = apps[0].find_common_slots_via_lists(&users, range).unwrap();
    assert_eq!(via_bitmaps, via_lists);
    assert!(!via_bitmaps.contains(&TimeSlot::new(1, 3)));
    assert!(!via_bitmaps.contains(&TimeSlot::new(2, 0)));
    assert!(via_bitmaps.contains(&TimeSlot::new(1, 4)));
    // Ascending, as schedulers downstream assume.
    let mut sorted = via_bitmaps.clone();
    sorted.sort();
    assert_eq!(via_bitmaps, sorted);
}

#[test]
fn free_slots_bitmap_service_answers_packed_bytes() {
    use syd_types::SlotBitmap;
    let (_env, apps) = rig(2);
    apps[1].mark_busy(TimeSlot::new(0, 5)).unwrap();
    let reply = apps[0]
        .device()
        .engine()
        .invoke(
            apps[1].user(),
            &syd_calendar::app::calendar_service(),
            "free_slots_bitmap",
            vec![Value::from(0u64), Value::from(24u64)],
        )
        .unwrap();
    let bm = SlotBitmap::unpack(reply.as_bytes().unwrap()).unwrap();
    assert!(!bm.is_free(TimeSlot::new(0, 5)));
    assert!(bm.is_free(TimeSlot::new(0, 6)));
    assert_eq!(bm.count_free(), 23);
}

#[test]
fn concurrent_initiators_cannot_double_book_a_slot() {
    let (_env, apps) = rig(4);
    let slot = TimeSlot::new(11, 9);
    let users: Vec<UserId> = apps.iter().map(|a| a.user()).collect();

    // Two initiators race for the same slot with the same participants.
    let a0 = Arc::clone(&apps[0]);
    let a1 = Arc::clone(&apps[1]);
    let users0 = users.clone();
    let users1 = users.clone();
    let t0 = std::thread::spawn(move || {
        a0.schedule(MeetingSpec::plain("race-A", slot, users0))
            .unwrap()
    });
    let t1 = std::thread::spawn(move || {
        a1.schedule(MeetingSpec::plain("race-B", slot, users1))
            .unwrap()
    });
    let o0 = t0.join().unwrap();
    let o1 = t1.join().unwrap();

    // At most one meeting confirmed; and on every device the slot belongs
    // to at most one meeting.
    let confirmed = [o0.status, o1.status]
        .iter()
        .filter(|&&s| s == MeetingStatus::Confirmed)
        .count();
    assert!(confirmed <= 1, "both meetings confirmed: {o0:?} {o1:?}");
    let mut holders = std::collections::HashSet::new();
    for app in &apps {
        if let Some(m) = app.slot_state(slot.ordinal()).unwrap().meeting() {
            holders.insert(m.raw());
        }
    }
    assert!(
        holders.len() <= 1,
        "slot split between meetings: {holders:?}"
    );
}

#[test]
fn only_initiator_cancels() {
    let (_env, apps) = rig(2);
    let slot = TimeSlot::new(12, 9);
    let outcome = apps[0]
        .schedule(MeetingSpec::plain("m", slot, vec![apps[1].user()]))
        .unwrap();
    let err = apps[1].cancel(outcome.meeting).unwrap_err();
    assert!(err.to_string().contains("initiator"), "{err}");
    apps[0].cancel(outcome.meeting).unwrap();
    assert_eq!(
        meeting_status(&apps[0], outcome.meeting),
        MeetingStatus::Cancelled
    );
}

#[test]
fn busy_marks_and_frees_are_validated() {
    let (_env, apps) = rig(1);
    let slot = TimeSlot::new(13, 9);
    apps[0].mark_busy(slot).unwrap();
    assert!(apps[0].mark_busy(slot).is_err(), "double busy");
    assert_eq!(apps[0].slot_state(slot.ordinal()).unwrap(), SlotState::Busy);
    apps[0].free_personal(slot).unwrap();
    assert!(apps[0].free_personal(slot).is_err(), "double free");
    assert!(apps[0].slot_state(slot.ordinal()).unwrap().is_free());
}

#[test]
fn meeting_with_unreachable_participant_stays_tentative() {
    let (_env, apps) = rig(3);
    let slot = TimeSlot::new(14, 9);
    apps[2].device().disconnect().unwrap();
    let outcome = apps[0]
        .schedule(MeetingSpec::plain(
            "m",
            slot,
            vec![apps[1].user(), apps[2].user()],
        ))
        .unwrap();
    assert_eq!(outcome.status, MeetingStatus::Tentative);
    assert_eq!(outcome.pending, vec![apps[2].user()]);
    // The reachable participants still hold the slot.
    assert_eq!(
        apps[1].slot_state(slot.ordinal()).unwrap(),
        SlotState::Tentative(outcome.meeting)
    );

    // Reconnect and repair: the meeting confirms.
    apps[2].device().reconnect().unwrap();
    let status = apps[0].reconcile(outcome.meeting).unwrap();
    assert_eq!(status, MeetingStatus::Confirmed);
}
