//! Abstract model of the §4.3 negotiation protocol: `n` devices, each
//! owning one entity, running `s` concurrent negotiation sessions over
//! all of them under bounded message loss, duplicate delivery, and
//! coordinator crash.
//!
//! The transition semantics are **not** re-implemented here: every
//! protocol decision is delegated to the pure cores the runtime itself
//! executes — [`fsm::participant_mark`], [`fsm::decide`], and
//! [`fsm::outcome_satisfied`] from `syd_core` — and every step journals
//! exactly the `key=value` records `crates/core/src/device.rs` and
//! `negotiate.rs` journal, so the `syd-check` oracle sees the same
//! event language either way.
//!
//! ## Abstraction
//!
//! Session `k` is coordinated by device `k % n` (session id
//! `((coord+1) << 24) | (k+1)`, the runtime's scheme) and marks every
//! entity `e0..e{n-1}`; entity `ei` lives on device `i`, owned by user
//! `i+1`. Devices have no entity handler, so prepare always succeeds —
//! the modelled declines are lock conflicts and lost messages, which is
//! where all the §4.3 concurrency lives. Each participant slot walks a
//! small per-session state machine (mark pending → vote → commit/abort/
//! cleanup), and the only shared state is the per-entity lock holder,
//! exactly like the runtime's lock table (depth-counted for duplicate
//! marks). Fault budgets are part of the state, so the explorer covers
//! every placement of every budgeted fault.

use syd_check::{DeviceState, HeldLock};
use syd_core::negotiate::fsm;
use syd_core::Constraint;
use syd_telemetry::{EventKind, JournalEvent};

use crate::explore::Model;
use crate::journal::JournalSet;

/// Protocol mutations for `--inject`: each plants one specific bug the
/// oracle must catch, closing the loop between checker and model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegotiationInject {
    /// The first delivered commit also applies a change for a session
    /// that holds no lock — `syd_check::Rule::DoubleBook`.
    DoubleCommit,
    /// The first yes-voting device journals its lock acquisition twice
    /// without a release — `syd_check::Rule::Ordering` (strict).
    DoubleLock,
    /// The first delivered commit forgets to journal, release, or sweep
    /// its lock — `syd_check::Rule::LockLeak`.
    LockLeak,
    /// Session 0's coordinator misreports its outcome as satisfied with
    /// one commit short — `syd_check::Rule::Constraint`.
    BadArithmetic,
}

/// Model configuration: the protocol instance to exhaust.
#[derive(Clone, Copy, Debug)]
pub struct NegotiationModel {
    /// Devices (= participants = entities), each owning entity `e{i}`.
    pub devices: usize,
    /// Concurrent negotiation sessions over those entities.
    pub sessions: usize,
    /// The constraint every session negotiates.
    pub constraint: Constraint,
    /// How many messages the network may lose.
    pub loss_budget: u8,
    /// How many deliveries the network may duplicate.
    pub dup_budget: u8,
    /// How many coordinators may crash mid-session.
    pub crash_budget: u8,
    /// Optional planted bug.
    pub inject: Option<NegotiationInject>,
}

/// Where one session is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum SessionPhase {
    NotStarted,
    Marking,
    Finishing,
    Done,
    Crashed,
}

/// One participant's slot within a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Slot {
    /// Mark request in flight.
    MarkPending,
    /// Voted yes; holds its entity lock.
    Yes,
    /// Voted yes and locked, but the reply was lost — the coordinator
    /// tallies a decline while the device holds the lock.
    YesReplyLost,
    /// Voted no (lock busy); the coordinator saw the busy decline.
    NoBusy,
    /// Voted no (lock busy) but the reply was lost — the coordinator
    /// tallies a plain decline, not a contended one.
    BusyReplyLost,
    /// The mark request itself was lost; the device saw nothing.
    NoRequestLost,
    /// Commit decided; delivery in flight (`retried` after one loss —
    /// the coordinator retries a failed commit exactly once).
    CommitPending {
        /// True once the first delivery was lost.
        retried: bool,
    },
    /// Commit applied and lock released.
    Committed,
    /// Commit swallowed by the [`NegotiationInject::LockLeak`] bug: the
    /// coordinator counts it committed, but the device journaled
    /// nothing, still holds the lock, and hides it from the sweep.
    CommitLeaked,
    /// Both commit deliveries lost; the coordinator gave up.
    CommitFailed,
    /// Abort decided (constraint failed or xor overflow); in flight.
    AbortPending,
    /// Abort applied and lock released.
    Aborted,
    /// Abort delivery lost; the lock waits for the sweep.
    AbortDropped,
    /// Best-effort cleanup abort to a decliner, in flight.
    CleanupPending,
    /// Cleanup abort applied.
    CleanedUp,
    /// Cleanup abort lost.
    CleanupDropped,
}

impl Slot {
    /// Slots that end the session's interest in the participant.
    fn terminal(self) -> bool {
        matches!(
            self,
            Slot::Committed
                | Slot::CommitLeaked
                | Slot::CommitFailed
                | Slot::Aborted
                | Slot::AbortDropped
                | Slot::CleanedUp
                | Slot::CleanupDropped
        )
    }

    /// Slots the coordinator tallies as a decline.
    fn declined(self) -> bool {
        matches!(
            self,
            Slot::NoBusy | Slot::BusyReplyLost | Slot::NoRequestLost | Slot::YesReplyLost
        )
    }
}

/// One session's progress.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Session {
    phase: SessionPhase,
    /// Provisional outcome of [`fsm::decide`]; valid once `Finishing`.
    satisfied: bool,
    slots: Vec<Slot>,
}

/// Abstract global state: lock holders, session progress, fault
/// budgets, and injection bookkeeping. Everything the journal of a
/// schedule can depend on is in here — that is what makes visited-state
/// deduplication sound for this model.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NegotiationState {
    /// Per entity: `(session index, re-entrant depth)` of the holder.
    holders: Vec<Option<(u8, u8)>>,
    sessions: Vec<Session>,
    loss_left: u8,
    dup_left: u8,
    crash_left: u8,
    /// A duplicate delivery happened somewhere — the run is audited
    /// with lossy (non-strict) options, like a real at-least-once run.
    dups_used: bool,
    /// The one-shot injection already fired.
    injected: bool,
    /// `(session, entity)` whose lock the [`NegotiationInject::LockLeak`]
    /// bug hid from the stale-session sweep.
    leaked: Option<(u8, u8)>,
}

/// One atomic step of the negotiation system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NegotiationAction {
    /// Coordinator opens the session and journals its span.
    Start {
        /// Session index.
        session: usize,
    },
    /// A mark request reaches its device, which votes.
    DeliverMark {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// A mark request is lost; the coordinator tallies a decline.
    DropMark {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// A mark is delivered but its reply is lost: the device votes (and
    /// may lock), yet the coordinator tallies a decline.
    LoseMarkReply {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// A delivered mark is delivered again (at-least-once RPC): the
    /// device re-journals its lock and vote, deepening the lock.
    DuplicateMark {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// Coordinator tallies the votes and splits yes-voters into commit
    /// and abort sets (pure [`fsm::decide`]).
    Decide {
        /// Session index.
        session: usize,
    },
    /// A commit reaches its device: change applied, lock released.
    DeliverCommit {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// A commit delivery is lost (the coordinator retries once, then
    /// gives up and journals `commit-failed`).
    DropCommit {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// A committed change is delivered a second time.
    DuplicateCommit {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// An abort reaches its yes-voter: change discarded, lock released.
    DeliverAbort {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// An abort delivery is lost; the lock waits for the sweep.
    DropAbort {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// A best-effort cleanup abort reaches a decliner.
    DeliverCleanup {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// A cleanup abort is lost.
    DropCleanup {
        /// Session index.
        session: usize,
        /// Participant device.
        device: usize,
    },
    /// Coordinator counts commits and closes its span (pure
    /// [`fsm::outcome_satisfied`]).
    End {
        /// Session index.
        session: usize,
    },
    /// The coordinator crashes: the session freezes where it is and
    /// undelivered messages never arrive.
    Crash {
        /// Session index.
        session: usize,
    },
}

impl NegotiationAction {
    /// The session an action belongs to.
    fn session(&self) -> usize {
        match *self {
            NegotiationAction::Start { session }
            | NegotiationAction::DeliverMark { session, .. }
            | NegotiationAction::DropMark { session, .. }
            | NegotiationAction::LoseMarkReply { session, .. }
            | NegotiationAction::DuplicateMark { session, .. }
            | NegotiationAction::Decide { session }
            | NegotiationAction::DeliverCommit { session, .. }
            | NegotiationAction::DropCommit { session, .. }
            | NegotiationAction::DuplicateCommit { session, .. }
            | NegotiationAction::DeliverAbort { session, .. }
            | NegotiationAction::DropAbort { session, .. }
            | NegotiationAction::DeliverCleanup { session, .. }
            | NegotiationAction::DropCleanup { session, .. }
            | NegotiationAction::End { session }
            | NegotiationAction::Crash { session } => session,
        }
    }

    /// The entity/device a delivery touches, if any.
    fn entity(&self) -> Option<usize> {
        match *self {
            NegotiationAction::DeliverMark { device, .. }
            | NegotiationAction::DropMark { device, .. }
            | NegotiationAction::LoseMarkReply { device, .. }
            | NegotiationAction::DuplicateMark { device, .. }
            | NegotiationAction::DeliverCommit { device, .. }
            | NegotiationAction::DropCommit { device, .. }
            | NegotiationAction::DuplicateCommit { device, .. }
            | NegotiationAction::DeliverAbort { device, .. }
            | NegotiationAction::DropAbort { device, .. }
            | NegotiationAction::DeliverCleanup { device, .. }
            | NegotiationAction::DropCleanup { device, .. } => Some(device),
            NegotiationAction::Start { .. }
            | NegotiationAction::Decide { .. }
            | NegotiationAction::End { .. }
            | NegotiationAction::Crash { .. } => None,
        }
    }
}

impl std::fmt::Display for NegotiationAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            NegotiationAction::Start { session } => write!(f, "s{session}: begin negotiation"),
            NegotiationAction::DeliverMark { session, device } => {
                write!(f, "s{session}: mark delivered to dev{device}")
            }
            NegotiationAction::DropMark { session, device } => {
                write!(f, "s{session}: mark to dev{device} lost")
            }
            NegotiationAction::LoseMarkReply { session, device } => {
                write!(f, "s{session}: mark reply from dev{device} lost")
            }
            NegotiationAction::DuplicateMark { session, device } => {
                write!(f, "s{session}: mark to dev{device} delivered twice")
            }
            NegotiationAction::Decide { session } => {
                write!(f, "s{session}: coordinator tallies votes and decides")
            }
            NegotiationAction::DeliverCommit { session, device } => {
                write!(f, "s{session}: commit delivered to dev{device}")
            }
            NegotiationAction::DropCommit { session, device } => {
                write!(f, "s{session}: commit to dev{device} lost")
            }
            NegotiationAction::DuplicateCommit { session, device } => {
                write!(f, "s{session}: commit to dev{device} delivered twice")
            }
            NegotiationAction::DeliverAbort { session, device } => {
                write!(f, "s{session}: abort delivered to dev{device}")
            }
            NegotiationAction::DropAbort { session, device } => {
                write!(f, "s{session}: abort to dev{device} lost")
            }
            NegotiationAction::DeliverCleanup { session, device } => {
                write!(f, "s{session}: cleanup abort delivered to dev{device}")
            }
            NegotiationAction::DropCleanup { session, device } => {
                write!(f, "s{session}: cleanup abort to dev{device} lost")
            }
            NegotiationAction::End { session } => {
                write!(f, "s{session}: coordinator closes the session")
            }
            NegotiationAction::Crash { session } => {
                write!(f, "s{session}: coordinator crashes")
            }
        }
    }
}

impl NegotiationModel {
    /// The coordinator device of session `s` (the runtime rotates
    /// coordination; the model spreads it the same way).
    fn coord(&self, s: usize) -> usize {
        s % self.devices
    }

    /// The runtime's session-id scheme: `((user << 24) | counter)` with
    /// the coordinator's user id seeding uniqueness.
    fn sid(&self, s: usize) -> u64 {
        (((self.coord(s) as u64) + 1) << 24) | (s as u64 + 1)
    }

    /// A session id guaranteed to collide with no real session — the
    /// "ghost" session the double-commit bug writes under.
    fn ghost_sid(&self, s: usize) -> u64 {
        self.sid(s) + (1 << 32)
    }

    fn release_one(state: &mut NegotiationState, entity: usize, session: usize) {
        if let Some((holder, depth)) = state.holders[entity] {
            if holder as usize == session {
                state.holders[entity] = if depth > 1 {
                    Some((holder, depth - 1))
                } else {
                    None
                };
            }
        }
    }
}

impl Model for NegotiationModel {
    type State = NegotiationState;
    type Action = NegotiationAction;

    fn device_names(&self) -> Vec<String> {
        (0..self.devices).map(|i| format!("dev{i}")).collect()
    }

    fn initial(&self) -> NegotiationState {
        NegotiationState {
            holders: vec![None; self.devices],
            sessions: (0..self.sessions)
                .map(|_| Session {
                    phase: SessionPhase::NotStarted,
                    satisfied: false,
                    slots: vec![Slot::MarkPending; self.devices],
                })
                .collect(),
            loss_left: self.loss_budget,
            dup_left: self.dup_budget,
            crash_left: self.crash_budget,
            dups_used: false,
            injected: false,
            leaked: None,
        }
    }

    fn actions(&self, state: &NegotiationState) -> Vec<NegotiationAction> {
        use NegotiationAction as A;
        let mut out = Vec::new();
        for (s, session) in state.sessions.iter().enumerate() {
            match session.phase {
                SessionPhase::NotStarted => out.push(A::Start { session: s }),
                SessionPhase::Marking => {
                    for (i, slot) in session.slots.iter().enumerate() {
                        match slot {
                            Slot::MarkPending => {
                                out.push(A::DeliverMark {
                                    session: s,
                                    device: i,
                                });
                                if state.loss_left > 0 {
                                    out.push(A::DropMark {
                                        session: s,
                                        device: i,
                                    });
                                    out.push(A::LoseMarkReply {
                                        session: s,
                                        device: i,
                                    });
                                }
                            }
                            Slot::Yes if state.dup_left > 0 => {
                                out.push(A::DuplicateMark {
                                    session: s,
                                    device: i,
                                });
                            }
                            _ => {}
                        }
                    }
                    if session.slots.iter().all(|slot| *slot != Slot::MarkPending) {
                        out.push(A::Decide { session: s });
                    }
                    if state.crash_left > 0 {
                        out.push(A::Crash { session: s });
                    }
                }
                SessionPhase::Finishing => {
                    for (i, slot) in session.slots.iter().enumerate() {
                        match slot {
                            Slot::CommitPending { .. } => {
                                out.push(A::DeliverCommit {
                                    session: s,
                                    device: i,
                                });
                                if state.loss_left > 0 {
                                    out.push(A::DropCommit {
                                        session: s,
                                        device: i,
                                    });
                                }
                            }
                            Slot::Committed if state.dup_left > 0 => {
                                out.push(A::DuplicateCommit {
                                    session: s,
                                    device: i,
                                });
                            }
                            Slot::AbortPending => {
                                out.push(A::DeliverAbort {
                                    session: s,
                                    device: i,
                                });
                                if state.loss_left > 0 {
                                    out.push(A::DropAbort {
                                        session: s,
                                        device: i,
                                    });
                                }
                            }
                            Slot::CleanupPending => {
                                out.push(A::DeliverCleanup {
                                    session: s,
                                    device: i,
                                });
                                if state.loss_left > 0 {
                                    out.push(A::DropCleanup {
                                        session: s,
                                        device: i,
                                    });
                                }
                            }
                            _ => {}
                        }
                    }
                    if session.slots.iter().all(|slot| slot.terminal()) {
                        out.push(A::End { session: s });
                    }
                    if state.crash_left > 0 {
                        out.push(A::Crash { session: s });
                    }
                }
                SessionPhase::Done | SessionPhase::Crashed => {}
            }
        }
        out
    }

    #[allow(clippy::too_many_lines)]
    fn apply(
        &self,
        state: &NegotiationState,
        action: &NegotiationAction,
        journal: &mut JournalSet,
    ) -> NegotiationState {
        use NegotiationAction as A;
        let mut st = state.clone();
        match *action {
            A::Start { session: s } => {
                st.sessions[s].phase = SessionPhase::Marking;
                journal.record(
                    self.coord(s),
                    EventKind::SpanBegin,
                    format!(
                        "negotiate session={} constraint={:?} participants={}",
                        self.sid(s),
                        self.constraint,
                        self.devices
                    ),
                );
            }
            A::DeliverMark {
                session: s,
                device: i,
            } => {
                let sid = self.sid(s);
                let holder = st.holders[i].map(|(hs, _)| self.sid(hs as usize));
                let (vote, _) = fsm::participant_mark(holder, sid, true);
                match vote {
                    fsm::Vote::Yes => {
                        journal.record(i, EventKind::Lock, format!("session={sid} entity=e{i}"));
                        if self.inject == Some(NegotiationInject::DoubleLock) && !st.injected {
                            st.injected = true;
                            journal.record(
                                i,
                                EventKind::Lock,
                                format!("session={sid} entity=e{i}"),
                            );
                        }
                        journal.record(
                            i,
                            EventKind::Mark,
                            format!("session={sid} entity=e{i} vote=yes"),
                        );
                        st.holders[i] = Some((s as u8, 1));
                        st.sessions[s].slots[i] = Slot::Yes;
                    }
                    fsm::Vote::NoLockBusy => {
                        journal.record(
                            i,
                            EventKind::Mark,
                            format!("session={sid} entity=e{i} vote=no reason=lock-busy"),
                        );
                        st.sessions[s].slots[i] = Slot::NoBusy;
                    }
                    fsm::Vote::NoPrepare => {
                        unreachable!("model devices have no entity handler; prepare cannot fail")
                    }
                }
            }
            A::DropMark {
                session: s,
                device: i,
            } => {
                st.loss_left -= 1;
                st.sessions[s].slots[i] = Slot::NoRequestLost;
            }
            A::LoseMarkReply {
                session: s,
                device: i,
            } => {
                st.loss_left -= 1;
                let sid = self.sid(s);
                let holder = st.holders[i].map(|(hs, _)| self.sid(hs as usize));
                let (vote, _) = fsm::participant_mark(holder, sid, true);
                match vote {
                    fsm::Vote::Yes => {
                        // The device locked and voted yes, but the reply
                        // never reached the coordinator.
                        journal.record(i, EventKind::Lock, format!("session={sid} entity=e{i}"));
                        journal.record(
                            i,
                            EventKind::Mark,
                            format!("session={sid} entity=e{i} vote=yes"),
                        );
                        st.holders[i] = Some((s as u8, 1));
                        st.sessions[s].slots[i] = Slot::YesReplyLost;
                    }
                    fsm::Vote::NoLockBusy => {
                        journal.record(
                            i,
                            EventKind::Mark,
                            format!("session={sid} entity=e{i} vote=no reason=lock-busy"),
                        );
                        st.sessions[s].slots[i] = Slot::BusyReplyLost;
                    }
                    fsm::Vote::NoPrepare => {
                        unreachable!("model devices have no entity handler; prepare cannot fail")
                    }
                }
            }
            A::DuplicateMark {
                session: s,
                device: i,
            } => {
                st.dup_left -= 1;
                st.dups_used = true;
                let sid = self.sid(s);
                // Re-entrant re-acquisition: the lock table deepens and
                // the device journals the lock and vote again.
                journal.record(i, EventKind::Lock, format!("session={sid} entity=e{i}"));
                journal.record(
                    i,
                    EventKind::Mark,
                    format!("session={sid} entity=e{i} vote=yes"),
                );
                if let Some((holder, depth)) = st.holders[i] {
                    debug_assert_eq!(holder as usize, s);
                    st.holders[i] = Some((holder, depth + 1));
                }
            }
            A::Decide { session: s } => {
                let sid = self.sid(s);
                let slots = &st.sessions[s].slots;
                let yes: Vec<usize> = (0..self.devices)
                    .filter(|&i| slots[i] == Slot::Yes)
                    .collect();
                let declined = slots.iter().filter(|slot| slot.declined()).count();
                let contended = slots.iter().filter(|&&slot| slot == Slot::NoBusy).count();
                journal.record(
                    self.coord(s),
                    EventKind::Mark,
                    format!(
                        "session={sid} yes={} declined={declined} contended={contended}",
                        yes.len()
                    ),
                );
                let decision =
                    fsm::decide(self.constraint, &yes, self.devices, contended > 0, false);
                st.sessions[s].satisfied = decision.satisfied;
                for &i in &decision.commit {
                    st.sessions[s].slots[i] = Slot::CommitPending { retried: false };
                }
                for &i in &decision.abort {
                    st.sessions[s].slots[i] = Slot::AbortPending;
                }
                for slot in &mut st.sessions[s].slots {
                    if slot.declined() {
                        *slot = Slot::CleanupPending;
                    }
                }
                st.sessions[s].phase = SessionPhase::Finishing;
            }
            A::DeliverCommit {
                session: s,
                device: i,
            } => {
                let sid = self.sid(s);
                if self.inject == Some(NegotiationInject::LockLeak) && !st.injected {
                    // The buggy device applies the change but journals
                    // nothing, keeps the lock, and corrupts its session
                    // bookkeeping so the stale sweep misses it too.
                    st.injected = true;
                    st.leaked = Some((s as u8, i as u8));
                    st.sessions[s].slots[i] = Slot::CommitLeaked;
                } else {
                    if self.inject == Some(NegotiationInject::DoubleCommit) && !st.injected {
                        // A change applied under a session that holds no
                        // lock on the entity — the classic double-book.
                        st.injected = true;
                        journal.record(
                            i,
                            EventKind::Change,
                            format!("session={} entity=e{i} applied=true", self.ghost_sid(s)),
                        );
                    }
                    journal.record(
                        i,
                        EventKind::Change,
                        format!("session={sid} entity=e{i} applied=true"),
                    );
                    Self::release_one(&mut st, i, s);
                    st.sessions[s].slots[i] = Slot::Committed;
                }
            }
            A::DropCommit {
                session: s,
                device: i,
            } => {
                st.loss_left -= 1;
                match st.sessions[s].slots[i] {
                    Slot::CommitPending { retried: false } => {
                        st.sessions[s].slots[i] = Slot::CommitPending { retried: true };
                    }
                    _ => {
                        // Retry exhausted: the coordinator gives up on
                        // this participant and journals the abort.
                        journal.record(
                            self.coord(s),
                            EventKind::Abort,
                            format!(
                                "session={} user={} reason=commit-failed",
                                self.sid(s),
                                i + 1
                            ),
                        );
                        st.sessions[s].slots[i] = Slot::CommitFailed;
                    }
                }
            }
            A::DuplicateCommit {
                session: s,
                device: i,
            } => {
                st.dup_left -= 1;
                st.dups_used = true;
                journal.record(
                    i,
                    EventKind::Change,
                    format!("session={} entity=e{i} applied=true", self.sid(s)),
                );
                Self::release_one(&mut st, i, s);
            }
            A::DeliverAbort {
                session: s,
                device: i,
            } => {
                let sid = self.sid(s);
                let reason = if st.sessions[s].satisfied {
                    "xor-overflow"
                } else {
                    "constraint-failed"
                };
                journal.record(
                    self.coord(s),
                    EventKind::Abort,
                    format!("session={sid} user={} reason={reason}", i + 1),
                );
                journal.record(
                    i,
                    EventKind::Abort,
                    format!("session={sid} entity=e{i} reason=coordinator-abort"),
                );
                Self::release_one(&mut st, i, s);
                st.sessions[s].slots[i] = Slot::Aborted;
            }
            A::DropAbort {
                session: s,
                device: i,
            } => {
                st.loss_left -= 1;
                let reason = if st.sessions[s].satisfied {
                    "xor-overflow"
                } else {
                    "constraint-failed"
                };
                // The coordinator journals its abort decision whether or
                // not the RPC lands; the participant's lock waits for
                // the stale-session sweep.
                journal.record(
                    self.coord(s),
                    EventKind::Abort,
                    format!("session={} user={} reason={reason}", self.sid(s), i + 1),
                );
                st.sessions[s].slots[i] = Slot::AbortDropped;
            }
            A::DeliverCleanup {
                session: s,
                device: i,
            } => {
                let sid = self.sid(s);
                // Best-effort abort to a decliner: legal even when the
                // device never locked (lost request) — release is
                // owner-only and idempotent.
                journal.record(
                    i,
                    EventKind::Abort,
                    format!("session={sid} entity=e{i} reason=coordinator-abort"),
                );
                Self::release_one(&mut st, i, s);
                st.sessions[s].slots[i] = Slot::CleanedUp;
            }
            A::DropCleanup {
                session: s,
                device: i,
            } => {
                st.loss_left -= 1;
                st.sessions[s].slots[i] = Slot::CleanupDropped;
            }
            A::End { session: s } => {
                let sid = self.sid(s);
                let slots = &st.sessions[s].slots;
                let committed = slots
                    .iter()
                    .filter(|&&slot| matches!(slot, Slot::Committed | Slot::CommitLeaked))
                    .count();
                let aborted = slots
                    .iter()
                    .filter(|&&slot| {
                        matches!(
                            slot,
                            Slot::Aborted | Slot::AbortDropped | Slot::CommitFailed
                        )
                    })
                    .count();
                let declined = slots
                    .iter()
                    .filter(|&&slot| matches!(slot, Slot::CleanedUp | Slot::CleanupDropped))
                    .count();
                if committed > 0 {
                    journal.record(
                        self.coord(s),
                        EventKind::Change,
                        format!("session={sid} committed={committed}"),
                    );
                }
                let mut satisfied = fsm::outcome_satisfied(
                    self.constraint,
                    st.sessions[s].satisfied,
                    committed,
                    self.devices,
                );
                let mut reported = committed;
                if self.inject == Some(NegotiationInject::BadArithmetic) && !st.injected && s == 0 {
                    // Off-by-one outcome accounting: claim satisfaction
                    // over one commit fewer than actually happened.
                    st.injected = true;
                    satisfied = true;
                    reported = committed.saturating_sub(1);
                }
                journal.record(
                    self.coord(s),
                    EventKind::SpanEnd,
                    format!(
                        "negotiate session={sid} satisfied={satisfied} committed={reported} \
                         aborted={aborted} declined={declined}"
                    ),
                );
                st.sessions[s].phase = SessionPhase::Done;
            }
            A::Crash { session: s } => {
                st.crash_left -= 1;
                st.sessions[s].phase = SessionPhase::Crashed;
            }
        }
        st
    }

    fn safe_action(
        &self,
        state: &NegotiationState,
        enabled: &[NegotiationAction],
    ) -> Option<usize> {
        use NegotiationAction as A;
        // Starting a session only journals its span: independent of
        // everything, with no prunable alternative.
        if let Some(i) = enabled.iter().position(|a| matches!(a, A::Start { .. })) {
            return Some(i);
        }
        // A coordinator-local step (tally or close) is safe when it is
        // the session's only enabled action — otherwise prioritizing it
        // would prune a same-session duplicate delivery or crash.
        for (idx, action) in enabled.iter().enumerate() {
            if matches!(action, A::Decide { .. } | A::End { .. }) {
                let s = action.session();
                let alone = enabled
                    .iter()
                    .enumerate()
                    .all(|(j, other)| j == idx || other.session() != s);
                if alone {
                    return Some(idx);
                }
            }
        }
        // With every fault budget spent, deliveries have no drop/dup/
        // crash alternatives left; one that is the only enabled action
        // touching its entity commutes with all the rest.
        if state.loss_left == 0 && state.dup_left == 0 && state.crash_left == 0 {
            for (idx, action) in enabled.iter().enumerate() {
                if let Some(entity) = action.entity() {
                    let exclusive = enabled
                        .iter()
                        .enumerate()
                        .all(|(j, other)| j == idx || other.entity() != Some(entity));
                    if exclusive {
                        return Some(idx);
                    }
                }
            }
        }
        None
    }

    fn finalize(&self, state: &NegotiationState, journal: &mut JournalSet) -> NegotiationState {
        // The stale-session sweep: after the run quiesces, every lock
        // still held is journaled and released (release_all semantics),
        // exactly like `DeviceRuntime::sweep_sessions`. The lock hidden
        // by the lock-leak injection is the one exception — that bug
        // corrupted the sweep's bookkeeping too.
        let mut st = state.clone();
        for i in 0..self.devices {
            if let Some((holder, _)) = st.holders[i] {
                if st.leaked == Some((holder, i as u8)) {
                    continue;
                }
                journal.record(
                    i,
                    EventKind::Abort,
                    format!(
                        "session={} entity=e{i} reason=stale-sweep",
                        self.sid(holder as usize)
                    ),
                );
                st.holders[i] = None;
            }
        }
        st
    }

    fn snapshot(
        &self,
        state: &NegotiationState,
        journals: Vec<(String, Vec<JournalEvent>)>,
    ) -> Vec<DeviceState> {
        journals
            .into_iter()
            .enumerate()
            .map(|(i, (device, journal))| {
                let locks = match state.holders[i] {
                    Some((holder, _)) => vec![HeldLock {
                        session: self.sid(holder as usize),
                        entity: format!("e{i}"),
                    }],
                    None => Vec::new(),
                };
                DeviceState {
                    device,
                    journal,
                    locks,
                    links: Vec::new(),
                    waiting: Vec::new(),
                }
            })
            .collect()
    }

    fn strict(&self, state: &NegotiationState) -> bool {
        // Loss is strict-clean (the sweep closes every story), but a
        // duplicate delivery legitimately re-locks or re-commits — the
        // same reason the live audit relaxes on at-least-once networks.
        !state.dups_used
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::explore::{audit_schedule, minimize, Explorer, Verdict};
    use syd_check::Rule;
    use syd_telemetry::Registry;

    fn model(constraint: Constraint) -> NegotiationModel {
        NegotiationModel {
            devices: 2,
            sessions: 1,
            constraint,
            loss_budget: 0,
            dup_budget: 0,
            crash_budget: 0,
            inject: None,
        }
    }

    fn explore(m: &NegotiationModel) -> (Verdict<NegotiationAction>, u64) {
        let registry = Registry::new();
        let mut explorer = Explorer::new(m, 1_000_000, &registry);
        let verdict = explorer.run();
        assert!(!explorer.stats().capped);
        (verdict, explorer.stats().states)
    }

    #[test]
    fn clean_configs_have_no_violations() {
        for constraint in [
            Constraint::And,
            Constraint::AtLeast(1),
            Constraint::Exactly(1),
        ] {
            let (verdict, states) = explore(&model(constraint));
            assert!(states > 1);
            assert!(
                matches!(verdict, Verdict::Clean),
                "{constraint:?}: {verdict:?}"
            );
        }
    }

    #[test]
    fn contending_sessions_stay_clean() {
        let mut m = model(Constraint::AtLeast(1));
        m.sessions = 2;
        let (verdict, _) = explore(&m);
        assert!(matches!(verdict, Verdict::Clean), "{verdict:?}");
    }

    #[test]
    fn faults_within_budget_stay_clean() {
        let mut m = model(Constraint::And);
        m.loss_budget = 1;
        m.crash_budget = 1;
        let (verdict, _) = explore(&m);
        assert!(matches!(verdict, Verdict::Clean), "{verdict:?}");
    }

    #[test]
    fn duplicate_deliveries_are_absorbed() {
        let mut m = model(Constraint::And);
        m.dup_budget = 1;
        let (verdict, _) = explore(&m);
        assert!(matches!(verdict, Verdict::Clean), "{verdict:?}");
    }

    #[test]
    fn injections_yield_minimized_counterexamples() {
        let cases = [
            (NegotiationInject::DoubleCommit, Rule::DoubleBook),
            (NegotiationInject::DoubleLock, Rule::Ordering),
            (NegotiationInject::LockLeak, Rule::LockLeak),
            (NegotiationInject::BadArithmetic, Rule::Constraint),
        ];
        for (inject, rule) in cases {
            let mut m = model(Constraint::And);
            m.inject = Some(inject);
            let (verdict, _) = explore(&m);
            let Verdict::Violation { schedule, report } = verdict else {
                panic!("{inject:?} produced no counterexample");
            };
            assert!(
                report.violations.iter().any(|v| v.rule == rule),
                "{inject:?}: {report}"
            );
            let minimized = minimize(&m, schedule.clone(), rule);
            assert!(minimized.len() <= schedule.len());
            // Closed loop: the minimized schedule still trips the same
            // rule when replayed from scratch.
            let replayed = audit_schedule(&m, &minimized).expect("minimized schedule replays");
            assert!(
                replayed.violations.iter().any(|v| v.rule == rule),
                "{inject:?} minimized: {replayed}"
            );
        }
    }
}
