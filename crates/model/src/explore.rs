//! The explicit-state explorer: depth-first enumeration of every
//! schedule of a [`Model`], with visited-state deduplication, a simple
//! partial-order reduction, and counterexample minimization.
//!
//! # Soundness and its limits
//!
//! The exploration is exhaustive over the model's *abstract states*: two
//! schedules that reach the same abstract state are continued only once.
//! The oracle (`syd_check`) judges the journal a schedule produces, so
//! the abstraction is only sound if the abstract state captures every
//! journal distinction the oracle can observe. The models in this crate
//! are built that way — per-participant protocol slots, lock holders,
//! and fault budgets fully determine which per-session stories exist in
//! the journal — and their unit tests cross-check the claim, but it is a
//! design obligation, not something the explorer can verify. Likewise
//! the checking is *bounded*: a clean verdict covers the configured
//! device/session counts and fault budgets, nothing beyond them.

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};

use syd_check::{audit_states, AuditOptions, AuditReport, DeviceState, Rule};
use syd_telemetry::{Counter, Registry};

use crate::journal::JournalSet;
use syd_telemetry::names;

/// An abstract protocol instance the explorer can enumerate.
///
/// A model is a pure transition system: `actions` lists what can happen
/// in a state, `apply` computes the successor (journaling what the real
/// runtime would journal), and `snapshot` reduces a state to the
/// [`DeviceState`]s that `syd_check::audit_states` judges. Nothing here
/// may read clocks or randomness — determinism is what makes schedules
/// replayable and counterexamples minimizable.
pub trait Model {
    /// Abstract global state. `Hash`/`Eq` define the visited-set
    /// identity, so everything observable must be part of it.
    type State: Clone + Eq + Hash + fmt::Debug;
    /// One atomic step of the system (a delivery, a loss, a decision…).
    type Action: Clone + PartialEq + fmt::Debug + fmt::Display;

    /// Journal names, one per abstract device, in device order.
    fn device_names(&self) -> Vec<String>;

    /// The single initial state.
    fn initial(&self) -> Self::State;

    /// Every action enabled in `state`, in a deterministic order. An
    /// empty vector marks a terminal state, which the explorer audits.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// The successor of `state` under `action`, recording what the real
    /// runtime journals for that step.
    fn apply(
        &self,
        state: &Self::State,
        action: &Self::Action,
        journal: &mut JournalSet,
    ) -> Self::State;

    /// Partial-order reduction hook: the index of one enabled action
    /// that commutes with every other enabled action (and has no pruned
    /// alternative such as a droppable delivery), or `None` to branch on
    /// all of them. When `Some(i)` is returned the explorer follows only
    /// `enabled[i]`, which is sound because any schedule taking another
    /// enabled action first reaches the same states with `enabled[i]`
    /// reordered across it.
    fn safe_action(&self, state: &Self::State, enabled: &[Self::Action]) -> Option<usize> {
        let _ = (state, enabled);
        None
    }

    /// End-of-run settling applied to a terminal state before auditing —
    /// the stale-session sweep in the negotiation model. Returns the
    /// settled state and journals what the sweep journals.
    fn finalize(&self, state: &Self::State, journal: &mut JournalSet) -> Self::State;

    /// Reduces a settled terminal state plus its journals to the device
    /// snapshots the `syd-check` oracle audits.
    fn snapshot(
        &self,
        state: &Self::State,
        journals: Vec<(String, Vec<syd_telemetry::JournalEvent>)>,
    ) -> Vec<DeviceState>;

    /// Whether this run should be audited with strict options. Models
    /// return `false` when the schedule used behaviours that are legal
    /// on an at-least-once network but flagged by the strict checks
    /// (duplicate deliveries re-locking an entity, for instance).
    fn strict(&self, state: &Self::State) -> bool;
}

/// Exploration counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Distinct abstract states visited.
    pub states: u64,
    /// Transitions applied (tree edges; deduplicated states prune
    /// their subtree but still count the edge that reached them).
    pub transitions: u64,
    /// Terminal states audited.
    pub terminals: u64,
    /// True when the state cap stopped the search early — a clean
    /// verdict is then only partial.
    pub capped: bool,
}

/// Outcome of an exploration.
#[derive(Clone, Debug)]
pub enum Verdict<A> {
    /// Every audited terminal state satisfied the oracle.
    Clean,
    /// The first schedule whose terminal state the oracle rejected.
    Violation {
        /// The full (unminimized) schedule that reached the violation.
        schedule: Vec<A>,
        /// The oracle's report for that schedule.
        report: AuditReport,
    },
}

/// Depth-first explorer over one [`Model`].
pub struct Explorer<'m, M: Model> {
    model: &'m M,
    max_states: u64,
    visited: HashSet<u64>,
    stats: Stats,
    states_counter: Counter,
    violations_counter: Counter,
}

impl<'m, M: Model> Explorer<'m, M> {
    /// Builds an explorer. Progress is exported through `registry` as
    /// the `model.states_explored` and `model.violations` counters.
    pub fn new(model: &'m M, max_states: u64, registry: &Registry) -> Explorer<'m, M> {
        Explorer {
            model,
            max_states,
            visited: HashSet::new(),
            stats: Stats::default(),
            states_counter: registry.counter(names::MODEL_STATES_EXPLORED),
            violations_counter: registry.counter(names::MODEL_VIOLATIONS),
        }
    }

    /// Counters gathered so far.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Explores every schedule from the initial state, auditing each
    /// distinct terminal state, and stops at the first violation.
    pub fn run(&mut self) -> Verdict<M::Action> {
        let mut schedule = Vec::new();
        let mut mute = JournalSet::muted();
        match self.dfs(self.model.initial(), &mut schedule, &mut mute) {
            Some((schedule, report)) => {
                self.violations_counter.inc();
                Verdict::Violation { schedule, report }
            }
            None => Verdict::Clean,
        }
    }

    fn dfs(
        &mut self,
        state: M::State,
        schedule: &mut Vec<M::Action>,
        mute: &mut JournalSet,
    ) -> Option<(Vec<M::Action>, AuditReport)> {
        if self.stats.capped || !self.visited.insert(fingerprint(&state)) {
            return None;
        }
        self.stats.states += 1;
        self.states_counter.inc();
        if self.stats.states >= self.max_states {
            self.stats.capped = true;
            return None;
        }
        let enabled = self.model.actions(&state);
        if enabled.is_empty() {
            self.stats.terminals += 1;
            // A schedule the explorer itself recorded must replay; a miss
            // is a checker bug and must abort the run loudly.
            #[allow(clippy::expect_used)]
            let report = audit_schedule(self.model, schedule)
                .expect("schedule recorded during exploration must replay");
            if report.ok() {
                return None;
            }
            return Some((schedule.clone(), report));
        }
        let follow: Vec<usize> = match self.model.safe_action(&state, &enabled) {
            Some(i) => vec![i],
            None => (0..enabled.len()).collect(),
        };
        for i in follow {
            self.stats.transitions += 1;
            let next = self.model.apply(&state, &enabled[i], mute);
            schedule.push(enabled[i].clone());
            let hit = self.dfs(next, schedule, mute);
            schedule.pop();
            if hit.is_some() {
                return hit;
            }
        }
        None
    }
}

/// Replays `schedule` from the initial state with a recording journal
/// set. Returns `None` if some action is not enabled where it appears —
/// which is how minimization candidates are rejected.
pub fn replay_schedule<M: Model>(
    model: &M,
    schedule: &[M::Action],
) -> Option<(M::State, JournalSet)> {
    let mut journal = JournalSet::recording(&model.device_names());
    let mut state = model.initial();
    for action in schedule {
        if !model.actions(&state).contains(action) {
            return None;
        }
        state = model.apply(&state, action, &mut journal);
    }
    Some((state, journal))
}

/// Replays `schedule`, settles the final state, and runs the `syd-check`
/// oracle over the resulting snapshots. `None` if the schedule does not
/// replay.
pub fn audit_schedule<M: Model>(model: &M, schedule: &[M::Action]) -> Option<AuditReport> {
    let (state, mut journal) = replay_schedule(model, schedule)?;
    let settled = model.finalize(&state, &mut journal);
    let opts = if model.strict(&settled) {
        AuditOptions::strict()
    } else {
        AuditOptions::default()
    };
    let snapshots = model.snapshot(&settled, journal.into_journals());
    Some(audit_states(&snapshots, &opts))
}

/// Greedily minimizes a violating schedule: repeatedly drops any single
/// step whose removal leaves a schedule that still replays and still
/// trips `target`, until no single step can be removed. Greedy one-step
/// removal (ddmin with granularity one) is enough here because schedules
/// are short and removals mostly independent.
pub fn minimize<M: Model>(model: &M, mut schedule: Vec<M::Action>, target: Rule) -> Vec<M::Action> {
    let trips = |candidate: &[M::Action]| {
        audit_schedule(model, candidate)
            .is_some_and(|report| report.violations.iter().any(|v| v.rule == target))
    };
    debug_assert!(trips(&schedule), "minimization seed must trip {target}");
    loop {
        let mut improved = false;
        for i in 0..schedule.len() {
            let mut candidate = schedule.clone();
            candidate.remove(i);
            if trips(&candidate) {
                schedule = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return schedule;
        }
    }
}

/// Deterministic 64-bit FNV-1a fingerprint of a hashable state. The
/// standard library's default hasher is randomly seeded per process;
/// this one is stable, so visited-set sizes and exploration order are
/// reproducible run to run.
pub(crate) fn fingerprint<T: Hash>(value: &T) -> u64 {
    let mut hasher = Fnv(0xcbf2_9ce4_8422_2325);
    value.hash(&mut hasher);
    hasher.finish()
}

struct Fnv(u64);

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint(&(1u8, 2u8)), fingerprint(&(1u8, 2u8)));
        assert_ne!(fingerprint(&(1u8, 2u8)), fingerprint(&(2u8, 1u8)));
        // The raw hasher matches the published FNV-1a 64 test vectors,
        // so fingerprints mean the same thing in every run.
        let mut hasher = Fnv(0xcbf2_9ce4_8422_2325);
        hasher.write(b"a");
        assert_eq!(hasher.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
