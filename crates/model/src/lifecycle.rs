//! Abstract model of the §4.2 link lifecycle: one owner device deletes
//! a permanent link that has queued waiters and cross-device halves,
//! driving waiting-link promotion (op. 3) and the cascade delete
//! (op. 4) under bounded message loss.
//!
//! As with the negotiation model, the decisions are not re-implemented:
//! which waiters promote comes from [`lifecycle::promotion_plan`] and
//! which peers the cascade visits from [`lifecycle::cascade_peers`] —
//! the same pure cores `syd_core::links::LinksModule` executes — and
//! the journals use the runtime's `link.promoted` / `link.deleted`
//! records, judged by `syd_check::audit_states`.
//!
//! ## The fixed topology
//!
//! Device 0 owns the root link `link-1` (permanent, correlation
//! `corr:root`) with three tentative waiters queued on it: `link-2`
//! (priority 200, group 1), `link-3` (priority 50, group 1) and
//! `link-4` (priority 100, group 2). Every other device holds the
//! remote half of the root connection (`link-1{d}`, same correlation).
//! Deleting the root must promote group 1 whole (its top priority
//! wins), re-anchor `link-4` onto the first promoted link, and cascade
//! the delete to every peer. Small as it is, this exercises every
//! branch of both pure cores.

use syd_check::{DeviceState, LinkRecord, WaitingRecord};
use syd_core::links::lifecycle;
use syd_core::WaitingEntry;
use syd_telemetry::{EventKind, JournalEvent};
use syd_types::{LinkId, Priority, UserId};

use crate::explore::Model;
use crate::journal::JournalSet;

/// Lifecycle mutations for `--inject`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleInject {
    /// The cascade skips one peer, leaving its half of the connection
    /// behind — `syd_check::Rule::Cascade`.
    SkipCascade,
    /// The root is deleted without promoting or re-anchoring its
    /// waiters — `syd_check::Rule::Waiting`.
    SkipPromotion,
}

/// Model configuration.
#[derive(Clone, Copy, Debug)]
pub struct LifecycleModel {
    /// Total devices; device 0 owns the root link, the rest hold its
    /// remote halves. Must be at least 2.
    pub devices: usize,
    /// How many cascade messages the network may lose.
    pub loss_budget: u8,
    /// Optional planted bug.
    pub inject: Option<LifecycleInject>,
}

/// Progress of one peer's cascade delete.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Cascade {
    /// The root has not been deleted yet.
    NotSent,
    /// Cascade message in flight.
    Pending,
    /// The peer deleted its half.
    Delivered,
    /// The message was lost; the half stays until expiry.
    Dropped,
    /// The buggy cascade never addressed this peer.
    Skipped,
}

/// Abstract global state of the lifecycle system.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LifecycleState {
    root_deleted: bool,
    /// Promotion ran as part of the root delete (false before the
    /// delete, and forever under [`LifecycleInject::SkipPromotion`]).
    promoted: bool,
    /// One slot per peer device (index = device − 1).
    cascades: Vec<Cascade>,
    loss_left: u8,
    loss_used: bool,
}

/// One atomic step of the lifecycle system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LifecycleAction {
    /// Device 0 deletes the root link: waiters promote, the delete is
    /// journaled, and cascade messages go out to every peer.
    DeleteRoot,
    /// A cascade message reaches its peer, which deletes its half.
    DeliverCascade {
        /// Peer device index.
        device: usize,
    },
    /// A cascade message is lost.
    DropCascade {
        /// Peer device index.
        device: usize,
    },
}

impl std::fmt::Display for LifecycleAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            LifecycleAction::DeleteRoot => {
                write!(f, "dev0: delete root link (promote waiters, cascade)")
            }
            LifecycleAction::DeliverCascade { device } => {
                write!(f, "cascade delete delivered to dev{device}")
            }
            LifecycleAction::DropCascade { device } => {
                write!(f, "cascade delete to dev{device} lost")
            }
        }
    }
}

/// The root's correlation id, shared by every device's half.
const CORR_ROOT: &str = "corr:root";

impl LifecycleModel {
    /// The waiting-link queue behind the root, as the runtime would
    /// hold it in its `T_WAIT` table.
    fn waiting_entries() -> Vec<WaitingEntry> {
        vec![
            WaitingEntry {
                link: LinkId::new(2),
                waits_on: LinkId::new(1),
                priority: Priority(200),
                group: 1,
            },
            WaitingEntry {
                link: LinkId::new(3),
                waits_on: LinkId::new(1),
                priority: Priority(50),
                group: 1,
            },
            WaitingEntry {
                link: LinkId::new(4),
                waits_on: LinkId::new(1),
                priority: Priority(100),
                group: 2,
            },
        ]
    }

    /// The remote half's link id on peer device `d`.
    fn peer_link(d: usize) -> u64 {
        10 + d as u64
    }
}

impl Model for LifecycleModel {
    type State = LifecycleState;
    type Action = LifecycleAction;

    fn device_names(&self) -> Vec<String> {
        (0..self.devices).map(|i| format!("dev{i}")).collect()
    }

    fn initial(&self) -> LifecycleState {
        LifecycleState {
            root_deleted: false,
            promoted: false,
            cascades: vec![Cascade::NotSent; self.devices - 1],
            loss_left: self.loss_budget,
            loss_used: false,
        }
    }

    fn actions(&self, state: &LifecycleState) -> Vec<LifecycleAction> {
        let mut out = Vec::new();
        if !state.root_deleted {
            out.push(LifecycleAction::DeleteRoot);
            return out;
        }
        for (slot, cascade) in state.cascades.iter().enumerate() {
            if *cascade == Cascade::Pending {
                let device = slot + 1;
                out.push(LifecycleAction::DeliverCascade { device });
                if state.loss_left > 0 {
                    out.push(LifecycleAction::DropCascade { device });
                }
            }
        }
        out
    }

    fn apply(
        &self,
        state: &LifecycleState,
        action: &LifecycleAction,
        journal: &mut JournalSet,
    ) -> LifecycleState {
        let mut st = state.clone();
        match *action {
            LifecycleAction::DeleteRoot => {
                if self.inject != Some(LifecycleInject::SkipPromotion) {
                    // The model fixes the waiter set; an empty plan is a
                    // checker bug and must abort the run loudly.
                    #[allow(clippy::expect_used)]
                    let plan = lifecycle::promotion_plan(&Self::waiting_entries())
                        .expect("the root always has waiters queued");
                    for entry in &plan.promoted {
                        journal.record(
                            0,
                            EventKind::Promotion,
                            format!(
                                "link.promoted id={} priority={} group={}",
                                entry.link.raw(),
                                entry.priority.0,
                                entry.group
                            ),
                        );
                    }
                    st.promoted = true;
                }
                journal.record(
                    0,
                    EventKind::Info,
                    format!("link.deleted cascade=true corr={CORR_ROOT} id=1"),
                );
                // §4.2 op. 4: fan out to every referenced user not yet
                // visited by the cascade (device 0 is user 1).
                let refs = (1..self.devices).map(|d| UserId::new(d as u64 + 1));
                for user in lifecycle::cascade_peers(refs, &[1]) {
                    let device = user.raw() as usize - 1;
                    let skipped = self.inject == Some(LifecycleInject::SkipCascade)
                        && device == self.devices - 1;
                    st.cascades[device - 1] = if skipped {
                        Cascade::Skipped
                    } else {
                        Cascade::Pending
                    };
                }
                st.root_deleted = true;
            }
            LifecycleAction::DeliverCascade { device } => {
                journal.record(
                    device,
                    EventKind::Info,
                    format!(
                        "link.deleted cascade=true corr={CORR_ROOT} id={}",
                        Self::peer_link(device)
                    ),
                );
                st.cascades[device - 1] = Cascade::Delivered;
            }
            LifecycleAction::DropCascade { device } => {
                st.loss_left -= 1;
                st.loss_used = true;
                st.cascades[device - 1] = Cascade::Dropped;
            }
        }
        st
    }

    fn safe_action(&self, state: &LifecycleState, enabled: &[LifecycleAction]) -> Option<usize> {
        // The root delete is the only initial action; once the loss
        // budget is spent, the remaining deliveries target distinct
        // devices and commute freely.
        if enabled.len() == 1 || state.loss_left == 0 {
            return Some(0);
        }
        None
    }

    fn finalize(&self, state: &LifecycleState, _journal: &mut JournalSet) -> LifecycleState {
        state.clone()
    }

    fn snapshot(
        &self,
        state: &LifecycleState,
        journals: Vec<(String, Vec<JournalEvent>)>,
    ) -> Vec<DeviceState> {
        journals
            .into_iter()
            .enumerate()
            .map(|(i, (device, journal))| {
                let mut links = Vec::new();
                let mut waiting = Vec::new();
                if i == 0 {
                    if !state.root_deleted {
                        links.push(LinkRecord {
                            id: 1,
                            tentative: false,
                            corr: CORR_ROOT.to_owned(),
                        });
                    }
                    for entry in Self::waiting_entries() {
                        let id = entry.link.raw();
                        let promoted = state.promoted && entry.group == 1;
                        links.push(LinkRecord {
                            id,
                            tentative: !promoted,
                            corr: format!("corr:w{id}"),
                        });
                    }
                    if state.promoted {
                        // Group 2 stays queued, re-anchored onto the
                        // first promoted link.
                        waiting.push(WaitingRecord {
                            link: 4,
                            waits_on: 2,
                        });
                    } else {
                        for entry in Self::waiting_entries() {
                            waiting.push(WaitingRecord {
                                link: entry.link.raw(),
                                waits_on: entry.waits_on.raw(),
                            });
                        }
                    }
                } else if state.cascades[i - 1] != Cascade::Delivered {
                    links.push(LinkRecord {
                        id: Self::peer_link(i),
                        tentative: false,
                        corr: CORR_ROOT.to_owned(),
                    });
                }
                DeviceState {
                    device,
                    journal,
                    locks: Vec::new(),
                    links,
                    waiting,
                }
            })
            .collect()
    }

    fn strict(&self, state: &LifecycleState) -> bool {
        // A lost cascade legitimately leaves a remote half behind until
        // expiry, which is exactly what the strict cascade check flags.
        !state.loss_used
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::explore::{audit_schedule, minimize, Explorer, Verdict};
    use syd_check::Rule;
    use syd_telemetry::Registry;

    fn model(inject: Option<LifecycleInject>, loss: u8) -> LifecycleModel {
        LifecycleModel {
            devices: 3,
            loss_budget: loss,
            inject,
        }
    }

    fn explore(m: &LifecycleModel) -> Verdict<LifecycleAction> {
        let registry = Registry::new();
        let mut explorer = Explorer::new(m, 100_000, &registry);
        let verdict = explorer.run();
        assert!(!explorer.stats().capped);
        verdict
    }

    #[test]
    fn clean_lifecycle_is_clean_strict_and_lossy() {
        for loss in [0, 1] {
            let verdict = explore(&model(None, loss));
            assert!(
                matches!(verdict, Verdict::Clean),
                "loss={loss}: {verdict:?}"
            );
        }
    }

    #[test]
    fn skip_cascade_trips_the_cascade_rule() {
        let m = model(Some(LifecycleInject::SkipCascade), 0);
        let Verdict::Violation { schedule, report } = explore(&m) else {
            panic!("skip-cascade produced no counterexample");
        };
        assert!(
            report.violations.iter().any(|v| v.rule == Rule::Cascade),
            "{report}"
        );
        let minimized = minimize(&m, schedule, Rule::Cascade);
        let replayed = audit_schedule(&m, &minimized).unwrap();
        assert!(replayed.violations.iter().any(|v| v.rule == Rule::Cascade));
    }

    #[test]
    fn skip_promotion_trips_the_waiting_rule() {
        let m = model(Some(LifecycleInject::SkipPromotion), 0);
        let Verdict::Violation { schedule, report } = explore(&m) else {
            panic!("skip-promotion produced no counterexample");
        };
        assert!(
            report.violations.iter().any(|v| v.rule == Rule::Waiting),
            "{report}"
        );
        // Minimization cannot drop the root delete, so the schedule
        // stays a valid witness.
        let minimized = minimize(&m, schedule, Rule::Waiting);
        assert!(!minimized.is_empty());
    }
}
