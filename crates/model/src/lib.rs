//! `syd-model` — an exhaustive explicit-state model checker for the SyD
//! negotiation (§4.3) and link-lifecycle (§4.2) protocols.
//!
//! The checker enumerates **every schedule** of an abstract SyD system —
//! `n` devices, concurrent negotiation sessions, link promotion and
//! cascade deletes — under a bounded fault budget: `k` lost messages,
//! `k` duplicated deliveries, and optionally a crashing coordinator.
//! Each distinct terminal state is judged by the *same oracle the
//! runtime is judged by*: the schedule's journals and device snapshots
//! are fed to `syd_check::audit_states`, so a protocol state the
//! invariant auditor would flag in production is a violation here too.
//!
//! Three design rules keep the model honest:
//!
//! 1. **Shared transition cores.** The models never re-implement
//!    protocol decisions; they call the pure functions the runtime
//!    itself executes (`syd_core::negotiate::fsm`,
//!    `syd_core::links::lifecycle`). If the implementation changes
//!    semantics, the model changes with it.
//! 2. **Shared event language.** Every step journals the exact
//!    `key=value` records the runtime journals, so `syd-check` parses
//!    the model's histories with the same code paths.
//! 3. **Closed loop on counterexamples.** A violating schedule is
//!    minimized and replayed into a fresh `JournalEvent` stream, which
//!    must trip the *same* `syd_check::Rule` — the counterexample is a
//!    real input to the production auditor, not just a model artifact.
//!
//! The `--inject` mutations plant known protocol bugs (double commit,
//! lock leak, skipped cascade, …) and demand a counterexample, which
//! regression-tests the oracle itself: a checker that cannot see a
//! planted double-book is not checking anything.
//!
//! Verification is **bounded**: a clean verdict covers the configured
//! devices, sessions, and fault budgets only. See
//! [`explore`] for the soundness obligations of the state abstraction.

pub mod explore;
pub mod journal;
pub mod lifecycle;
pub mod negotiation;

pub use explore::{audit_schedule, minimize, replay_schedule, Explorer, Model, Stats, Verdict};
pub use journal::JournalSet;
pub use lifecycle::{LifecycleAction, LifecycleInject, LifecycleModel, LifecycleState};
pub use negotiation::{NegotiationAction, NegotiationInject, NegotiationModel, NegotiationState};
