//! `syd-model` CLI: exhaustive model checking of the SyD negotiation
//! and link-lifecycle protocols against the `syd-check` oracle.
//!
//! ```text
//! cargo run -p syd-model -- --devices 3 --faults 1 --constraint or:2
//! cargo run -p syd-model -- --inject double-commit
//! cargo run -p syd-model -- --inject skip-cascade
//! ```
//!
//! Exit status 0 means the expectation held: a run without `--inject`
//! found no violation, a run with `--inject` found (and minimized) a
//! counterexample tripping the injected bug's rule. Anything else
//! exits 2.

// Model-checker CLI: a broken invocation or replay must abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;

use syd_check::{audit_journals, AuditOptions, Rule};
use syd_core::Constraint;
use syd_model::{
    audit_schedule, minimize, replay_schedule, Explorer, LifecycleInject, LifecycleModel, Model,
    NegotiationInject, NegotiationModel, Verdict,
};
use syd_telemetry::names;
use syd_telemetry::Registry;

/// Which protocol to model-check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scenario {
    Negotiate,
    Lifecycle,
}

/// Parsed `--inject` argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Inject {
    Negotiation(NegotiationInject),
    Lifecycle(LifecycleInject),
}

impl Inject {
    fn parse(text: &str) -> Option<Inject> {
        Some(match text {
            "double-commit" => Inject::Negotiation(NegotiationInject::DoubleCommit),
            "double-lock" => Inject::Negotiation(NegotiationInject::DoubleLock),
            "lock-leak" => Inject::Negotiation(NegotiationInject::LockLeak),
            "bad-arithmetic" => Inject::Negotiation(NegotiationInject::BadArithmetic),
            "skip-cascade" => Inject::Lifecycle(LifecycleInject::SkipCascade),
            "skip-promotion" => Inject::Lifecycle(LifecycleInject::SkipPromotion),
            _ => return None,
        })
    }

    /// The `syd_check` rule the injected bug must trip.
    fn expected_rule(self) -> Rule {
        match self {
            Inject::Negotiation(NegotiationInject::DoubleCommit) => Rule::DoubleBook,
            Inject::Negotiation(NegotiationInject::DoubleLock) => Rule::Ordering,
            Inject::Negotiation(NegotiationInject::LockLeak) => Rule::LockLeak,
            Inject::Negotiation(NegotiationInject::BadArithmetic) => Rule::Constraint,
            Inject::Lifecycle(LifecycleInject::SkipCascade) => Rule::Cascade,
            Inject::Lifecycle(LifecycleInject::SkipPromotion) => Rule::Waiting,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Inject::Negotiation(NegotiationInject::DoubleCommit) => "double-commit",
            Inject::Negotiation(NegotiationInject::DoubleLock) => "double-lock",
            Inject::Negotiation(NegotiationInject::LockLeak) => "lock-leak",
            Inject::Negotiation(NegotiationInject::BadArithmetic) => "bad-arithmetic",
            Inject::Lifecycle(LifecycleInject::SkipCascade) => "skip-cascade",
            Inject::Lifecycle(LifecycleInject::SkipPromotion) => "skip-promotion",
        }
    }
}

/// Parsed command line.
#[derive(Clone, Copy, Debug)]
struct Config {
    scenario: Scenario,
    devices: usize,
    sessions: usize,
    constraint: Constraint,
    faults: u8,
    dups: u8,
    crash: bool,
    inject: Option<Inject>,
    max_states: u64,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut scenario: Option<Scenario> = None;
    let mut devices = 3usize;
    let mut sessions = 2usize;
    let mut constraint = Constraint::And;
    let mut faults = 1u8;
    let mut dups = 0u8;
    let mut crash = false;
    let mut inject: Option<Inject> = None;
    let mut max_states = 2_000_000u64;

    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scenario" => {
                scenario = Some(match value("--scenario")?.as_str() {
                    "negotiate" => Scenario::Negotiate,
                    "lifecycle" => Scenario::Lifecycle,
                    other => return Err(format!("unknown scenario `{other}`")),
                });
            }
            "--devices" => {
                devices = value("--devices")?
                    .parse()
                    .map_err(|_| "--devices expects a number".to_owned())?;
            }
            "--sessions" => {
                sessions = value("--sessions")?
                    .parse()
                    .map_err(|_| "--sessions expects a number".to_owned())?;
            }
            "--constraint" => {
                constraint = parse_constraint(&value("--constraint")?)?;
            }
            "--faults" => {
                faults = value("--faults")?
                    .parse()
                    .map_err(|_| "--faults expects a number".to_owned())?;
            }
            "--dups" => {
                dups = value("--dups")?
                    .parse()
                    .map_err(|_| "--dups expects a number".to_owned())?;
            }
            "--crash" => crash = true,
            "--inject" => {
                let text = value("--inject")?;
                inject = Some(
                    Inject::parse(&text).ok_or_else(|| format!("unknown injection `{text}`"))?,
                );
            }
            "--max-states" => {
                max_states = value("--max-states")?
                    .parse()
                    .map_err(|_| "--max-states expects a number".to_owned())?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    // Infer the scenario from the injection when not given explicitly.
    let scenario = scenario.unwrap_or(match inject {
        Some(Inject::Lifecycle(_)) => Scenario::Lifecycle,
        _ => Scenario::Negotiate,
    });
    match (scenario, inject) {
        (Scenario::Negotiate, Some(Inject::Lifecycle(i))) => {
            return Err(format!(
                "injection `{}` belongs to --scenario lifecycle",
                Inject::Lifecycle(i).name()
            ));
        }
        (Scenario::Lifecycle, Some(Inject::Negotiation(i))) => {
            return Err(format!(
                "injection `{}` belongs to --scenario negotiate",
                Inject::Negotiation(i).name()
            ));
        }
        _ => {}
    }
    if !(2..=8).contains(&devices) {
        return Err("--devices must be between 2 and 8".to_owned());
    }
    if !(1..=16).contains(&sessions) {
        return Err("--sessions must be between 1 and 16".to_owned());
    }
    Ok(Config {
        scenario,
        devices,
        sessions,
        constraint,
        faults,
        dups,
        crash,
        inject,
        max_states,
    })
}

fn parse_constraint(text: &str) -> Result<Constraint, String> {
    if text == "and" {
        return Ok(Constraint::And);
    }
    if let Some((kind, k)) = text.split_once(':') {
        let k: u32 = k
            .parse()
            .map_err(|_| format!("constraint `{text}` needs a numeric k"))?;
        return match kind {
            "or" => Ok(Constraint::AtLeast(k)),
            "xor" => Ok(Constraint::Exactly(k)),
            _ => Err(format!("unknown constraint `{text}`")),
        };
    }
    Err(format!(
        "unknown constraint `{text}` (use and, or:k, xor:k)"
    ))
}

fn usage() {
    eprintln!(
        "Usage: syd-model [options]

Exhaustively explores every schedule of an abstract SyD system and
judges each terminal state with the syd-check invariant oracle.

  --scenario negotiate|lifecycle  protocol to check (default negotiate,
                                  inferred from --inject when given)
  --devices N                     devices = participants (default 3)
  --sessions N                    concurrent negotiations (default 2)
  --constraint and|or:K|xor:K     session constraint (default and)
  --faults N                      message-loss budget (default 1)
  --dups N                        duplicate-delivery budget (default 0)
  --crash                         allow one coordinator crash
  --inject KIND                   plant a bug the checker must catch:
                                  double-commit double-lock lock-leak
                                  bad-arithmetic skip-cascade skip-promotion
  --max-states N                  visited-state cap (default 2000000)"
    );
}

/// Runs one exploration and reports; returns the process exit status.
fn run_check<M: Model>(model: &M, banner: &str, inject: Option<Inject>, max_states: u64) -> u8 {
    let registry = Registry::new();
    let mut explorer = Explorer::new(model, max_states, &registry);
    let verdict = explorer.run();
    let stats = explorer.stats();
    println!("syd-model: {banner}");
    println!(
        "explored {} states, {} transitions, {} terminal states{}",
        stats.states,
        stats.transitions,
        stats.terminals,
        if stats.capped {
            " — STATE CAP HIT, verdict is partial"
        } else {
            ""
        }
    );
    println!(
        "telemetry: model.states_explored={} model.violations={}",
        registry.counter(names::MODEL_STATES_EXPLORED).get(),
        registry.counter(names::MODEL_VIOLATIONS).get()
    );

    match verdict {
        Verdict::Clean => {
            if let Some(inject) = inject {
                println!(
                    "result: FAIL — injection `{}` produced no counterexample for rule `{}`",
                    inject.name(),
                    inject.expected_rule()
                );
                return 2;
            }
            println!("result: clean — no reachable schedule violates the audited invariants");
            u8::from(stats.capped) * 2
        }
        Verdict::Violation { schedule, report } => {
            let target = match inject {
                Some(inject) => inject.expected_rule(),
                None => {
                    report
                        .violations
                        .first()
                        .expect("violating report has a violation")
                        .rule
                }
            };
            let full = schedule.len();
            let minimized = minimize(model, schedule, target);
            println!();
            println!(
                "counterexample ({} steps, minimized from {full}):",
                minimized.len()
            );
            for (i, step) in minimized.iter().enumerate() {
                println!("  {:>2}. {step}", i + 1);
            }

            // Closed loop, part 1: replay the minimized schedule from
            // scratch and let the full oracle judge it.
            let replayed =
                audit_schedule(model, &minimized).expect("minimized schedule must replay");
            println!();
            println!("oracle verdict (syd_check::audit_states over the replayed schedule):");
            print!("{replayed}");
            let tripped = replayed.violations.iter().any(|v| v.rule == target);

            // Closed loop, part 2: re-emit the schedule as a plain
            // journal stream and run the journal-only auditor over it —
            // the counterexample is a real syd-check input.
            let (state, mut journal) =
                replay_schedule(model, &minimized).expect("minimized schedule must replay");
            let settled = model.finalize(&state, &mut journal);
            let opts = if model.strict(&settled) {
                AuditOptions::strict()
            } else {
                AuditOptions::default()
            };
            let journal_report = audit_journals(&journal.into_journals(), &opts);
            if journal_report.violations.iter().any(|v| v.rule == target) {
                println!(
                    "closed loop: re-emitted journal stream trips rule `{target}` in \
                     syd_check::audit_journals"
                );
            } else {
                println!(
                    "closed loop: rule `{target}` needs device state to witness — flagged by \
                     syd_check::audit_states above"
                );
            }

            match inject {
                Some(inject) if tripped => {
                    println!(
                        "result: injection `{}` caught as rule `{target}`",
                        inject.name()
                    );
                    0
                }
                Some(inject) => {
                    println!(
                        "result: FAIL — counterexample does not trip `{target}` for `{}`",
                        inject.name()
                    );
                    2
                }
                None => {
                    println!("result: VIOLATION — see counterexample above");
                    2
                }
            }
        }
    }
}

fn main() -> ExitCode {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("syd-model: {message}");
                eprintln!();
            }
            usage();
            return ExitCode::from(2);
        }
    };
    let code = match config.scenario {
        Scenario::Negotiate => {
            let inject = match config.inject {
                Some(Inject::Negotiation(i)) => Some(i),
                _ => None,
            };
            let model = NegotiationModel {
                devices: config.devices,
                sessions: config.sessions,
                constraint: config.constraint,
                loss_budget: config.faults,
                dup_budget: config.dups,
                crash_budget: u8::from(config.crash),
                inject,
            };
            let banner = format!(
                "scenario=negotiate devices={} sessions={} constraint={:?} faults={} dups={} \
                 crash={} inject={}",
                config.devices,
                config.sessions,
                config.constraint,
                config.faults,
                config.dups,
                config.crash,
                config.inject.map_or("none", Inject::name)
            );
            run_check(&model, &banner, config.inject, config.max_states)
        }
        Scenario::Lifecycle => {
            let inject = match config.inject {
                Some(Inject::Lifecycle(i)) => Some(i),
                _ => None,
            };
            let model = LifecycleModel {
                devices: config.devices,
                loss_budget: config.faults,
                inject,
            };
            let banner = format!(
                "scenario=lifecycle devices={} faults={} inject={}",
                config.devices,
                config.faults,
                config.inject.map_or("none", Inject::name)
            );
            run_check(&model, &banner, config.inject, config.max_states)
        }
    };
    ExitCode::from(code)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Config, String> {
        parse_args(line.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn defaults_match_the_acceptance_configuration() {
        let config = parse("").unwrap();
        assert_eq!(config.scenario, Scenario::Negotiate);
        assert_eq!(config.devices, 3);
        assert_eq!(config.sessions, 2);
        assert_eq!(config.constraint, Constraint::And);
        assert_eq!(config.faults, 1);
        assert_eq!(config.dups, 0);
        assert!(!config.crash);
        assert!(config.inject.is_none());
    }

    #[test]
    fn constraints_parse_the_paper_spellings() {
        assert_eq!(
            parse("--constraint or:2").unwrap().constraint,
            Constraint::AtLeast(2)
        );
        assert_eq!(
            parse("--constraint xor:1").unwrap().constraint,
            Constraint::Exactly(1)
        );
        assert!(parse("--constraint nand").is_err());
    }

    #[test]
    fn injections_infer_their_scenario() {
        let config = parse("--inject skip-cascade").unwrap();
        assert_eq!(config.scenario, Scenario::Lifecycle);
        assert_eq!(config.inject.unwrap().expected_rule(), Rule::Cascade);
        let config = parse("--inject double-commit").unwrap();
        assert_eq!(config.scenario, Scenario::Negotiate);
        // Mismatched pairs are rejected.
        assert!(parse("--scenario lifecycle --inject double-commit").is_err());
    }

    #[test]
    fn every_injection_maps_to_a_distinct_rule() {
        let kinds = [
            "double-commit",
            "double-lock",
            "lock-leak",
            "bad-arithmetic",
            "skip-cascade",
            "skip-promotion",
        ];
        let rules: Vec<Rule> = kinds
            .iter()
            .map(|k| Inject::parse(k).unwrap().expected_rule())
            .collect();
        for (i, a) in rules.iter().enumerate() {
            for b in &rules[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
