//! Synthetic per-device journals built while replaying a model schedule.
//!
//! The model checker judges terminal states with `syd-check`, and
//! `syd-check` reads [`JournalEvent`] streams — so every transition that
//! the real runtime would journal is recorded here in exactly the same
//! `key=value` detail format. A [`JournalSet`] holds one journal per
//! abstract device plus a global logical clock, so a schedule always
//! produces a byte-identical event stream (sequence numbers and
//! timestamps are derived from the schedule, never from wall time).

use syd_telemetry::{EventKind, JournalEvent};

/// One growable journal per abstract device.
///
/// During state-space exploration the checker only needs successor
/// *states*, so [`JournalSet::muted`] gives a sink that discards records;
/// when a terminal state is audited (or a counterexample re-emitted) the
/// schedule is replayed once more against a recording set.
#[derive(Clone, Debug)]
pub struct JournalSet {
    devices: Vec<(String, Vec<JournalEvent>)>,
    /// Logical clock shared by every device, so the merged timeline of a
    /// schedule is totally ordered and deterministic.
    clock: u64,
    muted: bool,
}

impl JournalSet {
    /// A recording set with one empty journal per device name.
    pub fn recording(names: &[String]) -> JournalSet {
        JournalSet {
            devices: names
                .iter()
                .map(|name| (name.clone(), Vec::new()))
                .collect(),
            clock: 0,
            muted: false,
        }
    }

    /// A sink that ignores every record — used while exploring, where
    /// only the abstract states matter.
    pub fn muted() -> JournalSet {
        JournalSet {
            devices: Vec::new(),
            clock: 0,
            muted: true,
        }
    }

    /// Appends one event to `device`'s journal, stamping the per-device
    /// sequence number and the global logical clock.
    pub fn record(&mut self, device: usize, kind: EventKind, detail: String) {
        if self.muted {
            return;
        }
        self.clock += 1;
        let journal = &mut self.devices[device].1;
        journal.push(JournalEvent {
            seq: journal.len() as u64,
            at_micros: self.clock,
            trace: 0,
            span: 0,
            kind,
            detail,
        });
    }

    /// The recorded journals, in device order.
    pub fn into_journals(self) -> Vec<(String, Vec<JournalEvent>)> {
        self.devices
    }

    /// Borrowed view of the recorded journals.
    pub fn journals(&self) -> &[(String, Vec<JournalEvent>)] {
        &self.devices
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn records_are_sequenced_and_clocked() {
        let names = vec!["dev0".to_owned(), "dev1".to_owned()];
        let mut set = JournalSet::recording(&names);
        set.record(1, EventKind::Info, "a".to_owned());
        set.record(0, EventKind::Info, "b".to_owned());
        set.record(1, EventKind::Info, "c".to_owned());
        let journals = set.into_journals();
        assert_eq!(journals[0].1.len(), 1);
        assert_eq!(journals[1].1.len(), 2);
        // Per-device sequence numbers start at 0 (the replay treats a
        // nonzero first seq as ring truncation).
        assert_eq!(journals[1].1[0].seq, 0);
        assert_eq!(journals[1].1[1].seq, 1);
        // The logical clock is global and strictly increasing.
        assert_eq!(journals[1].1[0].at_micros, 1);
        assert_eq!(journals[0].1[0].at_micros, 2);
        assert_eq!(journals[1].1[1].at_micros, 3);
    }

    #[test]
    fn muted_set_discards_everything() {
        let mut set = JournalSet::muted();
        set.record(7, EventKind::Lock, "ignored".to_owned());
        assert!(set.journals().is_empty());
    }
}
