//! Client-side RPC plumbing: call options and pending-call futures.

use std::time::Duration;

use crossbeam_channel::Receiver;
use syd_types::{RequestId, SydError, SydResult, Value};

/// Per-call knobs for [`crate::Node::call_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallOptions {
    /// How long to wait for the response before giving up.
    pub timeout: Duration,
    /// How many times to re-send after a *transient* failure (timeout,
    /// lock timeout, disconnection). Retries use fresh request ids; the
    /// callee may observe a retried request twice, so retried methods
    /// should be idempotent — all SyD kernel internals are.
    pub retries: u32,
}

impl CallOptions {
    /// Default: 2 s deadline, no retries.
    pub const fn new() -> Self {
        Self {
            timeout: Duration::from_secs(2),
            retries: 0,
        }
    }

    /// Builder: replaces the timeout.
    pub const fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Builder: replaces the retry budget.
    pub const fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }
}

impl Default for CallOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// An in-flight call whose response can be awaited later — the engine's
/// group invocation sends every request first, then collects, so a group
/// call takes one round-trip latency rather than `n` (§3.1 "execute a
/// service on a group of objects").
///
/// Dropping a `PendingCall` (after [`PendingCall::wait`], or without
/// ever waiting) runs its cleanup hook, which removes the node's
/// pending-table entry and cancels any armed deadline timer — an
/// abandoned or timed-out call cannot leak table slots.
pub struct PendingCall {
    pub(crate) id: RequestId,
    pub(crate) rx: Receiver<SydResult<Value>>,
    /// Installed by the node: removes the pending-table entry (and any
    /// timer-wheel deadline) when this call is dropped.
    pub(crate) cleanup: Option<Box<dyn FnOnce() + Send>>,
    /// Open `rpc.client` span covering the call from send to response
    /// (or abandonment — the handle records on drop either way).
    pub(crate) span: Option<syd_trace::FinishSpan>,
}

impl std::fmt::Debug for PendingCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingCall").field("id", &self.id).finish()
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        if let Some(cleanup) = self.cleanup.take() {
            cleanup();
        }
    }
}

impl PendingCall {
    /// The request id correlating this call.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Waits up to `timeout` for the response.
    pub fn wait(mut self, timeout: Duration) -> SydResult<Value> {
        let result = match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(SydError::Timeout(self.id)),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(SydError::Shutdown),
        };
        if let Some(mut span) = self.span.take() {
            span.attr("ok", u64::from(result.is_ok()));
            span.finish();
        }
        result
    }

    /// Returns the response if it has already arrived.
    pub fn poll(&self) -> Option<SydResult<Value>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn options_builders() {
        let opts = CallOptions::new()
            .with_timeout(Duration::from_millis(10))
            .with_retries(3);
        assert_eq!(opts.timeout, Duration::from_millis(10));
        assert_eq!(opts.retries, 3);
        assert_eq!(CallOptions::default(), CallOptions::new());
    }

    #[test]
    fn pending_call_timeout_names_request() {
        let (_tx, rx) = crossbeam_channel::bounded(1);
        let call = PendingCall {
            id: RequestId::new(9),
            rx,
            cleanup: None,
            span: None,
        };
        assert_eq!(
            call.wait(Duration::from_millis(10)).unwrap_err(),
            SydError::Timeout(RequestId::new(9))
        );
    }

    #[test]
    fn pending_call_poll() {
        let (tx, rx) = crossbeam_channel::bounded(1);
        let call = PendingCall {
            id: RequestId::new(1),
            rx,
            cleanup: None,
            span: None,
        };
        assert!(call.poll().is_none());
        tx.send(Ok(Value::I64(5))).unwrap();
        assert_eq!(call.poll().unwrap().unwrap(), Value::I64(5));
    }

    #[test]
    fn cleanup_runs_exactly_once_on_drop() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        let (_tx, rx) = crossbeam_channel::bounded(1);
        let call = PendingCall {
            id: RequestId::new(2),
            rx,
            cleanup: Some(Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            })),
            span: None,
        };
        let _ = call.wait(Duration::from_millis(5));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
