//! Grow-on-demand worker pool for request dispatch.
//!
//! SyD request handlers routinely perform *nested* remote calls: deleting a
//! link cascades `deleteLink` invocations to peer devices (§4.2 op. 4), and
//! a negotiation triggered inside a handler fans out to every linked entity.
//! If a device served requests on one thread, a call cycle (A serves a
//! request, calls B, B calls back into A) would deadlock. The pool therefore
//! grows a new worker whenever a job arrives and no worker is idle, up to a
//! generous cap, and idle workers retire after a keep-alive — the classic
//! "cached thread pool" shape.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;
use syd_telemetry::trace;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolInner {
    tx: Mutex<Option<Sender<Job>>>,
    rx: Receiver<Job>,
    idle: AtomicUsize,
    live: AtomicUsize,
    peak_live: AtomicUsize,
    executed: AtomicUsize,
    max_workers: usize,
    keepalive: Duration,
    name: String,
    shutdown: AtomicBool,
    /// `executed` as of the previous [`WorkerPool::kick`]; a kick that
    /// sees no progress and no idle worker grows the pool past the cap.
    last_kick_executed: AtomicUsize,
}

/// A dynamically sized thread pool. Cloning shares the pool.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl WorkerPool {
    /// Creates a pool that may grow to `max_workers` threads. Workers idle
    /// for longer than `keepalive` retire (one worker is always retained
    /// while the pool is live).
    pub fn new(name: impl Into<String>, max_workers: usize, keepalive: Duration) -> Self {
        assert!(max_workers >= 1, "pool needs at least one worker");
        let (tx, rx) = crossbeam_channel::unbounded();
        WorkerPool {
            inner: Arc::new(PoolInner {
                tx: Mutex::new(Some(tx)),
                rx,
                idle: AtomicUsize::new(0),
                live: AtomicUsize::new(0),
                peak_live: AtomicUsize::new(0),
                executed: AtomicUsize::new(0),
                max_workers,
                keepalive,
                name: name.into(),
                shutdown: AtomicBool::new(false),
                last_kick_executed: AtomicUsize::new(0),
            }),
        }
    }

    /// Pool sized for a SyD device: enough headroom for deep cascades.
    pub fn for_device(name: impl Into<String>) -> Self {
        Self::new(name, 256, Duration::from_millis(500))
    }

    /// Pool sized for a shared fleet runtime: a small fixed budget that
    /// many devices multiplex over. The cap is soft — see
    /// [`WorkerPool::kick`] — so nested call cycles between devices on
    /// the *same* pool cannot deadlock it.
    pub fn for_runtime(name: impl Into<String>) -> Self {
        Self::new(name, 48, Duration::from_millis(500))
    }

    /// Submits a job. Returns `false` if the pool is shut down.
    ///
    /// The submitter's trace context (if any) is captured here and
    /// re-entered around the job on the worker thread, so work handed
    /// across the pool boundary stays attributed to its trace.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return false;
        }
        let ctx = trace::current();
        let job = move || {
            let _span = ctx.map(trace::enter);
            job();
        };
        {
            let guard = inner.tx.lock();
            let Some(tx) = guard.as_ref() else {
                return false;
            };
            if tx.send(Box::new(job)).is_err() {
                return false;
            }
        }
        // Grow if nobody is idle to pick the job up. The check is racy in
        // the benign direction: at worst we spawn one extra worker (capped),
        // never strand a job — a busy worker will still drain the queue.
        if inner.idle.load(Ordering::Acquire) == 0 {
            self.try_spawn_worker();
        }
        true
    }

    fn try_spawn_worker(&self) {
        let inner = &self.inner;
        let mut live = inner.live.load(Ordering::Acquire);
        loop {
            if live >= inner.max_workers {
                return;
            }
            match inner
                .live
                .compare_exchange(live, live + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(actual) => live = actual,
            }
        }
        self.spawn_worker(live + 1);
    }

    fn spawn_worker(&self, live_after: usize) {
        let inner = &self.inner;
        inner.peak_live.fetch_max(live_after, Ordering::AcqRel);
        let worker_inner = Arc::clone(inner);
        let name = format!("{}-w{}", inner.name, live_after - 1);
        // A pool that cannot grow a worker deadlocks its callers:
        // spawn failure is unrecoverable, panicking is the contract.
        #[allow(clippy::expect_used)]
        std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_loop(worker_inner))
            .expect("spawn pool worker");
    }

    /// Liveness watchdog hook for shared pools (called periodically by
    /// the runtime's timer wheel). When jobs are queued, no worker is
    /// idle, and *nothing has completed since the previous kick*, every
    /// worker is blocked inside a job — for SyD that means nested RPCs
    /// whose replies are themselves stuck in this queue. One extra
    /// worker is spawned **past the cap** to restore progress; surplus
    /// workers retire through the normal keep-alive path.
    pub fn kick(&self) {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) || inner.rx.is_empty() {
            return;
        }
        if inner.idle.load(Ordering::Acquire) > 0 {
            return;
        }
        let executed = inner.executed.load(Ordering::Acquire);
        if inner.last_kick_executed.swap(executed, Ordering::AcqRel) != executed {
            return; // progress since the last kick: not stalled
        }
        let live = inner.live.fetch_add(1, Ordering::AcqRel);
        self.spawn_worker(live + 1);
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queued_jobs(&self) -> usize {
        self.inner.rx.len()
    }

    /// Number of threads currently alive.
    pub fn live_workers(&self) -> usize {
        self.inner.live.load(Ordering::Acquire)
    }

    /// Highest number of threads ever alive at once.
    pub fn peak_workers(&self) -> usize {
        self.inner.peak_live.load(Ordering::Acquire)
    }

    /// Total jobs completed.
    pub fn jobs_executed(&self) -> usize {
        self.inner.executed.load(Ordering::Acquire)
    }

    /// Stops accepting jobs and lets workers drain the queue and exit.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Dropping the sender disconnects the channel once drained.
        self.inner.tx.lock().take();
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        inner.idle.fetch_add(1, Ordering::AcqRel);
        let job = inner.rx.recv_timeout(inner.keepalive);
        inner.idle.fetch_sub(1, Ordering::AcqRel);
        match job {
            Ok(job) => {
                job();
                inner.executed.fetch_add(1, Ordering::AcqRel);
            }
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                // Retire surplus workers; keep one resident while live.
                if inner.live.load(Ordering::Acquire) > 1 || inner.shutdown.load(Ordering::Acquire)
                {
                    break;
                }
            }
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break,
        }
    }
    inner.live.fetch_sub(1, Ordering::AcqRel);
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Last application handle (workers hold `PoolInner`, not the pool):
        // shut down so worker threads exit instead of idling forever.
        if Arc::strong_count(&self.inner) <= 1 {
            self.shutdown();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn executes_jobs() {
        let pool = WorkerPool::new("t", 4, Duration::from_millis(100));
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            assert!(pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while counter.load(Ordering::SeqCst) < 20 {
            assert!(std::time::Instant::now() < deadline, "jobs did not finish");
            std::thread::yield_now();
        }
        assert_eq!(pool.jobs_executed(), 20);
    }

    #[test]
    fn jobs_inherit_the_submitters_trace_context() {
        let pool = WorkerPool::new("t", 2, Duration::from_millis(100));
        let ctx = trace::root_span();
        let _g = trace::enter(ctx);
        let (tx, rx) = crossbeam_channel::bounded(1);
        pool.execute(move || {
            let _ = tx.send(trace::current());
        });
        let observed = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(observed, Some(ctx), "trace ctx lost across pool dispatch");
    }

    #[test]
    fn untraced_jobs_stay_untraced() {
        let pool = WorkerPool::new("t", 2, Duration::from_millis(100));
        let (tx, rx) = crossbeam_channel::bounded(1);
        pool.execute(move || {
            let _ = tx.send(trace::current());
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), None);
    }

    #[test]
    fn grows_under_blocking_load() {
        let pool = WorkerPool::new("t", 16, Duration::from_millis(100));
        let (release_tx, release_rx) = crossbeam_channel::bounded::<()>(0);
        let started = Arc::new(AtomicU32::new(0));
        // 8 jobs that all block until released: pool must grow past 1 worker.
        for _ in 0..8 {
            let rx = release_rx.clone();
            let started = Arc::clone(&started);
            pool.execute(move || {
                started.fetch_add(1, Ordering::SeqCst);
                let _ = rx.recv();
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while started.load(Ordering::SeqCst) < 8 {
            assert!(std::time::Instant::now() < deadline, "pool failed to grow");
            std::thread::yield_now();
        }
        assert!(pool.peak_workers() >= 8);
        drop(release_tx);
    }

    #[test]
    fn respects_max_workers() {
        let pool = WorkerPool::new("t", 2, Duration::from_millis(50));
        let (release_tx, release_rx) = crossbeam_channel::bounded::<()>(0);
        for _ in 0..6 {
            let rx = release_rx.clone();
            pool.execute(move || {
                let _ = rx.recv();
            });
        }
        std::thread::sleep(Duration::from_millis(100));
        assert!(pool.live_workers() <= 2);
        drop(release_tx);
    }

    #[test]
    fn shutdown_rejects_new_jobs() {
        let pool = WorkerPool::new("t", 2, Duration::from_millis(50));
        pool.shutdown();
        assert!(!pool.execute(|| {}));
    }

    #[test]
    fn shutdown_completes_accepted_jobs_and_rejects_later_ones() {
        // The drain contract: every job accepted before shutdown runs to
        // completion; every submission after returns `false`. Nothing is
        // silently dropped in between.
        let pool = WorkerPool::new("t", 2, Duration::from_millis(50));
        let done = Arc::new(AtomicU32::new(0));
        let mut accepted = 0u32;
        for _ in 0..50 {
            let d = Arc::clone(&done);
            if pool.execute(move || {
                std::thread::sleep(Duration::from_millis(1));
                d.fetch_add(1, Ordering::SeqCst);
            }) {
                accepted += 1;
            }
        }
        pool.shutdown();
        assert!(!pool.execute(|| {}), "job accepted after shutdown");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < accepted {
            assert!(
                std::time::Instant::now() < deadline,
                "accepted jobs dropped: {}/{accepted}",
                done.load(Ordering::SeqCst)
            );
            std::thread::yield_now();
        }
        assert_eq!(pool.jobs_executed(), accepted as usize);
    }

    #[test]
    fn shutdown_lets_workers_exit() {
        let pool = WorkerPool::new("t", 4, Duration::from_secs(60));
        for _ in 0..4 {
            pool.execute(|| {});
        }
        pool.shutdown();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.live_workers() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "{} workers outlived shutdown",
                pool.live_workers()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn kick_grows_past_the_cap_only_when_stalled() {
        let pool = WorkerPool::new("t", 2, Duration::from_millis(100));
        // Empty queue: kick must not spawn anything.
        pool.kick();
        assert_eq!(pool.live_workers(), 0);

        // Wedge both workers and queue a third job.
        let (release_tx, release_rx) = crossbeam_channel::bounded::<()>(0);
        let started = Arc::new(AtomicU32::new(0));
        for _ in 0..3 {
            let rx = release_rx.clone();
            let s = Arc::clone(&started);
            pool.execute(move || {
                s.fetch_add(1, Ordering::SeqCst);
                let _ = rx.recv();
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while started.load(Ordering::SeqCst) < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "workers never started"
            );
            std::thread::yield_now();
        }
        assert_eq!(pool.live_workers(), 2, "cap respected before kick");
        assert_eq!(pool.queued_jobs(), 1);
        // Genuine stall (no progress, nobody idle, work queued): the
        // watchdog's kick breaks it by spawning one worker past the cap.
        pool.kick();
        while started.load(Ordering::SeqCst) < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "kick did not spawn an overflow worker"
            );
            std::thread::yield_now();
        }
        assert!(pool.peak_workers() >= 3, "overflow worker not counted");
        drop(release_tx);
    }

    #[test]
    fn workers_retire_after_keepalive() {
        let pool = WorkerPool::new("t", 8, Duration::from_millis(20));
        let (release_tx, release_rx) = crossbeam_channel::bounded::<()>(0);
        for _ in 0..4 {
            let rx = release_rx.clone();
            pool.execute(move || {
                let _ = rx.recv();
            });
        }
        std::thread::sleep(Duration::from_millis(50));
        drop(release_tx); // release all workers
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            pool.live_workers() <= 1,
            "expected retirement, {} live",
            pool.live_workers()
        );
    }
}
