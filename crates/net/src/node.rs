//! A network node: transport endpoint + RPC client + dispatcher.
//!
//! [`Node`] is what the SyD kernel builds a device on. It owns one
//! transport endpoint (any [`TransportEndpoint`] — simulated channel or
//! real TCP socket), demultiplexes incoming traffic (responses →
//! pending-call table, requests/events → worker pool), and exposes
//! blocking [`Node::call`] / non-blocking [`Node::call_async`] semantics
//! with deadlines and transient-failure retries.
//!
//! Two execution models share the same dispatch logic
//! (`dispatch_event`):
//!
//! * **Shared runtime** (default; [`crate::runtime::set_shared_runtime`])
//!   — the node is a state machine registered with the backend's
//!   [`crate::runtime::SharedRuntime`]: the reactor thread drains its
//!   endpoint when notified, jobs go to the shared pool, RPC deadlines
//!   are timer-wheel entries. Zero threads per node.
//! * **Legacy thread-per-device** ([`Node::spawn_on_endpoint`], or the
//!   switch/`SYD_RUNTIME=legacy` turned off) — a dedicated driver
//!   thread blocks on `recv_event` and a private pool serves requests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::Sender;
use parking_lot::{Mutex, RwLock};
use syd_telemetry::{trace, Counter, Histogram, Registry, SpanCtx};
use syd_transport::{Network, Transport, TransportEndpoint, TransportEvent};
use syd_types::{NodeAddr, RequestId, ServiceName, SydError, SydResult, UserId, Value};
use syd_wire::{Args, EventMsg, Payload, Request, Response, TraceContext};

use crate::pool::WorkerPool;
use crate::rpc::{CallOptions, PendingCall};
use crate::runtime::{runtime_for, shared_runtime_enabled, DrainOutcome, SharedRuntime};
use syd_telemetry::names;
use syd_trace::Tracer;

/// Events drained per reactor wake-up before the node yields to its
/// peers (round-robin fairness under load).
const DRAIN_BUDGET: usize = 128;

/// Backstop added to the channel wait when the timer wheel owns the
/// deadline: the wheel fires the timeout; the wait only catches a
/// wedged wheel.
const DEADLINE_GRACE: Duration = Duration::from_millis(200);

/// Serves incoming requests on a node.
///
/// The handler runs on a pool worker and may freely perform nested remote
/// calls (see [`WorkerPool`]). The returned value or error travels back to
/// the caller as the response.
pub trait RequestHandler: Send + Sync + 'static {
    /// Handles one request from `from`.
    fn handle(&self, from: NodeAddr, request: Request) -> SydResult<Value>;
}

impl<F> RequestHandler for F
where
    F: Fn(NodeAddr, Request) -> SydResult<Value> + Send + Sync + 'static,
{
    fn handle(&self, from: NodeAddr, request: Request) -> SydResult<Value> {
        self(from, request)
    }
}

/// Receives fire-and-forget events on a node.
pub trait EventSink: Send + Sync + 'static {
    /// Handles one event from `from`.
    fn on_event(&self, from: NodeAddr, event: EventMsg);
}

impl<F> EventSink for F
where
    F: Fn(NodeAddr, EventMsg) + Send + Sync + 'static,
{
    fn on_event(&self, from: NodeAddr, event: EventMsg) {
        self(from, event);
    }
}

/// Preregistered metric handles for the RPC hot path. Recording through
/// any of these is a relaxed atomic op — no lock, no allocation — which
/// is what keeps `rpc_round_trip/ideal` flat after instrumentation.
struct NodeMetrics {
    /// `rpc.call` — blocking-call latency (microseconds).
    rpc_call: Histogram,
    /// `rpc.retries` — transient-failure re-sends from `call_with`.
    rpc_retries: Counter,
    /// `rpc.timeouts` — calls (or attempts) that hit their deadline.
    rpc_timeouts: Counter,
    /// `rpc.requests_served` — inbound requests dispatched to a handler.
    requests_served: Counter,
}

impl NodeMetrics {
    fn preregister(registry: &Registry) -> Self {
        Self {
            rpc_call: registry.histogram(names::RPC_CALL),
            rpc_retries: registry.counter(names::RPC_RETRIES),
            rpc_timeouts: registry.counter(names::RPC_TIMEOUTS),
            requests_served: registry.counter(names::RPC_REQUESTS_SERVED),
        }
    }
}

struct NodeShared {
    addr: NodeAddr,
    link: Arc<dyn TransportEndpoint>,
    pending: Mutex<HashMap<RequestId, Sender<SydResult<Value>>>>,
    next_request: AtomicU64,
    handler: RwLock<Option<Arc<dyn RequestHandler>>>,
    events: RwLock<Option<Arc<dyn EventSink>>>,
    identity: RwLock<(UserId, Vec<u8>)>,
    pool: WorkerPool,
    /// `Some` when multiplexed onto a shared runtime (no driver thread,
    /// shared pool, wheel-armed deadlines); `None` on the legacy path.
    runtime: Option<SharedRuntime>,
    registry: Arc<Registry>,
    metrics: NodeMetrics,
    /// Per-node span ring: `rpc.client` / `rpc.server` spans land here,
    /// and higher layers (kernel, calendar) record through it too.
    tracer: Tracer,
}

/// A live node on a transport. Cloning shares the node.
#[derive(Clone)]
pub struct Node {
    shared: Arc<NodeShared>,
}

impl Node {
    /// Registers a fresh endpoint on the simulated `net`. Convenience
    /// for the common single-process case; equivalent to
    /// [`Node::spawn_on`] with a [`Network`]. Honors the
    /// [`crate::runtime::set_shared_runtime`] switch.
    pub fn spawn(net: &Network) -> Node {
        if shared_runtime_enabled() {
            Node::spawn_with_runtime(Arc::new(net.register()), &runtime_for(net))
        } else {
            Node::spawn_on_endpoint(Arc::new(net.register()))
        }
    }

    /// Opens a fresh endpoint on any [`Transport`] backend (simulated or
    /// TCP). Honors the [`crate::runtime::set_shared_runtime`] switch:
    /// shared-runtime multiplexing by default, a dedicated driver thread
    /// on the legacy path.
    pub fn spawn_on(transport: &dyn Transport) -> SydResult<Node> {
        if shared_runtime_enabled() {
            let runtime = runtime_for(transport);
            Ok(Node::spawn_with_runtime(transport.listen()?, &runtime))
        } else {
            Ok(Node::spawn_on_endpoint(transport.listen()?))
        }
    }

    /// Builds a node around an already-open transport endpoint on the
    /// legacy thread-per-device path: a dedicated driver thread and a
    /// private worker pool, regardless of the global runtime switch.
    pub fn spawn_on_endpoint(link: Arc<dyn TransportEndpoint>) -> Node {
        let addr = link.addr();
        let registry = Arc::new(Registry::new());
        let metrics = NodeMetrics::preregister(&registry);
        let shared = Arc::new(NodeShared {
            addr,
            link,
            pending: Mutex::new(HashMap::new()),
            next_request: AtomicU64::new(1),
            handler: RwLock::new(None),
            events: RwLock::new(None),
            identity: RwLock::new((UserId::default(), Vec::new())),
            pool: WorkerPool::for_device(format!("node{}", addr.raw())),
            runtime: None,
            registry,
            metrics,
            tracer: Tracer::new(format!("node{}", addr.raw()), addr.raw()),
        });
        let driver_shared = Arc::clone(&shared);
        // A node without its driver thread never receives: construction
        // failure is unrecoverable, panicking is the contract.
        #[allow(clippy::expect_used)]
        std::thread::Builder::new()
            .name(format!("node{}-driver", addr.raw()))
            .spawn(move || driver_loop(&driver_shared))
            .expect("spawn node driver");
        Node { shared }
    }

    /// Builds a node multiplexed onto `runtime`, regardless of the
    /// global switch: no driver thread, the runtime's shared pool, and
    /// its reactor draining this endpoint on readiness notifications.
    pub fn spawn_with_runtime(link: Arc<dyn TransportEndpoint>, runtime: &SharedRuntime) -> Node {
        let addr = link.addr();
        let registry = runtime.node_registry();
        let metrics = NodeMetrics::preregister(&registry);
        let shared = Arc::new(NodeShared {
            addr,
            link,
            pending: Mutex::new(HashMap::new()),
            next_request: AtomicU64::new(1),
            handler: RwLock::new(None),
            events: RwLock::new(None),
            identity: RwLock::new((UserId::default(), Vec::new())),
            pool: runtime.pool().clone(),
            runtime: Some(runtime.clone()),
            registry,
            metrics,
            tracer: Tracer::new(format!("node{}", addr.raw()), addr.raw()),
        });
        // Register the drain callback first, then install the notifier:
        // installation fires an immediate notification, so events that
        // arrived before this point are drained right away.
        let drain_shared = Arc::downgrade(&shared);
        runtime.register_node(
            addr,
            Arc::new(move || match drain_shared.upgrade() {
                Some(shared) => drain_events(&shared),
                None => DrainOutcome::Closed,
            }),
        );
        shared.link.set_ready_notifier(runtime.notifier());
        Node { shared }
    }

    /// The shared runtime this node is multiplexed onto, if any.
    pub fn runtime(&self) -> Option<&SharedRuntime> {
        self.shared.runtime.as_ref()
    }

    /// This node's network address.
    pub fn addr(&self) -> NodeAddr {
        self.shared.addr
    }

    /// The transport endpoint this node speaks through. Mobility and
    /// fault hooks (`set_connected`, `kill_connections`) live here.
    pub fn link(&self) -> &Arc<dyn TransportEndpoint> {
        &self.shared.link
    }

    /// The worker pool dispatching this node's inbound requests.
    pub fn pool(&self) -> &WorkerPool {
        &self.shared.pool
    }

    /// This node's span tracer. Its ring is registered globally, so a
    /// [`syd_trace::Collector`] can drain it (or all rings) after a run.
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// This node's metrics registry (`rpc.call`, `rpc.retries`,
    /// `rpc.timeouts`, `rpc.requests_served`, plus whatever higher
    /// layers register on it).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Number of transient-failure re-sends performed by blocking calls.
    pub fn rpc_retries(&self) -> u64 {
        self.shared.metrics.rpc_retries.get()
    }

    /// Number of call attempts that hit their deadline.
    pub fn rpc_timeouts(&self) -> u64 {
        self.shared.metrics.rpc_timeouts.get()
    }

    /// Installs the request handler (replacing any previous one).
    pub fn set_handler(&self, handler: Arc<dyn RequestHandler>) {
        *self.shared.handler.write() = Some(handler);
    }

    /// Installs the event sink (replacing any previous one).
    pub fn set_event_sink(&self, sink: Arc<dyn EventSink>) {
        *self.shared.events.write() = Some(sink);
    }

    /// Sets the identity stamped on outgoing requests: the calling user and
    /// the TEA-encrypted credential blob (§5.4).
    pub fn set_identity(&self, user: UserId, credentials: Vec<u8>) {
        *self.shared.identity.write() = (user, credentials);
    }

    /// Blocking remote call with default options.
    pub fn call(
        &self,
        dst: NodeAddr,
        service: &ServiceName,
        method: &str,
        args: impl Into<Args>,
    ) -> SydResult<Value> {
        self.call_with(dst, service, method, args, CallOptions::default())
    }

    /// Blocking remote call with explicit deadline/retry options.
    pub fn call_with(
        &self,
        dst: NodeAddr,
        service: &ServiceName,
        method: &str,
        args: impl Into<Args>,
        opts: CallOptions,
    ) -> SydResult<Value> {
        // Convert once: retry attempts clone the shared handle, they do
        // not deep-copy (or re-encode) the argument values.
        let args: Args = args.into();
        let started = Instant::now();
        let mut attempts = 0;
        loop {
            let mut pending = self.call_async(dst, service, method, args.clone())?;
            // Shared runtime: the deadline is a timer-wheel event that
            // fails the pending entry at `opts.timeout`; the channel
            // wait below is only a backstop (and cancels the timer via
            // the call's cleanup hook when the response wins the race).
            let wait_budget = if self.arm_deadline(&mut pending, opts.timeout) {
                opts.timeout + DEADLINE_GRACE
            } else {
                opts.timeout
            };
            match pending.wait(wait_budget) {
                Ok(value) => {
                    self.shared
                        .metrics
                        .rpc_call
                        .record_duration(started.elapsed());
                    return Ok(value);
                }
                Err(err) => {
                    if matches!(err, SydError::Timeout(_)) {
                        self.shared.metrics.rpc_timeouts.inc();
                    }
                    if err.is_transient() && attempts < opts.retries {
                        attempts += 1;
                        self.shared.metrics.rpc_retries.inc();
                    } else {
                        return Err(err);
                    }
                }
            }
        }
    }

    /// Arms a timer-wheel deadline for an in-flight call (shared
    /// runtime only; the legacy path's deadline is the blocking channel
    /// wait itself). If the wheel fires first, the pending entry is
    /// failed with [`SydError::Timeout`]; if the response wins the
    /// race, the call's cleanup hook cancels the wheel entry. Returns
    /// whether a deadline was armed.
    fn arm_deadline(&self, pending: &mut PendingCall, timeout: Duration) -> bool {
        let Some(runtime) = &self.shared.runtime else {
            return false;
        };
        let id = pending.id();
        let weak = Arc::downgrade(&self.shared);
        let timer_id = runtime.timer().schedule(timeout, move || {
            let Some(shared) = weak.upgrade() else { return };
            let tx = shared.pending.lock().remove(&id);
            if let Some(tx) = tx {
                let _ = tx.try_send(Err(SydError::Timeout(id)));
            }
        });
        let timer = runtime.timer().clone();
        let prev = pending.cleanup.take();
        pending.cleanup = Some(Box::new(move || {
            timer.cancel(timer_id);
            if let Some(prev) = prev {
                prev();
            }
        }));
        true
    }

    /// Sends a request and returns immediately with a [`PendingCall`].
    pub fn call_async(
        &self,
        dst: NodeAddr,
        service: &ServiceName,
        method: &str,
        args: impl Into<Args>,
    ) -> SydResult<PendingCall> {
        self.call_async_to(dst, UserId::default(), service, method, args)
    }

    /// Like [`Node::call_async`] with an explicit logical target user —
    /// proxies hosting several users' replicas route requests by it.
    ///
    /// Accepts anything convertible to [`Args`]; a broadcaster passing
    /// the same pre-encoded [`Args`] clone to every recipient pays the
    /// body encoding cost once for the whole group (see
    /// [`Args::preencode`]).
    pub fn call_async_to(
        &self,
        dst: NodeAddr,
        target: UserId,
        service: &ServiceName,
        method: &str,
        args: impl Into<Args>,
    ) -> SydResult<PendingCall> {
        let id = RequestId::new(self.shared.next_request.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = crossbeam_channel::bounded(1);
        self.shared.pending.lock().insert(id, tx);
        let (caller, credentials) = self.shared.identity.read().clone();
        // Continue the thread's current trace (nested invocation) or
        // mint a fresh root — either way every request carries context.
        let (span, parent) = match trace::current() {
            Some(ctx) => (ctx.child(), ctx.span),
            None => (trace::root_span(), 0),
        };
        // The client span covers send → response under the same span id
        // the server records, so the assembler can merge both views.
        let client_span = self
            .shared
            .tracer
            .finish_handle(names::SPAN_RPC_CLIENT, span, parent);
        let request = Request {
            id,
            caller,
            target,
            credentials,
            service: service.clone(),
            method: method.to_owned(),
            args: args.into(),
            trace: Some(TraceContext {
                trace_id: span.trace,
                span_id: span.span,
                hop: span.hop,
            }),
        };
        let send_result = self.shared.link.send(syd_wire::Envelope::new(
            self.shared.addr,
            dst,
            Payload::Request(request),
        ));
        if let Err(err) = send_result {
            self.shared.pending.lock().remove(&id);
            return Err(err);
        }
        // Dropping the call (abandoned, timed out, or answered) removes
        // its pending-table entry, so the table cannot accumulate slots
        // for responses nobody is waiting on.
        let weak = Arc::downgrade(&self.shared);
        Ok(PendingCall {
            id,
            rx,
            cleanup: Some(Box::new(move || {
                if let Some(shared) = weak.upgrade() {
                    shared.pending.lock().remove(&id);
                }
            })),
            span: Some(client_span),
        })
    }

    /// Publishes a fire-and-forget event to `dst`.
    pub fn publish_event(&self, dst: NodeAddr, topic: &str, payload: Value) -> SydResult<()> {
        let (source, _) = *self.shared.identity.read();
        self.shared
            .link
            .send(syd_wire::Envelope::new(
                self.shared.addr,
                dst,
                Payload::Event(EventMsg {
                    topic: topic.to_owned(),
                    source,
                    payload,
                }),
            ))
            .map(|_| ())
    }

    /// Closes the transport endpoint and stops this node's dispatch:
    /// deregisters from the shared runtime in shared mode, or stops the
    /// private driver thread and pool on the legacy path. A shared
    /// runtime's own threads stop with its *last* node, not here.
    pub fn shutdown(&self) {
        if let Some(runtime) = &self.shared.runtime {
            runtime.deregister_node(self.shared.addr);
        }
        self.shared.link.close();
        if self.shared.runtime.is_none() {
            self.shared.pool.shutdown();
        }
        // Fail everything still pending.
        let mut pending = self.shared.pending.lock();
        for (_, tx) in pending.drain() {
            let _ = tx.send(Err(SydError::Shutdown));
        }
    }
}

/// Legacy driver thread: blocks on the endpoint and feeds every event
/// through the same [`dispatch_event`] the shared runtime uses.
fn driver_loop(shared: &Arc<NodeShared>) {
    loop {
        match shared.link.recv_event() {
            Ok(event) => dispatch_event(shared, event),
            // Corrupt frames are dropped where they are counted.
            Err(SydError::Codec(_)) => {}
            Err(_) => return, // endpoint closed
        }
    }
}

/// Shared-runtime drain callback: pops up to [`DRAIN_BUDGET`] events
/// without blocking, then yields so the reactor can serve peer nodes.
fn drain_events(shared: &Arc<NodeShared>) -> DrainOutcome {
    for _ in 0..DRAIN_BUDGET {
        match shared.link.try_recv_event() {
            None => return DrainOutcome::Idle,
            Some(Ok(event)) => dispatch_event(shared, event),
            // Corrupt frames are dropped where they are counted.
            Some(Err(SydError::Codec(_))) => {}
            Some(Err(_)) => return DrainOutcome::Closed,
        }
    }
    DrainOutcome::More
}

/// One transport event through the node: responses complete pending
/// calls inline, requests and application events become pool jobs.
/// Shared by both execution models — and run on the reactor thread in
/// shared mode, so it must never block.
fn dispatch_event(shared: &Arc<NodeShared>, event: TransportEvent) {
    let envelope = match event {
        TransportEvent::Message(env) => env,
        // Connection lifecycle is the transport's business (requests
        // that a lost connection strands come back as synthesized
        // error responses) — nothing to do here.
        TransportEvent::Connected(_)
        | TransportEvent::Accepted(_)
        | TransportEvent::Disconnected(_) => return,
    };
    match envelope.payload {
        Payload::Response(resp) => {
            if let Some(tx) = shared.pending.lock().remove(&resp.id) {
                // Whoever removes the table entry owns the rendezvous
                // slot, so `try_send` on the capacity-1 channel cannot
                // find it full — and never parks the reactor.
                let _ = tx.try_send(resp.result);
            }
            // Late responses for timed-out calls are dropped silently.
        }
        Payload::Request(req) => {
            let handler = shared.handler.read().clone();
            let from = envelope.src;
            let reply_shared = Arc::clone(shared);
            let job = move || {
                reply_shared.metrics.requests_served.inc();
                // Serve under the caller's trace context so nested
                // outbound calls made by the handler inherit it.
                let _span = req.trace.map(|tc| {
                    trace::enter(SpanCtx {
                        trace: tc.trace_id,
                        span: tc.span_id,
                        hop: tc.hop + 1,
                    })
                });
                let served_start = syd_trace::now_us();
                let result = match handler {
                    Some(h) => h.handle(from, req.clone()),
                    None => Err(SydError::NoSuchService(
                        req.service.clone(),
                        req.method.clone(),
                    )),
                };
                // Server view of the RPC: same span id as the client's
                // `rpc.client`, parent 0 (the assembler merges the two
                // views; parentage comes from the client record).
                if let Some(tc) = req.trace {
                    reply_shared.tracer.record_span(
                        names::SPAN_RPC_SERVER,
                        tc.trace_id,
                        tc.span_id,
                        0,
                        served_start,
                        syd_trace::now_us(),
                        &[("hop", u64::from(tc.hop))],
                    );
                }
                let _ = reply_shared.link.send(syd_wire::Envelope::new(
                    reply_shared.addr,
                    from,
                    Payload::Response(Response { id: req.id, result }),
                ));
            };
            if !shared.pool.execute(job) {
                // Pool shut down: best effort error response inline.
                let _ = shared.link.send(syd_wire::Envelope::new(
                    shared.addr,
                    envelope.src,
                    Payload::Response(Response {
                        id: RequestId::new(0),
                        result: Err(SydError::Shutdown),
                    }),
                ));
            }
        }
        Payload::Event(event) => {
            if let Some(sink) = shared.events.read().clone() {
                let from = envelope.src;
                shared.pool.execute(move || sink.on_event(from, event));
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;
    use syd_transport::NetConfig;

    fn echo_handler() -> Arc<dyn RequestHandler> {
        Arc::new(|_from: NodeAddr, req: Request| -> SydResult<Value> {
            Ok(Value::list(req.args.to_vec()))
        })
    }

    #[test]
    fn call_round_trip() {
        let net = Network::ideal();
        let server = Node::spawn(&net);
        server.set_handler(echo_handler());
        let client = Node::spawn(&net);
        let result = client
            .call(
                server.addr(),
                &ServiceName::new("echo"),
                "echo",
                vec![Value::I64(7), Value::str("x")],
            )
            .unwrap();
        assert_eq!(result, Value::list([Value::I64(7), Value::str("x")]));
    }

    #[test]
    fn spawn_on_trait_object_round_trips() {
        // The same code path core uses: nodes built from `&dyn Transport`.
        let net = Network::ideal();
        let transport: &dyn Transport = &net;
        let server = Node::spawn_on(transport).unwrap();
        server.set_handler(echo_handler());
        let client = Node::spawn_on(transport).unwrap();
        let result = client
            .call(
                server.addr(),
                &ServiceName::new("echo"),
                "m",
                vec![Value::I64(3)],
            )
            .unwrap();
        assert_eq!(result, Value::list([Value::I64(3)]));
        assert!(client.link().is_connected());
    }

    #[test]
    fn missing_handler_reports_no_such_service() {
        let net = Network::ideal();
        let server = Node::spawn(&net);
        let client = Node::spawn(&net);
        let err = client
            .call(server.addr(), &ServiceName::new("ghost"), "m", vec![])
            .unwrap_err();
        assert!(matches!(err, SydError::NoSuchService(_, _)), "{err}");
    }

    #[test]
    fn handler_errors_propagate() {
        let net = Network::ideal();
        let server = Node::spawn(&net);
        server.set_handler(Arc::new(|_: NodeAddr, _: Request| -> SydResult<Value> {
            Err(SydError::App("boom".into()))
        }));
        let client = Node::spawn(&net);
        let err = client
            .call(server.addr(), &ServiceName::new("svc"), "m", vec![])
            .unwrap_err();
        assert_eq!(err, SydError::App("boom".into()));
    }

    #[test]
    fn call_times_out_when_peer_never_answers() {
        let net = Network::ideal();
        // A raw endpoint that receives but never replies.
        let silent = net.register();
        let client = Node::spawn(&net);
        let opts = CallOptions::new().with_timeout(Duration::from_millis(50));
        let err = client
            .call_with(silent.addr(), &ServiceName::new("svc"), "m", vec![], opts)
            .unwrap_err();
        assert!(matches!(err, SydError::Timeout(_)), "{err}");
    }

    #[test]
    fn retries_recover_from_loss() {
        // 60% loss: with 20 retries the call should eventually succeed.
        let net = Network::new(NetConfig::ideal().with_loss(0.6).with_seed(3));
        let server = Node::spawn(&net);
        server.set_handler(echo_handler());
        let client = Node::spawn(&net);
        let opts = CallOptions::new()
            .with_timeout(Duration::from_millis(40))
            .with_retries(20);
        let result = client.call_with(
            server.addr(),
            &ServiceName::new("echo"),
            "m",
            vec![Value::I64(1)],
            opts,
        );
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn call_async_overlaps_requests() {
        let net = Network::ideal();
        let server = Node::spawn(&net);
        server.set_handler(echo_handler());
        let client = Node::spawn(&net);
        let svc = ServiceName::new("echo");
        let calls: Vec<_> = (0..10)
            .map(|i| {
                client
                    .call_async(server.addr(), &svc, "m", vec![Value::I64(i)])
                    .unwrap()
            })
            .collect();
        for (i, call) in calls.into_iter().enumerate() {
            let v = call.wait(Duration::from_secs(1)).unwrap();
            assert_eq!(v, Value::list([Value::I64(i as i64)]));
        }
    }

    #[test]
    fn nested_call_back_into_caller_does_not_deadlock() {
        let net = Network::ideal();
        let a = Node::spawn(&net);
        let b = Node::spawn(&net);
        let svc = ServiceName::new("svc");

        // b's handler calls back into a ("pong"); a's handler answers
        // directly. A single-threaded dispatcher would deadlock on a→b→a.
        let a_clone = a.clone();
        let a_addr = a.addr();
        b.set_handler(Arc::new(move |_: NodeAddr, req: Request| {
            if req.method == "ping" {
                a_clone.call(a_addr, &ServiceName::new("svc"), "pong", vec![])
            } else {
                Ok(Value::Null)
            }
        }));
        a.set_handler(Arc::new(|_: NodeAddr, req: Request| {
            if req.method == "pong" {
                Ok(Value::str("pong"))
            } else {
                Ok(Value::Null)
            }
        }));

        let result = a.call(b.addr(), &svc, "ping", vec![]).unwrap();
        assert_eq!(result, Value::str("pong"));
    }

    #[test]
    fn trace_context_spans_nested_calls() {
        let net = Network::ideal();
        let a = Node::spawn(&net);
        let b = Node::spawn(&net);

        // b reports the trace context it observes on the wire.
        b.set_handler(Arc::new(|_: NodeAddr, req: Request| {
            let tc = req.trace.expect("request arrived without trace context");
            Ok(Value::list([
                Value::I64(tc.trace_id as i64),
                Value::I64(tc.hop as i64),
            ]))
        }));
        // a's handler makes a nested call to b from its worker thread.
        let a_clone = a.clone();
        let b_addr = b.addr();
        a.set_handler(Arc::new(move |_: NodeAddr, _: Request| {
            a_clone.call(b_addr, &ServiceName::new("svc"), "probe", vec![])
        }));

        let client = Node::spawn(&net);
        let root = syd_telemetry::root_span();
        let reported = {
            let _g = syd_telemetry::enter(root);
            client
                .call(a.addr(), &ServiceName::new("svc"), "relay", vec![])
                .unwrap()
        };
        // One trace id from client through a's handler to b, and b sees
        // the call one hop deeper than the client's root.
        assert_eq!(
            reported,
            Value::list([Value::I64(root.trace as i64), Value::I64(1)])
        );
    }

    #[test]
    fn rpc_metrics_count_calls_timeouts_and_retries() {
        let net = Network::ideal();
        let server = Node::spawn(&net);
        server.set_handler(echo_handler());
        let client = Node::spawn(&net);
        client
            .call(server.addr(), &ServiceName::new("echo"), "m", vec![])
            .unwrap();
        let hist = client.metrics().get_histogram(names::RPC_CALL).unwrap();
        assert_eq!(hist.count(), 1);
        assert!(
            server
                .metrics()
                .get_counter(names::RPC_REQUESTS_SERVED)
                .unwrap()
                .get()
                >= 1
        );

        // A silent peer: the first attempt and its single retry both
        // time out, so the call fails with two timeouts and one retry.
        let silent = net.register();
        let opts = CallOptions::new()
            .with_timeout(Duration::from_millis(30))
            .with_retries(1);
        let err = client
            .call_with(silent.addr(), &ServiceName::new("svc"), "m", vec![], opts)
            .unwrap_err();
        assert!(matches!(err, SydError::Timeout(_)), "{err}");
        assert_eq!(client.rpc_timeouts(), 2);
        assert_eq!(client.rpc_retries(), 1);
        // The successful call is still the only histogram sample.
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn events_reach_the_sink() {
        let net = Network::ideal();
        let receiver = Node::spawn(&net);
        let count = Arc::new(AtomicU32::new(0));
        let count_clone = Arc::clone(&count);
        receiver.set_event_sink(Arc::new(move |_: NodeAddr, ev: EventMsg| {
            assert_eq!(ev.topic, "tick");
            count_clone.fetch_add(1, Ordering::SeqCst);
        }));
        let sender = Node::spawn(&net);
        for _ in 0..5 {
            sender
                .publish_event(receiver.addr(), "tick", Value::Null)
                .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while count.load(Ordering::SeqCst) < 5 {
            assert!(std::time::Instant::now() < deadline, "events missing");
            std::thread::yield_now();
        }
    }

    #[test]
    fn identity_is_stamped_on_requests() {
        let net = Network::ideal();
        let server = Node::spawn(&net);
        server.set_handler(Arc::new(|_: NodeAddr, req: Request| {
            Ok(Value::list([
                Value::I64(req.caller.raw() as i64),
                Value::Bytes(req.credentials),
            ]))
        }));
        let client = Node::spawn(&net);
        client.set_identity(UserId::new(42), vec![9, 9]);
        let v = client
            .call(server.addr(), &ServiceName::new("svc"), "id", vec![])
            .unwrap();
        assert_eq!(v, Value::list([Value::I64(42), Value::Bytes(vec![9, 9])]));
    }

    #[test]
    fn shutdown_fails_pending_calls() {
        let net = Network::ideal();
        let silent = net.register();
        let client = Node::spawn(&net);
        let call = client
            .call_async(silent.addr(), &ServiceName::new("svc"), "m", vec![])
            .unwrap();
        client.shutdown();
        let err = call.wait(Duration::from_secs(1)).unwrap_err();
        assert_eq!(err, SydError::Shutdown);
    }

    #[test]
    fn shared_runtime_round_trip_without_driver_threads() {
        // Explicit constructors: immune to the global switch, so this
        // exercises the shared path even under `SYD_RUNTIME=legacy`.
        let net = Network::ideal();
        let rt = crate::runtime::SharedRuntime::new("node-rt");
        let server = Node::spawn_with_runtime(Arc::new(net.register()), &rt);
        server.set_handler(echo_handler());
        let client = Node::spawn_with_runtime(Arc::new(net.register()), &rt);
        assert_eq!(rt.nodes(), 2);
        assert!(client.runtime().is_some());
        let result = client
            .call(
                server.addr(),
                &ServiceName::new("echo"),
                "m",
                vec![Value::I64(7)],
            )
            .unwrap();
        assert_eq!(result, Value::list([Value::I64(7)]));
        server.shutdown();
        assert_eq!(rt.nodes(), 1, "shutdown must deregister from the reactor");
    }

    #[test]
    fn shared_runtime_deadlines_fire_from_the_wheel() {
        let net = Network::ideal();
        let rt = crate::runtime::SharedRuntime::new("node-rt");
        let silent = net.register(); // receives, never replies
        let client = Node::spawn_with_runtime(Arc::new(net.register()), &rt);
        let opts = CallOptions::new()
            .with_timeout(Duration::from_millis(40))
            .with_retries(1);
        let err = client
            .call_with(silent.addr(), &ServiceName::new("svc"), "m", vec![], opts)
            .unwrap_err();
        assert!(matches!(err, SydError::Timeout(_)), "{err}");
        // Same counter contract as the legacy path: both attempts time
        // out, one retry happens — and the wheel is what fired them.
        assert_eq!(client.rpc_timeouts(), 2);
        assert_eq!(client.rpc_retries(), 1);
        assert!(
            rt.timer().fired() >= 2,
            "deadlines did not run on the wheel"
        );
    }

    #[test]
    fn timed_out_calls_leave_no_pending_entries() {
        // Both execution models: the cleanup hook must empty the table.
        let net = Network::ideal();
        let silent = net.register();
        let rt = crate::runtime::SharedRuntime::new("node-rt");
        let shared_client = Node::spawn_with_runtime(Arc::new(net.register()), &rt);
        let legacy_client = Node::spawn_on_endpoint(Arc::new(net.register()));
        assert!(legacy_client.runtime().is_none());
        let opts = CallOptions::new().with_timeout(Duration::from_millis(30));
        for client in [&shared_client, &legacy_client] {
            let _ = client
                .call_with(silent.addr(), &ServiceName::new("svc"), "m", vec![], opts)
                .unwrap_err();
            assert_eq!(
                client.shared.pending.lock().len(),
                0,
                "pending entry leaked"
            );
        }
        // Abandoned async calls clean up on drop, too.
        drop(
            shared_client
                .call_async(silent.addr(), &ServiceName::new("svc"), "m", vec![])
                .unwrap(),
        );
        assert_eq!(shared_client.shared.pending.lock().len(), 0);
    }

    #[test]
    fn disconnected_server_fails_fast() {
        let net = Network::ideal();
        let server = Node::spawn(&net);
        server.set_handler(echo_handler());
        let client = Node::spawn(&net);
        net.set_connected(server.addr(), false);
        let err = client
            .call(server.addr(), &ServiceName::new("svc"), "m", vec![])
            .unwrap_err();
        assert_eq!(err, SydError::Disconnected(server.addr()));
    }
}
