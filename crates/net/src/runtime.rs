//! The shared event-driven device runtime: one reactor, one timer
//! wheel, one worker pool — thousands of devices.
//!
//! The thread-per-device model (one driver thread + one private pool
//! per [`crate::Node`]) caps fleets at a few hundred devices per
//! process. This module inverts it, following the signal/network split
//! of message-io's `NodeEvent`: transport endpoints *push readiness
//! notifications* into a [`Reactor`] instead of being polled by a
//! dedicated thread, and the reactor drains each ready endpoint's event
//! queue, dispatching work onto a shared [`WorkerPool`]. Deadlines (RPC
//! timeouts, link-expiry and stale-session sweeps) become entries on a
//! shared [`TimerWheel`]. A device is then just a state machine around
//! the pure cores — no threads of its own.
//!
//! Thread budget for a fleet of any size on one backend:
//! `workers (≤ 48, soft cap) + 1 reactor + 1 timer + backend threads`.
//!
//! One runtime exists per transport backend (see [`runtime_for`]);
//! whether new nodes use it is controlled by [`set_shared_runtime`] /
//! the `SYD_RUNTIME=legacy` environment override, mirroring the
//! `set_batched_resolve` engine switch.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use syd_telemetry::Registry;
use syd_transport::{ReadyNotifier, Transport};
use syd_types::NodeAddr;

use crate::pool::WorkerPool;
use crate::timer::TimerWheel;

/// How often the watchdog checks the shared pool for stalls.
const WATCHDOG_TICK: Duration = Duration::from_millis(50);

/// What a node's drain callback reports back to the reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// The endpoint's queue is empty; wait for the next notification.
    Idle,
    /// The drain budget ran out with events still queued: re-enqueue
    /// this node behind its peers (round-robin fairness).
    More,
    /// The endpoint reported shutdown; deregister the node.
    Closed,
}

/// A node's event-drain callback. Must not block: it may only pop
/// endpoint events, complete pending calls and enqueue pool jobs.
pub type DrainFn = Arc<dyn Fn() -> DrainOutcome + Send + Sync>;

struct ReadyQueue {
    queue: VecDeque<NodeAddr>,
    /// Mirror of `queue` for O(1) duplicate suppression.
    queued: HashSet<NodeAddr>,
    shutdown: bool,
}

/// The event dispatcher: receives readiness notifications from
/// transport endpoints and drains ready nodes on one thread.
pub struct Reactor {
    ready: Mutex<ReadyQueue>,
    cv: Condvar,
    nodes: Mutex<HashMap<NodeAddr, DrainFn>>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Reactor {
    fn start(label: &str) -> Arc<Reactor> {
        let reactor = Arc::new(Reactor {
            ready: Mutex::new(ReadyQueue {
                queue: VecDeque::new(),
                queued: HashSet::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            nodes: Mutex::new(HashMap::new()),
            thread: Mutex::new(None),
        });
        let loop_reactor = Arc::clone(&reactor);
        // A runtime without its reactor dispatches nothing; construction
        // failure is unrecoverable, so panicking is the contract.
        #[allow(clippy::expect_used)]
        let handle = std::thread::Builder::new()
            .name(format!("syd-reactor-{label}"))
            .spawn(move || reactor_loop(&loop_reactor))
            .expect("spawn reactor thread");
        *reactor.thread.lock() = Some(handle);
        reactor
    }

    /// Registers a node's drain callback and schedules an immediate
    /// drain (events may have raced registration).
    fn register(&self, addr: NodeAddr, drain: DrainFn) {
        self.nodes.lock().insert(addr, drain);
        self.notify(addr);
    }

    /// Removes a node; its callback is never invoked again after the
    /// current drain (if any) completes.
    fn deregister(&self, addr: NodeAddr) {
        self.nodes.lock().remove(&addr);
    }

    fn registered_nodes(&self) -> usize {
        self.nodes.lock().len()
    }

    fn shutdown(&self) {
        {
            let mut ready = self.ready.lock();
            if ready.shutdown {
                return;
            }
            ready.shutdown = true;
            ready.queue.clear();
            ready.queued.clear();
        }
        self.cv.notify_all();
        let handle = self.thread.lock().take();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
        // Drop drain callbacks: they hold endpoint handles, and the
        // endpoints' slots hold us (as notifier) — break the cycle.
        self.nodes.lock().clear();
    }
}

impl ReadyNotifier for Reactor {
    fn notify(&self, addr: NodeAddr) {
        {
            let mut ready = self.ready.lock();
            if ready.shutdown {
                return;
            }
            if ready.queued.insert(addr) {
                ready.queue.push_back(addr);
            }
        }
        self.cv.notify_one();
    }
}

fn reactor_loop(reactor: &Reactor) {
    loop {
        let addr = {
            let mut ready = reactor.ready.lock();
            loop {
                if ready.shutdown {
                    return;
                }
                if let Some(addr) = ready.queue.pop_front() {
                    ready.queued.remove(&addr);
                    break addr;
                }
                reactor.cv.wait(&mut ready);
            }
        };
        let drain = reactor.nodes.lock().get(&addr).cloned();
        let Some(drain) = drain else { continue };
        match drain() {
            DrainOutcome::Idle => {}
            DrainOutcome::More => reactor.notify(addr),
            DrainOutcome::Closed => reactor.deregister(addr),
        }
    }
}

struct RuntimeInner {
    pool: WorkerPool,
    timer: TimerWheel,
    reactor: Arc<Reactor>,
    /// Fleet-level registry that scoped per-node registries delegate to.
    fleet_registry: Arc<Registry>,
    /// When set, new nodes get a scoped registry (shared metric cells)
    /// instead of pre-registering full families per device.
    scoped_metrics: AtomicBool,
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        self.reactor.shutdown();
        self.timer.shutdown();
        self.pool.shutdown();
    }
}

/// Cloneable handle to a shared runtime. The runtime's threads stop
/// when the last handle (every node spawned on it holds one) is gone.
#[derive(Clone)]
pub struct SharedRuntime {
    inner: Arc<RuntimeInner>,
}

impl SharedRuntime {
    /// Creates a standalone runtime (tests, explicit wiring). Most
    /// callers want [`runtime_for`], which shares one runtime per
    /// transport backend.
    #[must_use]
    pub fn new(label: &str) -> Self {
        let pool = WorkerPool::for_runtime(format!("syd-rt-{label}"));
        let timer = TimerWheel::new(label);
        let reactor = Reactor::start(label);
        // Liveness watchdog: if every worker is blocked on nested RPCs
        // with work still queued, grow the pool past its soft cap.
        let watchdog_pool = pool.clone();
        timer.schedule_periodic(WATCHDOG_TICK, move || watchdog_pool.kick());
        SharedRuntime {
            inner: Arc::new(RuntimeInner {
                pool,
                timer,
                reactor,
                fleet_registry: Arc::new(Registry::new()),
                scoped_metrics: AtomicBool::new(false),
            }),
        }
    }

    /// The shared worker pool jobs are dispatched onto.
    #[must_use]
    pub fn pool(&self) -> &WorkerPool {
        &self.inner.pool
    }

    /// The shared timer wheel for deadlines and periodic sweeps.
    #[must_use]
    pub fn timer(&self) -> &TimerWheel {
        &self.inner.timer
    }

    /// The reactor as a transport readiness notifier, for
    /// [`syd_transport::TransportEndpoint::set_ready_notifier`].
    #[must_use]
    pub fn notifier(&self) -> Arc<dyn ReadyNotifier> {
        Arc::clone(&self.inner.reactor) as Arc<dyn ReadyNotifier>
    }

    /// Registers a node's drain callback with the reactor.
    pub fn register_node(&self, addr: NodeAddr, drain: DrainFn) {
        self.inner.reactor.register(addr, drain);
    }

    /// Deregisters a node (idempotent).
    pub fn deregister_node(&self, addr: NodeAddr) {
        self.inner.reactor.deregister(addr);
    }

    /// Number of nodes currently registered with the reactor.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.inner.reactor.registered_nodes()
    }

    /// The fleet-level registry scoped per-node registries delegate to.
    #[must_use]
    pub fn fleet_registry(&self) -> &Arc<Registry> {
        &self.inner.fleet_registry
    }

    /// Enables/disables scoped per-node registries for *subsequently
    /// spawned* nodes (fleet mode: metric cells shared fleet-wide
    /// instead of duplicated 10k times). Off by default so unit tests
    /// keep per-device counters.
    pub fn set_scoped_metrics(&self, on: bool) {
        self.inner.scoped_metrics.store(on, Ordering::Relaxed);
    }

    /// Whether scoped per-node registries are enabled.
    #[must_use]
    pub fn scoped_metrics(&self) -> bool {
        self.inner.scoped_metrics.load(Ordering::Relaxed)
    }

    /// A registry for a newly spawned node: scoped (delegating to the
    /// fleet registry) in fleet mode, private otherwise.
    #[must_use]
    pub fn node_registry(&self) -> Arc<Registry> {
        if self.scoped_metrics() {
            Arc::new(Registry::with_parent(Arc::clone(
                &self.inner.fleet_registry,
            )))
        } else {
            Arc::new(Registry::new())
        }
    }
}

/// Global switch: do `Node::spawn` / `Node::spawn_on` multiplex onto the
/// shared runtime (default) or keep the legacy thread-per-device path?
/// Seeded once from the environment: `SYD_RUNTIME=legacy` flips the
/// default off (CI runs the full suite both ways).
fn shared_runtime_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let legacy = std::env::var("SYD_RUNTIME").is_ok_and(|v| v.eq_ignore_ascii_case("legacy"));
        AtomicBool::new(!legacy)
    })
}

/// Routes subsequent `Node::spawn` / `Node::spawn_on` calls onto the
/// shared event-driven runtime (`true`, default) or the legacy
/// thread-per-device path (`false`). Same A/B pattern as
/// `set_batched_resolve`.
pub fn set_shared_runtime(on: bool) {
    shared_runtime_flag().store(on, Ordering::Relaxed);
}

/// Current state of the [`set_shared_runtime`] switch.
#[must_use]
pub fn shared_runtime_enabled() -> bool {
    shared_runtime_flag().load(Ordering::Relaxed)
}

/// One shared runtime per transport backend, keyed by the backend's
/// registry identity and kept alive by the nodes spawned on it: the
/// map holds weak references, so an idle backend's runtime (threads
/// included) disappears with its last node.
fn runtime_map() -> &'static Mutex<HashMap<usize, Weak<RuntimeInner>>> {
    static RUNTIMES: OnceLock<Mutex<HashMap<usize, Weak<RuntimeInner>>>> = OnceLock::new();
    RUNTIMES.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The shared runtime for `transport`, creating it on first use.
/// Backend identity is the metrics registry allocation, which every
/// clone/handle of one backend shares.
#[must_use]
pub fn runtime_for(transport: &dyn Transport) -> SharedRuntime {
    let key = Arc::as_ptr(transport.metrics()) as usize;
    let mut map = runtime_map().lock();
    map.retain(|_, weak| weak.strong_count() > 0);
    if let Some(inner) = map.get(&key).and_then(Weak::upgrade) {
        return SharedRuntime { inner };
    }
    let runtime = SharedRuntime::new(transport.kind());
    map.insert(key, Arc::downgrade(&runtime.inner));
    runtime
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn reactor_drains_registered_nodes_round_robin() {
        let rt = SharedRuntime::new("t");
        let a_hits = Arc::new(AtomicUsize::new(0));
        let b_hits = Arc::new(AtomicUsize::new(0));
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        let (ah, bh) = (Arc::clone(&a_hits), Arc::clone(&b_hits));
        // Both report More twice, then Idle: the reactor must interleave.
        rt.register_node(
            a,
            Arc::new(move || {
                if ah.fetch_add(1, Ordering::SeqCst) < 2 {
                    DrainOutcome::More
                } else {
                    DrainOutcome::Idle
                }
            }),
        );
        rt.register_node(
            b,
            Arc::new(move || {
                if bh.fetch_add(1, Ordering::SeqCst) < 2 {
                    DrainOutcome::More
                } else {
                    DrainOutcome::Idle
                }
            }),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while a_hits.load(Ordering::SeqCst) < 3 || b_hits.load(Ordering::SeqCst) < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "reactor starved a node"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn closed_outcome_deregisters() {
        let rt = SharedRuntime::new("t");
        let addr = NodeAddr::new(7);
        rt.register_node(addr, Arc::new(|| DrainOutcome::Closed));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rt.nodes() != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "node not deregistered"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn duplicate_notifications_coalesce() {
        let rt = SharedRuntime::new("t");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let addr = NodeAddr::new(3);
        rt.register_node(
            addr,
            Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                DrainOutcome::Idle
            }),
        );
        let notifier = rt.notifier();
        for _ in 0..100 {
            notifier.notify(addr);
        }
        std::thread::sleep(Duration::from_millis(300));
        let seen = hits.load(Ordering::SeqCst);
        // 100 notifications against a 20ms drain: far fewer drains than
        // notifications proves duplicate suppression.
        assert!(
            (1..30).contains(&seen),
            "expected coalescing, saw {seen} drains"
        );
    }

    #[test]
    fn scoped_registries_share_fleet_cells() {
        let rt = SharedRuntime::new("t");
        rt.set_scoped_metrics(true);
        let a = rt.node_registry();
        let b = rt.node_registry();
        a.counter("x").inc();
        b.counter("x").inc();
        assert_eq!(rt.fleet_registry().counter("x").get(), 2);
    }

    #[test]
    fn runtime_threads_stop_with_last_handle() {
        let before = thread_count();
        {
            let rt = SharedRuntime::new("t");
            rt.register_node(NodeAddr::new(1), Arc::new(|| DrainOutcome::Idle));
            assert!(thread_count() > before);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while thread_count() > before {
            assert!(
                std::time::Instant::now() < deadline,
                "runtime threads leaked: {} > {before}",
                thread_count()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task").map_or(1, Iterator::count)
    }
}
