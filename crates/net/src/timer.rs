//! A shared timer wheel: one thread services every deadline in a fleet.
//!
//! The thread-per-device runtime paid one `syd-events-scheduler` thread
//! per device for periodic work and parked one caller thread per RPC
//! deadline. The wheel collapses all of that into a single min-heap of
//! `(due, seq, id)` entries serviced by one `syd-timer` thread: one-shot
//! deadlines (RPC timeouts), periodic tasks (link-expiry and
//! stale-session sweeps) and anything else the runtime schedules.
//!
//! Deadlines that fall due together are collected under one lock hold
//! and run as a batch ([`TimerWheel::batches`] counts them), so a burst
//! of 10k simultaneous timeouts costs one wake-up, not 10k. Cancelled
//! ids may leave stale heap entries behind; they are skipped at pop
//! time, which keeps [`TimerWheel::cancel`] O(1).
//!
//! Actions run on the timer thread and must not block: hand heavy work
//! to a [`crate::pool::WorkerPool`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use syd_telemetry::trace;

/// Handle to a scheduled entry; used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

enum Task {
    /// Fires once, then the entry is gone.
    OneShot(Box<dyn FnOnce() + Send>),
    /// Re-armed after every firing until cancelled.
    Periodic {
        interval: Duration,
        action: Arc<dyn Fn() + Send + Sync>,
    },
}

/// What the loop runs after releasing the state lock.
enum Fired {
    Once(Box<dyn FnOnce() + Send>),
    Again(Arc<dyn Fn() + Send + Sync>),
}

struct TimerState {
    /// Min-heap of (due, seq, id). `seq` makes ordering total and FIFO
    /// among entries with identical deadlines.
    heap: BinaryHeap<Reverse<(Instant, u64, TimerId)>>,
    /// Live entries; an id present in `heap` but absent here was
    /// cancelled and is skipped at pop time.
    tasks: HashMap<TimerId, Task>,
    shutdown: bool,
}

struct TimerInner {
    state: Mutex<TimerState>,
    cv: Condvar,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    fired: AtomicU64,
    batches: AtomicU64,
    thread: Mutex<Option<JoinHandle<()>>>,
}

/// Cloneable handle to a shared timer wheel. All clones talk to the same
/// heap and thread; the wheel stops on [`TimerWheel::shutdown`] (the
/// owning runtime calls it when the last device is gone).
#[derive(Clone)]
pub struct TimerWheel {
    inner: Arc<TimerInner>,
}

impl TimerWheel {
    /// Creates a wheel and starts its service thread.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let inner = Arc::new(TimerInner {
            state: Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                tasks: HashMap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            thread: Mutex::new(None),
        });
        let loop_inner = Arc::clone(&inner);
        // A wheel without its thread never fires anything; construction
        // failure is unrecoverable, so panicking is the contract.
        #[allow(clippy::expect_used)]
        let handle = std::thread::Builder::new()
            .name(format!("syd-timer-{name}"))
            .spawn(move || timer_loop(&loop_inner))
            .expect("spawn timer thread");
        *inner.thread.lock() = Some(handle);
        TimerWheel { inner }
    }

    fn insert(&self, due: Instant, task: Task) -> TimerId {
        let id = TimerId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = self.inner.state.lock();
            state.tasks.insert(id, task);
            state.heap.push(Reverse((due, seq, id)));
        }
        self.inner.cv.notify_all();
        id
    }

    /// Schedules `action` to run once after `delay`.
    pub fn schedule(&self, delay: Duration, action: impl FnOnce() + Send + 'static) -> TimerId {
        self.schedule_at(Instant::now() + delay, action)
    }

    /// Schedules `action` to run once at `due`. A deadline already in
    /// the past (clock skew, slow caller) fires on the next wake-up
    /// rather than being dropped.
    ///
    /// The scheduler's trace context is captured here and re-entered
    /// around the action on the timer thread, so deadline work (RPC
    /// timeouts and their retries) stays attributed to its trace.
    pub fn schedule_at(&self, due: Instant, action: impl FnOnce() + Send + 'static) -> TimerId {
        let ctx = trace::current();
        self.insert(
            due,
            Task::OneShot(Box::new(move || {
                let _span = ctx.map(trace::enter);
                action();
            })),
        )
    }

    /// Schedules `action` to run every `interval`, first firing one
    /// `interval` from now. Re-armed from completion time, so a slow
    /// action delays its next firing instead of bursting to catch up.
    ///
    /// Like [`TimerWheel::schedule_at`], the scheduling thread's trace
    /// context is restored around every firing.
    pub fn schedule_periodic(
        &self,
        interval: Duration,
        action: impl Fn() + Send + Sync + 'static,
    ) -> TimerId {
        let ctx = trace::current();
        self.insert(
            Instant::now() + interval,
            Task::Periodic {
                interval,
                action: Arc::new(move || {
                    let _span = ctx.map(trace::enter);
                    action();
                }),
            },
        )
    }

    /// Cancels an entry. Returns whether it was still pending; a
    /// one-shot that already fired (or an id cancelled twice) returns
    /// `false`. The entry's action never runs after `cancel` returns
    /// `true`.
    pub fn cancel(&self, id: TimerId) -> bool {
        self.inner.state.lock().tasks.remove(&id).is_some()
    }

    /// Number of live (scheduled, not yet fired/cancelled) entries.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inner.state.lock().tasks.len()
    }

    /// Total actions run since creation.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.inner.fired.load(Ordering::Relaxed)
    }

    /// Wake-ups that ran at least one action — `fired() / batches()`
    /// is the coalescing factor.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.inner.batches.load(Ordering::Relaxed)
    }

    /// Stops the service thread, dropping all pending entries. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock();
            if state.shutdown {
                return;
            }
            state.shutdown = true;
            state.tasks.clear();
            state.heap.clear();
        }
        self.inner.cv.notify_all();
        let handle = self.inner.thread.lock().take();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

fn timer_loop(inner: &TimerInner) {
    loop {
        let mut due: Vec<Fired> = Vec::new();
        {
            let mut state = inner.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                let now = Instant::now();
                collect_due(&mut state, now, &mut due);
                if !due.is_empty() {
                    break;
                }
                match state.heap.peek() {
                    Some(&Reverse((at, _, _))) => {
                        let wait = at.saturating_duration_since(Instant::now());
                        if !wait.is_zero() {
                            inner.cv.wait_for(&mut state, wait);
                        }
                    }
                    None => {
                        inner.cv.wait(&mut state);
                    }
                }
            }
        }
        // Run outside the lock: actions may reschedule or cancel freely.
        inner.batches.fetch_add(1, Ordering::Relaxed);
        inner.fired.fetch_add(due.len() as u64, Ordering::Relaxed);
        for action in due {
            match action {
                Fired::Once(f) => f(),
                Fired::Again(f) => f(),
            }
        }
    }
}

/// Pops every entry due at `now` into `out`, re-arming periodic tasks
/// and silently dropping cancelled ids.
fn collect_due(state: &mut TimerState, now: Instant, out: &mut Vec<Fired>) {
    let mut seq_bump = 0u64;
    while let Some(&Reverse((at, seq, id))) = state.heap.peek() {
        if at > now {
            break;
        }
        state.heap.pop();
        match state.tasks.remove(&id) {
            None => {} // cancelled; stale heap entry
            Some(Task::OneShot(f)) => out.push(Fired::Once(f)),
            Some(Task::Periodic { interval, action }) => {
                out.push(Fired::Again(Arc::clone(&action)));
                // Re-arm relative to now so a stalled wheel doesn't
                // burst to catch up; bump seq to keep ordering total.
                seq_bump += 1;
                state
                    .heap
                    .push(Reverse((now + interval, seq + seq_bump, id)));
                state.tasks.insert(id, Task::Periodic { interval, action });
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn one_shot_fires_once() {
        let wheel = TimerWheel::new("t");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        wheel.schedule(ms(10), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(ms(100));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(wheel.pending(), 0);
        wheel.shutdown();
    }

    #[test]
    fn timer_actions_inherit_the_schedulers_trace_context() {
        let wheel = TimerWheel::new("t");
        let ctx = trace::root_span();
        let observed = Arc::new(Mutex::new((None, None)));
        {
            let _g = trace::enter(ctx);
            let o = Arc::clone(&observed);
            wheel.schedule(ms(10), move || {
                o.lock().0 = Some(trace::current());
            });
            let o = Arc::clone(&observed);
            wheel.schedule_periodic(ms(10), move || {
                o.lock().1 = Some(trace::current());
            });
        }
        std::thread::sleep(ms(100));
        let seen = *observed.lock();
        assert_eq!(seen.0, Some(Some(ctx)), "one-shot lost the trace ctx");
        assert_eq!(seen.1, Some(Some(ctx)), "periodic lost the trace ctx");
        wheel.shutdown();
    }

    #[test]
    fn deadlines_fire_in_order() {
        let wheel = TimerWheel::new("t");
        let order = Arc::new(Mutex::new(Vec::new()));
        // Schedule out of order; absolute deadlines must sort them.
        let base = Instant::now() + ms(30);
        for (label, offset) in [(3u32, 40), (1, 0), (2, 20)] {
            let o = Arc::clone(&order);
            wheel.schedule_at(base + ms(offset), move || o.lock().push(label));
        }
        std::thread::sleep(ms(200));
        assert_eq!(*order.lock(), vec![1, 2, 3]);
        wheel.shutdown();
    }

    #[test]
    fn identical_deadlines_coalesce_into_one_batch() {
        let wheel = TimerWheel::new("t");
        let hits = Arc::new(AtomicUsize::new(0));
        let due = Instant::now() + ms(40);
        for _ in 0..64 {
            let h = Arc::clone(&hits);
            wheel.schedule_at(due, move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        std::thread::sleep(ms(200));
        assert_eq!(hits.load(Ordering::SeqCst), 64);
        assert_eq!(wheel.fired(), 64);
        // All 64 shared one deadline: far fewer wake-ups than firings.
        assert!(
            wheel.batches() <= 4,
            "64 coincident deadlines took {} batches",
            wheel.batches()
        );
        wheel.shutdown();
    }

    #[test]
    fn cancel_prevents_firing_and_reports_liveness() {
        let wheel = TimerWheel::new("t");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let id = wheel.schedule(ms(50), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(wheel.cancel(id), "entry was pending");
        assert!(!wheel.cancel(id), "second cancel is a no-op");
        std::thread::sleep(ms(120));
        assert_eq!(hits.load(Ordering::SeqCst), 0, "cancelled action ran");
        assert_eq!(wheel.pending(), 0);
        wheel.shutdown();
    }

    #[test]
    fn past_deadline_fires_instead_of_being_dropped() {
        // Clock-skew tolerance: a deadline computed from a stale or
        // skewed monotonic reading may already be in the past.
        let wheel = TimerWheel::new("t");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        wheel.schedule_at(Instant::now() - Duration::from_secs(5), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(ms(100));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        wheel.shutdown();
    }

    #[test]
    fn periodic_fires_repeatedly_until_cancelled() {
        let wheel = TimerWheel::new("t");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let id = wheel.schedule_periodic(ms(10), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(ms(150));
        let seen = hits.load(Ordering::SeqCst);
        assert!(seen >= 3, "periodic fired only {seen} times");
        assert!(wheel.cancel(id));
        let at_cancel = hits.load(Ordering::SeqCst);
        std::thread::sleep(ms(60));
        assert!(
            hits.load(Ordering::SeqCst) <= at_cancel + 1,
            "periodic kept firing after cancel"
        );
        assert_eq!(wheel.pending(), 0);
        wheel.shutdown();
    }

    #[test]
    fn shutdown_drops_pending_and_is_idempotent() {
        let wheel = TimerWheel::new("t");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        wheel.schedule(ms(50), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        wheel.shutdown();
        wheel.shutdown();
        std::thread::sleep(ms(100));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn actions_can_reschedule_from_the_timer_thread() {
        let wheel = TimerWheel::new("t");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let w = wheel.clone();
        wheel.schedule(ms(10), move || {
            h.fetch_add(1, Ordering::SeqCst);
            let h2 = Arc::clone(&h);
            w.schedule(ms(10), move || {
                h2.fetch_add(1, Ordering::SeqCst);
            });
        });
        std::thread::sleep(ms(150));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        wheel.shutdown();
    }
}
