//! The shared-medium network and its router thread.
//!
//! All endpoints of one [`Network`] share a single router — deliberately so:
//! the paper's devices shared one 802.11b channel. The router keeps a
//! min-heap of in-flight messages ordered by due time and delivers each to
//! its destination endpoint's channel, applying the loss, partition and
//! connection rules along the way.
//!
//! Messages are fully encoded with the `syd-wire` codec at send time and
//! decoded by the receiving endpoint, so every hop exercises the real wire
//! format and the stats counters see real byte counts.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use syd_types::{NodeAddr, SydError, SydResult};
use syd_wire::{decode_from_slice, encode_to_vec, Envelope, Payload, Response};

use crate::config::NetConfig;
use crate::stats::{NetStats, StatsSnapshot};

/// An in-flight message.
struct Scheduled {
    due: Instant,
    seq: u64,
    src: NodeAddr,
    dst: NodeAddr,
    bytes: Vec<u8>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Due-time order, sequence number as FIFO tie-break.
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}

struct EndpointSlot {
    tx: Sender<Vec<u8>>,
    connected: bool,
}

struct RouterState {
    heap: BinaryHeap<Reverse<Scheduled>>,
    endpoints: HashMap<NodeAddr, EndpointSlot>,
    /// Normalized (low, high) pairs that cannot exchange messages.
    partitions: HashSet<(NodeAddr, NodeAddr)>,
    rng: StdRng,
    cfg: NetConfig,
    shutdown: bool,
}

struct Inner {
    state: Mutex<RouterState>,
    cv: Condvar,
    stats: NetStats,
    next_addr: AtomicU64,
    next_seq: AtomicU64,
}

/// Handle to a simulated network. Cloning shares the network; the router
/// thread stops when the last handle is dropped (or on [`Network::shutdown`]).
#[derive(Clone)]
pub struct Network {
    inner: Arc<Inner>,
    _owner: Arc<OwnerToken>,
}

/// Shuts the router down when the last `Network` clone is dropped.
struct OwnerToken {
    inner: Arc<Inner>,
}

impl Drop for OwnerToken {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock();
        state.shutdown = true;
        drop(state);
        self.inner.cv.notify_all();
    }
}

fn norm_pair(a: NodeAddr, b: NodeAddr) -> (NodeAddr, NodeAddr) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// Creates a network and starts its router thread.
    pub fn new(cfg: NetConfig) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(RouterState {
                heap: BinaryHeap::new(),
                endpoints: HashMap::new(),
                partitions: HashSet::new(),
                rng: StdRng::seed_from_u64(cfg.seed),
                cfg,
                shutdown: false,
            }),
            cv: Condvar::new(),
            stats: NetStats::default(),
            next_addr: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
        });
        let router_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("syd-net-router".into())
            .spawn(move || router_loop(router_inner))
            .expect("spawn router thread");
        let owner = Arc::new(OwnerToken {
            inner: Arc::clone(&inner),
        });
        Network {
            inner,
            _owner: owner,
        }
    }

    /// Creates a network with the ideal (lossless, instant) configuration.
    pub fn ideal() -> Self {
        Self::new(NetConfig::ideal())
    }

    /// Registers a new endpoint and returns its handle.
    pub fn register(&self) -> Endpoint {
        let addr = NodeAddr::new(self.inner.next_addr.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = crossbeam_channel::unbounded();
        let mut state = self.inner.state.lock();
        state.endpoints.insert(
            addr,
            EndpointSlot {
                tx,
                connected: true,
            },
        );
        drop(state);
        Endpoint {
            addr,
            rx,
            net: self.clone(),
        }
    }

    /// Removes an endpoint; all further traffic to it counts as unreachable.
    pub fn unregister(&self, addr: NodeAddr) {
        let mut state = self.inner.state.lock();
        state.endpoints.remove(&addr);
    }

    /// Marks an endpoint (dis)connected — the paper's mobile device going
    /// out of range. Messages to a disconnected endpoint are dropped (or
    /// fail fast, per [`NetConfig::fail_fast_disconnected`]).
    pub fn set_connected(&self, addr: NodeAddr, connected: bool) {
        let mut state = self.inner.state.lock();
        if let Some(slot) = state.endpoints.get_mut(&addr) {
            slot.connected = connected;
        }
    }

    /// True if the endpoint exists and is connected.
    pub fn is_connected(&self, addr: NodeAddr) -> bool {
        let state = self.inner.state.lock();
        state.endpoints.get(&addr).is_some_and(|s| s.connected)
    }

    /// Inserts or removes a bidirectional partition between two endpoints.
    pub fn set_partitioned(&self, a: NodeAddr, b: NodeAddr, partitioned: bool) {
        let mut state = self.inner.state.lock();
        let pair = norm_pair(a, b);
        if partitioned {
            state.partitions.insert(pair);
        } else {
            state.partitions.remove(&pair);
        }
    }

    /// Removes every partition.
    pub fn heal_partitions(&self) {
        let mut state = self.inner.state.lock();
        state.partitions.clear();
    }

    /// Replaces the latency/loss configuration at runtime (the RNG keeps
    /// its state so traffic remains reproducible for a fixed seed).
    pub fn reconfigure(&self, cfg: NetConfig) {
        let mut state = self.inner.state.lock();
        state.cfg = cfg;
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Stops the router thread. Idempotent; messages still in flight are
    /// discarded.
    pub fn shutdown(&self) {
        let mut state = self.inner.state.lock();
        state.shutdown = true;
        drop(state);
        self.inner.cv.notify_all();
    }

    /// Injects an envelope into the network from `env.src`.
    ///
    /// Applies loss and fail-fast rules, samples latency, and schedules
    /// delivery. Returns the encoded size on success. `Unreachable` means
    /// the destination has never been registered (or was unregistered).
    pub fn send(&self, env: Envelope) -> SydResult<usize> {
        let bytes = encode_to_vec(&env);
        let size = bytes.len();
        let mut state = self.inner.state.lock();
        if state.shutdown {
            return Err(SydError::Shutdown);
        }
        self.inner.stats.on_sent(size);

        let Some(slot) = state.endpoints.get(&env.dst) else {
            self.inner.stats.on_dropped_unreachable();
            return Err(SydError::Unreachable(env.dst));
        };

        // Fail fast for requests to a disconnected device: synthesize an
        // error response with the same latency as a real round trip half.
        if !slot.connected && state.cfg.fail_fast_disconnected {
            if let Payload::Request(req) = &env.payload {
                let reply = Envelope::new(
                    env.dst,
                    env.src,
                    Payload::Response(Response {
                        id: req.id,
                        result: Err(SydError::Disconnected(env.dst)),
                    }),
                );
                let reply_bytes = encode_to_vec(&reply);
                self.inner.stats.on_dropped_disconnected();
                let due = Instant::now() + sample_latency(&mut state);
                let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
                state.heap.push(Reverse(Scheduled {
                    due,
                    seq,
                    src: env.dst,
                    dst: env.src,
                    bytes: reply_bytes,
                }));
                drop(state);
                self.inner.cv.notify_all();
                return Ok(size);
            }
        }

        // Random loss.
        let loss = state.cfg.loss;
        if loss > 0.0 && state.rng.gen::<f64>() < loss {
            self.inner.stats.on_dropped_loss();
            return Ok(size);
        }

        let due = Instant::now() + sample_latency(&mut state);
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        state.heap.push(Reverse(Scheduled {
            due,
            seq,
            src: env.src,
            dst: env.dst,
            bytes,
        }));
        drop(state);
        self.inner.cv.notify_all();
        Ok(size)
    }
}

fn sample_latency(state: &mut RouterState) -> Duration {
    let model = state.cfg.latency;
    if model.jitter.is_zero() {
        return model.base;
    }
    let jitter_micros = state.rng.gen_range(0..=model.jitter.as_micros() as u64);
    model.base + Duration::from_micros(jitter_micros)
}

fn router_loop(inner: Arc<Inner>) {
    let mut state = inner.state.lock();
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        // Deliver everything due.
        while let Some(Reverse(head)) = state.heap.peek() {
            if head.due > now {
                break;
            }
            let msg = state.heap.pop().expect("peeked").0;
            deliver(&inner, &mut state, msg);
        }
        match state.heap.peek() {
            Some(Reverse(head)) => {
                let wait = head.due.saturating_duration_since(Instant::now());
                if !wait.is_zero() {
                    inner.cv.wait_for(&mut state, wait);
                }
            }
            None => {
                inner.cv.wait(&mut state);
            }
        }
    }
}

fn deliver(inner: &Inner, state: &mut RouterState, msg: Scheduled) {
    // Partition and connection state are re-checked at delivery time so a
    // partition raised while a message is in flight still swallows it.
    if state.partitions.contains(&norm_pair(msg.src, msg.dst)) {
        inner.stats.on_dropped_partition();
        return;
    }
    match state.endpoints.get(&msg.dst) {
        None => inner.stats.on_dropped_unreachable(),
        Some(slot) if !slot.connected => inner.stats.on_dropped_disconnected(),
        Some(slot) => {
            if slot.tx.send(msg.bytes).is_ok() {
                inner.stats.on_delivered();
            } else {
                inner.stats.on_dropped_unreachable();
            }
        }
    }
}

/// A registered endpoint: the network-facing half of a device.
pub struct Endpoint {
    addr: NodeAddr,
    rx: Receiver<Vec<u8>>,
    net: Network,
}

impl Endpoint {
    /// This endpoint's address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The network this endpoint belongs to.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Sends a payload to `dst`.
    pub fn send(&self, dst: NodeAddr, payload: Payload) -> SydResult<usize> {
        self.net.send(Envelope::new(self.addr, dst, payload))
    }

    /// Blocks until a message arrives (or the endpoint is unregistered).
    pub fn recv(&self) -> SydResult<Envelope> {
        let bytes = self.rx.recv().map_err(|_| SydError::Shutdown)?;
        decode_from_slice(&bytes)
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> SydResult<Envelope> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => decode_from_slice(&bytes),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                Err(SydError::Timeout(syd_types::RequestId::new(0)))
            }
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(SydError::Shutdown),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<SydResult<Envelope>> {
        match self.rx.try_recv() {
            Ok(bytes) => Some(decode_from_slice(&bytes)),
            Err(crossbeam_channel::TryRecvError::Empty) => None,
            Err(crossbeam_channel::TryRecvError::Disconnected) => Some(Err(SydError::Shutdown)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyModel;
    use syd_types::{RequestId, ServiceName, UserId, Value};
    use syd_wire::{EventMsg, Request};

    fn event(topic: &str) -> Payload {
        Payload::Event(EventMsg {
            topic: topic.into(),
            source: UserId::new(1),
            payload: Value::Null,
        })
    }

    fn request(id: u64) -> Payload {
        Payload::Request(Request {
            id: RequestId::new(id),
            caller: UserId::new(1),
            target: UserId::default(),
            credentials: vec![],
            service: ServiceName::new("svc"),
            method: "m".into(),
            args: vec![].into(),
            trace: None,
        })
    }

    #[test]
    fn point_to_point_delivery() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        a.send(b.addr(), event("hello")).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.src, a.addr());
        assert_eq!(env.dst, b.addr());
        match env.payload {
            Payload::Event(ev) => assert_eq!(ev.topic, "hello"),
            other => panic!("unexpected payload {other:?}"),
        }
        // The router increments `delivered` after handing the bytes to
        // the endpoint, so the receiver can get here first — wait for
        // the counter rather than racing it.
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        while net.stats().delivered < 1 {
            assert!(std::time::Instant::now() < deadline, "delivery uncounted");
            std::thread::yield_now();
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.delivered, 1);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn fifo_order_preserved_with_fixed_latency() {
        let net = Network::new(
            NetConfig::ideal().with_latency(LatencyModel::fixed(Duration::from_millis(1))),
        );
        let a = net.register();
        let b = net.register();
        for i in 0..50 {
            a.send(b.addr(), event(&format!("e{i}"))).unwrap();
        }
        for i in 0..50 {
            let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
            match env.payload {
                Payload::Event(ev) => assert_eq!(ev.topic, format!("e{i}")),
                other => panic!("unexpected payload {other:?}"),
            }
        }
    }

    #[test]
    fn unreachable_destination_is_an_error() {
        let net = Network::ideal();
        let a = net.register();
        let err = a.send(NodeAddr::new(9999), event("x")).unwrap_err();
        assert_eq!(err, SydError::Unreachable(NodeAddr::new(9999)));
        assert_eq!(net.stats().dropped_unreachable, 1);
    }

    #[test]
    fn unregister_makes_endpoint_unreachable() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        net.unregister(b.addr());
        assert!(a.send(b.addr(), event("x")).is_err());
    }

    #[test]
    fn total_loss_drops_everything() {
        let net = Network::new(NetConfig::ideal().with_loss(1.0));
        let a = net.register();
        let b = net.register();
        a.send(b.addr(), event("x")).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(net.stats().dropped_loss, 1);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn partition_blocks_both_directions() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        net.set_partitioned(a.addr(), b.addr(), true);
        a.send(b.addr(), event("ab")).unwrap();
        b.send(a.addr(), event("ba")).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
        assert!(a.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(net.stats().dropped_partition, 2);

        net.heal_partitions();
        a.send(b.addr(), event("after")).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn disconnected_request_fails_fast_with_error_response() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        net.set_connected(b.addr(), false);
        a.send(b.addr(), request(42)).unwrap();
        let env = a.recv_timeout(Duration::from_secs(1)).unwrap();
        match env.payload {
            Payload::Response(resp) => {
                assert_eq!(resp.id, RequestId::new(42));
                assert_eq!(resp.result, Err(SydError::Disconnected(b.addr())));
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn disconnected_event_is_silently_dropped() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        net.set_connected(b.addr(), false);
        a.send(b.addr(), event("x")).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(net.stats().dropped_disconnected, 1);
    }

    #[test]
    fn reconnect_restores_delivery() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        net.set_connected(b.addr(), false);
        assert!(!net.is_connected(b.addr()));
        net.set_connected(b.addr(), true);
        assert!(net.is_connected(b.addr()));
        a.send(b.addr(), event("back")).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn latency_delays_delivery() {
        let net = Network::new(
            NetConfig::ideal().with_latency(LatencyModel::fixed(Duration::from_millis(30))),
        );
        let a = net.register();
        let b = net.register();
        let start = Instant::now();
        a.send(b.addr(), event("slow")).unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "delivered too early: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn same_seed_same_loss_pattern() {
        let run = |seed: u64| -> Vec<bool> {
            let net = Network::new(NetConfig::ideal().with_loss(0.5).with_seed(seed));
            let a = net.register();
            let b = net.register();
            (0..40)
                .map(|_| {
                    a.send(b.addr(), event("x")).unwrap();
                    b.recv_timeout(Duration::from_millis(20)).is_ok()
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn send_after_shutdown_errors() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        net.shutdown();
        assert_eq!(a.send(b.addr(), event("x")).unwrap_err(), SydError::Shutdown);
    }

    #[test]
    fn stats_delta_counts_one_exchange() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        let before = net.stats();
        a.send(b.addr(), event("one")).unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        // The router increments `delivered` after handing the bytes to the
        // endpoint, so wait for the counter rather than racing it.
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        while net.stats().delivered < before.delivered + 1
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        let delta = before.delta(&net.stats());
        assert_eq!(delta.sent, 1);
        assert_eq!(delta.delivered, 1);
    }
}

#[cfg(test)]
mod reconfigure_tests {
    use super::*;
    use syd_types::{UserId, Value};
    use syd_wire::EventMsg;

    fn event() -> Payload {
        Payload::Event(EventMsg {
            topic: "t".into(),
            source: UserId::new(1),
            payload: Value::Null,
        })
    }

    #[test]
    fn reconfigure_changes_behaviour_at_runtime() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        a.send(b.addr(), event()).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());

        // Switch to total loss: traffic stops.
        net.reconfigure(NetConfig::ideal().with_loss(1.0));
        a.send(b.addr(), event()).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());

        // And back.
        net.reconfigure(NetConfig::ideal());
        a.send(b.addr(), event()).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let net = Network::ideal();
        let a = net.register();
        let b = net.register();
        assert!(b.try_recv().is_none());
        a.send(b.addr(), event()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        loop {
            match b.try_recv() {
                Some(Ok(env)) => {
                    assert_eq!(env.src, a.addr());
                    break;
                }
                Some(Err(e)) => panic!("decode error: {e}"),
                None => assert!(std::time::Instant::now() < deadline, "never arrived"),
            }
        }
    }

    #[test]
    fn many_endpoints_share_one_router() {
        let net = Network::ideal();
        let endpoints: Vec<Endpoint> = (0..32).map(|_| net.register()).collect();
        // All-to-one burst.
        for ep in &endpoints[1..] {
            ep.send(endpoints[0].addr(), event()).unwrap();
        }
        for _ in 1..32 {
            endpoints[0].recv_timeout(Duration::from_secs(1)).unwrap();
        }
        assert_eq!(net.stats().delivered, 31);
    }
}
