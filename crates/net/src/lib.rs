//! Simulated network substrate for SyD.
//!
//! The paper's prototype ran on a wireless LAN of iPAQ handhelds, speaking
//! raw TCP sockets (§3.1, §5.2). That hardware is replaced here by an
//! in-process packet network with the properties that matter to the
//! middleware above it:
//!
//! * **Addressed endpoints** ([`Endpoint`]) registered on a shared
//!   [`Network`], with messages encoded through the real wire codec on every
//!   hop (so byte counts and codec behaviour are exercised end to end).
//! * **Weak connectivity**: configurable latency and jitter, random loss,
//!   explicit partitions, and per-endpoint disconnection — the mobility
//!   conditions §5.1/§5.2 design for.
//! * **A router thread** delivering messages in timestamp order from a
//!   binary heap (the shared medium — one radio channel, like the LAN).
//! * **An RPC layer** ([`Node`]) with correlation ids, deadlines, retries
//!   and a grow-on-demand worker pool so nested invocations (cancel
//!   cascades, negotiations) can never deadlock a dispatch thread.
//!
//! Everything above this crate (`syd-core`, the applications) sees only
//! logical operations: `call`, `call_async`, `publish_event`, `serve`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod network;
pub mod node;
pub mod pool;
pub mod rpc;
pub mod stats;

pub use config::{LatencyModel, NetConfig};
pub use network::{Endpoint, Network};
pub use node::{EventSink, Node, RequestHandler};
pub use pool::WorkerPool;
pub use rpc::{CallOptions, PendingCall};
pub use stats::NetStats;
