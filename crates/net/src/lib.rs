//! RPC layer for SyD over a pluggable transport.
//!
//! The paper's prototype ran on a wireless LAN of iPAQ handhelds, speaking
//! raw TCP sockets (§3.1, §5.2). The substrate lives in `syd-transport`
//! (the simulated [`Network`] and the real [`FramedTcpTransport`]); this
//! crate builds the RPC machinery on top of *either*, through the
//! [`Transport`] adapter:
//!
//! * **[`Node`]** — one addressed endpoint that demultiplexes incoming
//!   traffic (responses → pending-call table, requests/events → worker
//!   pool), with correlation ids, deadlines and transient-failure
//!   retries.
//! * **[`SharedRuntime`]** — the event-driven device runtime: one
//!   reactor, one [`TimerWheel`] and one shared [`WorkerPool`] carry an
//!   entire fleet of nodes (the default; see [`set_shared_runtime`]).
//! * **[`WorkerPool`]** — grow-on-demand dispatch so nested invocations
//!   (cancel cascades, negotiations) can never deadlock a dispatch thread.
//!
//! A dropped TCP connection and a simulated message loss surface as the
//! same transient errors ([`syd_types::SydError::Disconnected`] /
//! [`syd_types::SydError::Timeout`]), so retry policy and the invariant
//! auditor behave identically on both backends.
//!
//! Everything above this crate (`syd-core`, the applications) sees only
//! logical operations: `call`, `call_async`, `publish_event`, `serve`.
//! The simulated network types are re-exported here (`syd_net::Network`,
//! `syd_net::NetConfig`, …) so existing code keeps compiling unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod pool;
pub mod rpc;
pub mod runtime;
pub mod timer;

pub use syd_transport::config;
pub use syd_transport::stats;

pub use node::{EventSink, Node, RequestHandler};
pub use pool::WorkerPool;
pub use rpc::{CallOptions, PendingCall};
pub use runtime::{
    runtime_for, set_shared_runtime, shared_runtime_enabled, DrainOutcome, SharedRuntime,
};
pub use syd_transport::{
    Endpoint, FramedTcpTransport, LatencyModel, NetConfig, NetStats, Network, SimTransport,
    StatsSnapshot, Transport, TransportEndpoint, TransportEvent,
};
pub use timer::{TimerId, TimerWheel};
