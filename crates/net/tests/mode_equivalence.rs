//! Property: the event-driven shared runtime and the legacy
//! thread-per-device path are *observationally equivalent* at the RPC
//! layer. Same seeded loss pattern, same calls → same outcomes and the
//! same `rpc.timeouts` / `rpc.retries` counters, even though one mode
//! parks caller threads on channel waits and the other fails pending
//! calls from timer-wheel deadlines.
//!
//! The sim network draws loss decisions from a seeded RNG per send, and
//! both modes send exactly the same message sequence, so any divergence
//! here is a real behavioral difference between the two dispatchers —
//! not noise.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;
use std::time::Duration;

use syd_net::{CallOptions, NetConfig, Network, Node, SharedRuntime};
use syd_types::{NodeAddr, ServiceName, SydResult, Value};
use syd_wire::Request;

/// Runs `calls` echo calls on a fresh seeded network in one mode and
/// returns `(per-call outcomes, rpc.timeouts, rpc.retries)`.
fn run_scenario(
    shared_mode: bool,
    loss: f64,
    seed: u64,
    opts: CallOptions,
    calls: i64,
) -> (Vec<bool>, u64, u64) {
    let net = Network::new(NetConfig::ideal().with_loss(loss).with_seed(seed));
    // Explicit constructors: the scenario must not depend on (or race
    // with) the global `set_shared_runtime` switch.
    let runtime = shared_mode.then(|| SharedRuntime::new("equiv"));
    let (server, client) = match &runtime {
        Some(rt) => (
            Node::spawn_with_runtime(Arc::new(net.register()), rt),
            Node::spawn_with_runtime(Arc::new(net.register()), rt),
        ),
        None => (
            Node::spawn_on_endpoint(Arc::new(net.register())),
            Node::spawn_on_endpoint(Arc::new(net.register())),
        ),
    };
    server.set_handler(Arc::new(
        |_from: NodeAddr, req: Request| -> SydResult<Value> { Ok(Value::list(req.args.to_vec())) },
    ));
    let svc = ServiceName::new("echo");
    let outcomes = (0..calls)
        .map(|i| {
            client
                .call_with(server.addr(), &svc, "m", vec![Value::I64(i)], opts)
                .is_ok()
        })
        .collect();
    let counters = (client.rpc_timeouts(), client.rpc_retries());
    server.shutdown();
    client.shutdown();
    (outcomes, counters.0, counters.1)
}

#[test]
fn timeout_and_retry_counters_match_across_runtime_modes() {
    // Latency is zero in these configs, so a timeout can only come from
    // a lost request or response — which the seed fully determines.
    for &loss in &[0.0, 0.5, 0.75] {
        for seed in 1..=3u64 {
            for &retries in &[0u32, 2] {
                let opts = CallOptions::new()
                    .with_timeout(Duration::from_millis(20))
                    .with_retries(retries);
                let legacy = run_scenario(false, loss, seed, opts, 3);
                let shared = run_scenario(true, loss, seed, opts, 3);
                assert_eq!(
                    legacy, shared,
                    "mode divergence at loss={loss} seed={seed} retries={retries} \
                     (outcomes, rpc.timeouts, rpc.retries)"
                );
            }
        }
    }
}
