//! Property: the event-driven shared runtime and the legacy
//! thread-per-device path are *observationally equivalent* at the RPC
//! layer. Same seeded loss pattern, same calls → same outcomes and the
//! same `rpc.timeouts` / `rpc.retries` counters, even though one mode
//! parks caller threads on channel waits and the other fails pending
//! calls from timer-wheel deadlines.
//!
//! The sim network draws loss decisions from a seeded RNG per send, and
//! both modes send exactly the same message sequence, so any divergence
//! here is a real behavioral difference between the two dispatchers —
//! not noise.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;
use std::time::Duration;

use syd_net::{CallOptions, NetConfig, Network, Node, SharedRuntime};
use syd_types::{NodeAddr, ServiceName, SydResult, Value};
use syd_wire::Request;

/// Runs `calls` echo calls on a fresh seeded network in one mode and
/// returns `(per-call outcomes, rpc.timeouts, rpc.retries)`.
fn run_scenario(
    shared_mode: bool,
    loss: f64,
    seed: u64,
    opts: CallOptions,
    calls: i64,
) -> (Vec<bool>, u64, u64) {
    let net = Network::new(NetConfig::ideal().with_loss(loss).with_seed(seed));
    // Explicit constructors: the scenario must not depend on (or race
    // with) the global `set_shared_runtime` switch.
    let runtime = shared_mode.then(|| SharedRuntime::new("equiv"));
    let (server, client) = match &runtime {
        Some(rt) => (
            Node::spawn_with_runtime(Arc::new(net.register()), rt),
            Node::spawn_with_runtime(Arc::new(net.register()), rt),
        ),
        None => (
            Node::spawn_on_endpoint(Arc::new(net.register())),
            Node::spawn_on_endpoint(Arc::new(net.register())),
        ),
    };
    server.set_handler(Arc::new(
        |_from: NodeAddr, req: Request| -> SydResult<Value> { Ok(Value::list(req.args.to_vec())) },
    ));
    let svc = ServiceName::new("echo");
    let outcomes = (0..calls)
        .map(|i| {
            client
                .call_with(server.addr(), &svc, "m", vec![Value::I64(i)], opts)
                .is_ok()
        })
        .collect();
    let counters = (client.rpc_timeouts(), client.rpc_retries());
    server.shutdown();
    client.shutdown();
    (outcomes, counters.0, counters.1)
}

/// Three-node relay on a fresh ideal network: `client → middle →
/// backend`, where middle's handler issues a nested RPC from inside
/// the dispatched request (so the nested `rpc.client` span must pick
/// up the server-side trace context). Returns the assembled span-tree
/// shapes, sorted, plus the collector for further inspection.
///
/// Only the three node rings are drained — never the global registry —
/// so this stays correct when other tests in this binary run
/// concurrently.
type TreeShape = Vec<(String, Vec<&'static str>)>;

fn run_traced_relay(
    shared_mode: bool,
    calls: i64,
    drain_middle: bool,
) -> (Vec<TreeShape>, Vec<syd_trace::SpanTree>) {
    use syd_trace::{AssemblyMode, Collector};
    let net = Network::new(NetConfig::ideal());
    let runtime = shared_mode.then(|| SharedRuntime::new("equiv-trace"));
    let spawn = |rt: &Option<SharedRuntime>| match rt {
        Some(rt) => Node::spawn_with_runtime(Arc::new(net.register()), rt),
        None => Node::spawn_on_endpoint(Arc::new(net.register())),
    };
    let (client, middle, backend) = (spawn(&runtime), spawn(&runtime), spawn(&runtime));
    backend.set_handler(Arc::new(
        |_from: NodeAddr, req: Request| -> SydResult<Value> { Ok(Value::list(req.args.to_vec())) },
    ));
    let (mid_caller, backend_addr) = (middle.clone(), backend.addr());
    middle.set_handler(Arc::new(
        move |_from: NodeAddr, req: Request| -> SydResult<Value> {
            // Nested call from inside the dispatched handler: its span
            // must become a child of this request's server-side context.
            mid_caller.call_with(
                backend_addr,
                &ServiceName::new("echo"),
                "m",
                req.args.to_vec(),
                CallOptions::new().with_timeout(Duration::from_millis(200)),
            )
        },
    ));
    let svc = ServiceName::new("echo");
    for i in 0..calls {
        client
            .call_with(
                middle.addr(),
                &svc,
                "m",
                vec![Value::I64(i)],
                CallOptions::new().with_timeout(Duration::from_millis(500)),
            )
            .expect("relay call");
    }
    let mut collector = Collector::new(AssemblyMode::Lossy);
    collector.drain(client.tracer().ring());
    if drain_middle {
        collector.drain(middle.tracer().ring());
    }
    collector.drain(backend.tracer().ring());
    for n in [&client, &middle, &backend] {
        n.shutdown();
    }
    let (trees, errors) = collector.assemble_all();
    assert!(errors.is_empty(), "lossy assembly never errors: {errors:?}");
    let mut shapes: Vec<_> = trees.iter().map(syd_trace::SpanTree::shape).collect();
    shapes.sort();
    (shapes, trees)
}

#[test]
fn span_trees_structurally_equal_across_runtime_modes() {
    let (legacy, legacy_trees) = run_traced_relay(false, 3, true);
    let (shared, shared_trees) = run_traced_relay(true, 3, true);
    assert_eq!(
        legacy, shared,
        "legacy and shared runtimes must assemble identical span-tree shapes"
    );
    // Every tree is the full relay: an outer rpc.client whose only
    // child is the nested rpc.client — same phases, same parentage —
    // and both hops carry their server-side view (complete merge).
    assert_eq!(legacy_trees.len(), 3);
    for trees in [&legacy_trees, &shared_trees] {
        for tree in trees {
            assert!(tree.complete, "anomalies: {:?}", tree.anomalies);
            let expected = vec![
                ("rpc.client".to_string(), vec![]),
                ("rpc.client".to_string(), vec!["rpc.client"]),
            ];
            assert_eq!(tree.shape(), expected);
            for idx in tree.find_kind("rpc.client") {
                assert!(
                    tree.nodes[idx].server.is_some(),
                    "every client span keeps its merged server view"
                );
            }
        }
    }
}

#[test]
fn dropped_span_degrades_to_flagged_incomplete_tree() {
    // The middle node's ring is never drained — its spans (the outer
    // call's server view and the nested rpc.client) are lost, as if the
    // ring evicted them under pressure. Lossy assembly must still build
    // a tree, flagged incomplete, instead of erroring out.
    let (_, trees) = run_traced_relay(true, 1, false);
    assert_eq!(trees.len(), 1);
    let tree = &trees[0];
    assert!(
        !tree.complete,
        "a dropped span must flag the tree incomplete"
    );
    assert!(!tree.anomalies.is_empty());
    // The backend's orphaned server view survives as a synthesized node
    // instead of vanishing.
    assert!(!tree.find_kind("rpc.server").is_empty());
}

#[test]
fn timeout_and_retry_counters_match_across_runtime_modes() {
    // Latency is zero in these configs, so a timeout can only come from
    // a lost request or response — which the seed fully determines.
    for &loss in &[0.0, 0.5, 0.75] {
        for seed in 1..=3u64 {
            for &retries in &[0u32, 2] {
                let opts = CallOptions::new()
                    .with_timeout(Duration::from_millis(20))
                    .with_retries(retries);
                let legacy = run_scenario(false, loss, seed, opts, 3);
                let shared = run_scenario(true, loss, seed, opts, 3);
                assert_eq!(
                    legacy, shared,
                    "mode divergence at loss={loss} seed={seed} retries={retries} \
                     (outcomes, rpc.timeouts, rpc.retries)"
                );
            }
        }
    }
}
