//! syd-lint CLI.
//!
//! ```text
//! syd-lint --workspace [--config lint.toml] [--json | --github] [--deny-warnings]
//! syd-lint [--config lint.toml] path/to/file.rs ...
//! ```
//!
//! Exit codes: `0` clean (or violations without `--deny-warnings`),
//! `1` violations with `--deny-warnings`, `2` usage / config / IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use syd_lint::config::Config;
use syd_lint::{analyze, find_workspace_root, workspace_files};

struct Cli {
    workspace: bool,
    json: bool,
    github: bool,
    deny_warnings: bool,
    config: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        workspace: false,
        json: false,
        github: false,
        deny_warnings: false,
        config: None,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => cli.workspace = true,
            "--json" => cli.json = true,
            "--github" => cli.github = true,
            "--deny-warnings" => cli.deny_warnings = true,
            "--config" => {
                let v = it.next().ok_or("--config requires a path")?;
                cli.config = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            path => cli.paths.push(PathBuf::from(path)),
        }
    }
    if !cli.workspace && cli.paths.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(cli)
}

const USAGE: &str = "usage: syd-lint (--workspace | FILES...) \
[--config lint.toml] [--json | --github] [--deny-warnings]";

fn load_config(cli: &Cli, root: Option<&Path>) -> Result<Config, String> {
    let path = match (&cli.config, root) {
        (Some(p), _) => Some(p.clone()),
        (None, Some(r)) => {
            let p = r.join("lint.toml");
            p.exists().then_some(p)
        }
        (None, None) => None,
    };
    match path {
        Some(p) => {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            Config::from_toml(&text).map_err(|e| e.to_string())
        }
        None => Ok(Config::default()),
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args)?;

    let (files, mut config) = if cli.workspace {
        let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
        let root = find_workspace_root(&cwd)
            .ok_or("no workspace root (Cargo.toml with [workspace]) above the current directory")?;
        let config = load_config(&cli, Some(&root))?;
        let files =
            workspace_files(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;
        (files, config)
    } else {
        let config = load_config(&cli, None)?;
        let mut files = Vec::new();
        for p in &cli.paths {
            let src = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            files.push((p.to_string_lossy().replace('\\', "/"), src));
        }
        (files, config)
    };

    // The CLI injects the real clock; library callers / tests set
    // `config.today` explicitly to stay deterministic.
    config.today = Some(syd_lint::config::civil_today());

    let report = analyze(&files, &config, cli.workspace);
    if cli.json {
        print!("{}", report.render_json());
    } else if cli.github {
        print!("{}", report.render_github());
    } else {
        print!("{}", report.render_text());
    }
    Ok(report.clean() || !cli.deny_warnings)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("syd-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
