//! Per-file source model: the token stream plus the structure the rules
//! need — functions (with body ranges and test-ness), and declared
//! `Mutex`/`RwLock` fields that anchor lock identity.

use crate::lexer::{lex, Tok, Token};

/// Which lock primitive a declaration names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex<T>` (parking_lot or std).
    Mutex,
    /// `RwLock<T>` — acquired via `.read()` / `.write()`.
    RwLock,
}

/// A lock-bearing declaration: a struct field or a `let` binding whose
/// type is (or wraps) a `Mutex`/`RwLock`.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Field or binding name — the last path segment at acquisition sites.
    pub name: String,
    /// Mutex or RwLock.
    pub kind: LockKind,
    /// 1-indexed declaration line.
    pub line: u32,
}

/// One `fn` item with its body token range.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's `{` (exclusive range start is `+1`).
    pub body_start: usize,
    /// Token index of the body's matching `}`.
    pub body_end: usize,
    /// True for `#[test]` fns, fns inside `#[cfg(test)]` modules, and
    /// every fn in a test-path file.
    pub is_test: bool,
}

/// A field (or typed binding) declared as `Arc<T>` or `Weak<T>` — the
/// anchor for strong-capture analysis: `Arc::clone(&self.field)` bound
/// into a shared-runtime closure pins `T`.
#[derive(Debug, Clone)]
pub struct RefField {
    /// Field name.
    pub name: String,
    /// The first type segment inside the angle brackets (`DeviceInner`
    /// for `Arc<DeviceInner>`).
    pub ty: String,
    /// True for `Arc<T>`, false for `Weak<T>`.
    pub strong: bool,
    /// 1-indexed declaration line.
    pub line: u32,
}

/// A lexed file plus extracted structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// File stem (`tcp` for `crates/transport/src/tcp.rs`), used to
    /// qualify lock identities.
    pub stem: String,
    /// Full token stream.
    pub tokens: Vec<Token>,
    /// Extracted functions, in source order.
    pub fns: Vec<FnInfo>,
    /// Lock declarations found in this file.
    pub locks: Vec<LockDecl>,
    /// `Arc<T>` / `Weak<T>` field declarations found in this file.
    pub ref_fields: Vec<RefField>,
    /// True when the whole file is test/bench/example code.
    pub is_test_path: bool,
}

impl SourceFile {
    /// Lexes and extracts structure from one file.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let is_test_path = path_is_test(path);
        let fns = extract_fns(&tokens, is_test_path);
        let locks = extract_locks(&tokens);
        let ref_fields = extract_ref_fields(&tokens);
        let stem = path
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or(path)
            .to_string();
        SourceFile {
            path: path.to_string(),
            stem,
            tokens,
            fns,
            locks,
            ref_fields,
            is_test_path,
        }
    }

    /// The qualified id (`stem.field`) for a lock declared in this file.
    pub fn lock_id(&self, field: &str) -> String {
        format!("{}.{field}", self.stem)
    }
}

/// Test/bench/example/fixture code is exempt from most rules.
fn path_is_test(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures")
}

fn ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Walks the token stream once, pairing braces, to find every `fn` body
/// and whether it lives under `#[cfg(test)]` / carries `#[test]`.
fn extract_fns(tokens: &[Token], file_is_test: bool) -> Vec<FnInfo> {
    #[derive(Clone, Copy)]
    enum Frame {
        /// Index into `fns` whose `body_end` this `}` will close.
        Fn(usize),
        /// Any other brace; payload: does it put contents in test scope?
        Other(bool),
    }

    let mut fns: Vec<FnInfo> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    // Pending state between an item keyword and its `{`.
    let mut pending_fn: Option<(String, u32, bool)> = None;
    let mut pending_mod_test = false;
    let mut attr_test = false; // saw #[test]-like since last item boundary
    let mut attr_cfg_test = false; // saw #[cfg(test)] since last item boundary
    let mut i = 0;

    while i < tokens.len() {
        let in_test_scope = file_is_test
            || stack.iter().any(|f| matches!(f, Frame::Other(true)))
            || fns.iter().zip(0..).any(|(f, idx)| {
                f.is_test
                    && stack
                        .iter()
                        .any(|fr| matches!(fr, Frame::Fn(j) if *j == idx))
            });
        match &tokens[i].kind {
            Tok::Pound => {
                // Attribute: #[ ... ] — scan its bracket group.
                if matches!(tokens.get(i + 1).map(|t| &t.kind), Some(Tok::LBracket)) {
                    let mut depth = 0usize;
                    let mut j = i + 1;
                    let mut words: Vec<&str> = Vec::new();
                    while j < tokens.len() {
                        match &tokens[j].kind {
                            Tok::LBracket => depth += 1,
                            Tok::RBracket => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Tok::Ident(s) => words.push(s),
                            _ => {}
                        }
                        j += 1;
                    }
                    if words.first() == Some(&"cfg") && words.contains(&"test") {
                        attr_cfg_test = true;
                    }
                    if words.last() == Some(&"test") && words.first() != Some(&"cfg") {
                        attr_test = true;
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident(tokens, i + 1) {
                    let test = file_is_test || attr_test || attr_cfg_test || in_test_scope;
                    pending_fn = Some((name.to_string(), tokens[i].line, test));
                }
                attr_test = false;
                attr_cfg_test = false;
                i += 2;
            }
            Tok::Ident(kw) if kw == "mod" => {
                pending_mod_test = attr_cfg_test;
                attr_test = false;
                attr_cfg_test = false;
                i += 1;
            }
            Tok::LBrace => {
                if let Some((name, line, test)) = pending_fn.take() {
                    fns.push(FnInfo {
                        name,
                        line,
                        body_start: i,
                        body_end: usize::MAX,
                        is_test: test,
                    });
                    stack.push(Frame::Fn(fns.len() - 1));
                } else {
                    stack.push(Frame::Other(pending_mod_test || in_test_scope));
                    pending_mod_test = false;
                }
                i += 1;
            }
            Tok::RBrace => {
                if let Some(Frame::Fn(idx)) = stack.pop() {
                    fns[idx].body_end = i;
                }
                i += 1;
            }
            Tok::Semi => {
                pending_fn = None;
                pending_mod_test = false;
                attr_test = false;
                attr_cfg_test = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    fns.retain(|f| f.body_end != usize::MAX);
    fns
}

/// Finds `name: [wrappers<]* Mutex/RwLock <` field declarations and
/// `let name = … Mutex/RwLock::new(…)` bindings.
fn extract_locks(tokens: &[Token]) -> Vec<LockDecl> {
    let mut out: Vec<LockDecl> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let kind = match &t.kind {
            Tok::Ident(s) if s == "Mutex" => LockKind::Mutex,
            Tok::Ident(s) if s == "RwLock" => LockKind::RwLock,
            _ => continue,
        };
        let next = tokens.get(i + 1).map(|t| &t.kind);
        if matches!(next, Some(Tok::Punct('<'))) {
            // Field (or typed binding): walk back over `Wrapper<` pairs
            // and an optional `parking_lot::` path prefix to the `:`.
            let mut j = i;
            while j >= 2
                && matches!(tokens[j - 1].kind, Tok::PathSep)
                && matches!(tokens[j - 2].kind, Tok::Ident(_))
            {
                j -= 2;
            }
            while j >= 2
                && matches!(tokens[j - 1].kind, Tok::Punct('<'))
                && matches!(tokens[j - 2].kind, Tok::Ident(_))
            {
                j -= 2;
            }
            if j >= 2 && matches!(tokens[j - 1].kind, Tok::Punct(':')) {
                if let Some(name) = ident(tokens, j - 2) {
                    out.push(LockDecl {
                        name: name.to_string(),
                        kind,
                        line: tokens[j - 2].line,
                    });
                }
            }
        } else if matches!(next, Some(Tok::PathSep)) && ident(tokens, i + 2) == Some("new") {
            // `let name = Arc::new(Mutex::new(..))` — scan back within
            // the statement for `let [mut] name =`.
            let mut j = i;
            while j > 0 {
                match &tokens[j - 1].kind {
                    Tok::Semi | Tok::LBrace | Tok::RBrace => break,
                    _ => j -= 1,
                }
            }
            if ident(tokens, j) == Some("let") {
                let name_idx = if ident(tokens, j + 1) == Some("mut") {
                    j + 2
                } else {
                    j + 1
                };
                if let Some(name) = ident(tokens, name_idx) {
                    // Skip `let _ = …` and typed duplicates of field finds.
                    if name != "_" && !out.iter().any(|d| d.name == name) {
                        out.push(LockDecl {
                            name: name.to_string(),
                            kind,
                            line: tokens[j].line,
                        });
                    }
                }
            }
        }
    }
    out.dedup_by(|a, b| a.name == b.name && a.kind == b.kind);
    out
}

/// Finds `name: Arc<T>` / `name: Weak<T>` field declarations. The type
/// argument is the first identifier inside the angle brackets (skipping
/// a leading path qualifier such as `crate::`).
fn extract_ref_fields(tokens: &[Token]) -> Vec<RefField> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let strong = match &t.kind {
            Tok::Ident(s) if s == "Arc" => true,
            Tok::Ident(s) if s == "Weak" => false,
            _ => continue,
        };
        // `name : Arc <` — field or typed binding position.
        if !matches!(tokens.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('<')))
            || !matches!(
                tokens.get(i.wrapping_sub(1)).map(|t| &t.kind),
                Some(Tok::Punct(':'))
            )
        {
            continue;
        }
        let Some(name) = ident(tokens, i.wrapping_sub(2)) else {
            continue;
        };
        // Type argument: first ident chain after `<`, last path segment.
        let mut j = i + 2;
        let mut ty: Option<&str> = None;
        while let Some(tok) = tokens.get(j) {
            match &tok.kind {
                Tok::Ident(s) => {
                    ty = Some(s);
                    if !matches!(tokens.get(j + 1).map(|t| &t.kind), Some(Tok::PathSep)) {
                        break;
                    }
                    j += 2;
                }
                Tok::PathSep => j += 1,
                _ => break,
            }
        }
        if let Some(ty) = ty {
            out.push(RefField {
                name: name.to_string(),
                ty: ty.to_string(),
                strong,
                line: tokens[i].line,
            });
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn finds_fns_and_marks_tests() {
        let src = r#"
            pub fn real_work(x: u32) -> u32 { x + 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn a_test() { assert!(true); }
                fn helper() {}
            }
        "#;
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let real = f.fns.iter().find(|f| f.name == "real_work");
        let test = f.fns.iter().find(|f| f.name == "a_test");
        let helper = f.fns.iter().find(|f| f.name == "helper");
        assert!(matches!(real, Some(fi) if !fi.is_test));
        assert!(matches!(test, Some(fi) if fi.is_test));
        assert!(matches!(helper, Some(fi) if fi.is_test), "{helper:?}");
    }

    #[test]
    fn test_path_files_are_all_test() {
        let f = SourceFile::parse("crates/x/tests/it.rs", "fn plain() {}");
        assert!(f.fns[0].is_test);
    }

    #[test]
    fn finds_lock_fields_and_bindings() {
        let src = r#"
            struct S {
                state: Mutex<u32>,
                pub(crate) tables: RwLock<HashMap<String, u32>>,
                cache: Arc<parking_lot::Mutex<u8>>,
                by_meeting: HashMap<u64, Arc<Mutex<()>>>,
            }
            fn f() {
                let local = Arc::new(RwLock::new(0u32));
            }
        "#;
        let f = SourceFile::parse("crates/x/src/node.rs", src);
        let names: Vec<&str> = f.locks.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"state"));
        assert!(names.contains(&"tables"));
        assert!(names.contains(&"cache"));
        assert!(names.contains(&"local"));
        // The HashMap value-position Mutex has no field name before `:`
        // going back through wrappers — `by_meeting` is keyed by the map,
        // not the Mutex, so it must not be recorded for the inner lock.
        assert!(!names.contains(&"by_meeting"), "{names:?}");
        assert_eq!(f.lock_id("state"), "node.state");
    }

    #[test]
    fn finds_arc_and_weak_fields() {
        let src = r#"
            struct DeviceRuntime {
                inner: Arc<DeviceInner>,
                backref: Weak<RuntimeInner>,
                qualified: Arc<crate::runtime::RuntimeInner>,
                plain: u32,
            }
        "#;
        let f = SourceFile::parse("crates/x/src/device.rs", src);
        let find = |n: &str| f.ref_fields.iter().find(|r| r.name == n);
        assert!(matches!(find("inner"), Some(r) if r.strong && r.ty == "DeviceInner"));
        assert!(matches!(find("backref"), Some(r) if !r.strong && r.ty == "RuntimeInner"));
        assert!(matches!(find("qualified"), Some(r) if r.strong && r.ty == "RuntimeInner"));
        assert!(find("plain").is_none());
    }

    #[test]
    fn nested_fn_body_ranges_close_correctly() {
        let src = "fn outer() { if x { y(); } } fn after() {}";
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        assert_eq!(f.fns.len(), 2);
        assert!(f.fns[0].body_end < f.fns[1].body_start);
    }
}
