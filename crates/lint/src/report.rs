//! Diagnostics and the machine-readable report.

use crate::config::Config;
use std::collections::BTreeMap;
use std::fmt;

/// The rules syd-lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Nested lock acquisitions must respect the declared hierarchy and
    /// the global acquisition graph must stay acyclic (including edges
    /// discovered through call chains).
    LockOrder,
    /// No lock guard may be live across an RPC / transport send —
    /// directly or through a helper that transitively performs one.
    GuardAcrossRpc,
    /// No blocking call inside a poll-loop / router-tick function.
    NoBlockingInPollLoop,
    /// A poll-loop function transitively reaches a blocking call through
    /// its helpers (the interprocedural companion of
    /// [`Rule::NoBlockingInPollLoop`]).
    TransitiveBlocking,
    /// A closure registered on shared infrastructure (timer wheel,
    /// worker pool) captures a strong `Arc` of a runtime-owning type,
    /// pinning the runtime after the last external handle drops.
    StrongCaptureCycle,
    /// An `[[allow]]` entry is expired or no longer matches anything.
    StaleSuppression,
    /// Metric names must come from the central `names` registry.
    CounterRegistry,
    /// §4.3 mark/lock entry points only from the negotiation core.
    CoordinationBoundary,
}

impl Rule {
    /// Stable kebab-case rule name (used in config and output).
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::GuardAcrossRpc => "guard-across-rpc",
            Rule::NoBlockingInPollLoop => "no-blocking-in-poll-loop",
            Rule::TransitiveBlocking => "transitive-blocking",
            Rule::StrongCaptureCycle => "strong-capture-cycle",
            Rule::StaleSuppression => "stale-suppression",
            Rule::CounterRegistry => "counter-registry",
            Rule::CoordinationBoundary => "coordination-boundary",
        }
    }
}

/// One finding, anchored to `file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Enclosing function, when known.
    pub function: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Result of one analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics that survived the allowlist.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics suppressed by `[[allow]]` entries, with the reason.
    pub suppressed: Vec<(Diagnostic, String)>,
    /// Indices into `config.allows` that suppressed at least one
    /// diagnostic (input to `stale-suppression`).
    pub allow_hits: std::collections::BTreeSet<usize>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no diagnostic survived.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Applies the config's allowlist, moving matches to `suppressed`.
    /// An entry whose `expires` date is on or before `config.today` has
    /// lapsed: it stops suppressing (and `stale-suppression` flags it).
    pub fn apply_allowlist(&mut self, config: &Config) {
        let expired = |idx: usize| -> bool {
            match (&config.allows[idx].expires, &config.today) {
                (Some(exp), Some(today)) => exp.as_str() <= today.as_str(),
                _ => false,
            }
        };
        let mut kept = Vec::new();
        for d in self.diagnostics.drain(..) {
            let hit = config.allows.iter().enumerate().find(|(i, a)| {
                !expired(*i)
                    && a.rule == d.rule.name()
                    && d.file.ends_with(&a.file)
                    && a.function
                        .as_ref()
                        .is_none_or(|f| d.function.as_deref() == Some(f.as_str()))
                    && a.contains.as_ref().is_none_or(|c| d.message.contains(c))
            });
            match hit {
                Some((i, a)) => {
                    self.allow_hits.insert(i);
                    self.suppressed.push((d, a.reason.clone()));
                }
                None => kept.push(d),
            }
        }
        self.diagnostics = kept;
        self.sort();
    }

    /// Deterministic order: file, line, rule.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Per-rule counts of surviving diagnostics.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for d in &self.diagnostics {
            *m.entry(d.rule.name()).or_insert(0) += 1;
        }
        m
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        for (d, reason) in &self.suppressed {
            out.push_str(&format!("{d} (allowed: {reason})\n"));
        }
        out.push_str(&format!(
            "syd-lint: {} file(s), {} violation(s), {} suppressed\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Machine-readable JSON rendering.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"tool\":\"syd-lint\",\"violations\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"function\":{},\"message\":\"{}\"}}",
                d.rule.name(),
                esc(&d.file),
                d.line,
                d.function
                    .as_ref()
                    .map_or("null".to_string(), |f| format!("\"{}\"", esc(f))),
                esc(&d.message)
            ));
        }
        out.push_str("],\"counts\":{");
        for (i, (rule, n)) in self.counts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{rule}\":{n}"));
        }
        out.push_str(&format!(
            "}},\"files_scanned\":{},\"suppressed\":{},\"clean\":{}}}",
            self.files_scanned,
            self.suppressed.len(),
            self.clean()
        ));
        out.push('\n');
        out
    }

    /// GitHub Actions workflow-command rendering: one
    /// `::error file=…,line=…::…` annotation per diagnostic (shown
    /// inline on the PR diff), followed by the plain summary line.
    pub fn render_github(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "::error file={},line={},title={}::{}\n",
                esc_gh_prop(&d.file),
                d.line,
                esc_gh_prop(d.rule.name()),
                esc_gh_msg(&d.message)
            ));
        }
        out.push_str(&format!(
            "syd-lint: {} file(s), {} violation(s), {} suppressed\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressed.len()
        ));
        out
    }
}

/// Escapes a workflow-command message (`%`, CR, LF).
fn esc_gh_msg(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command property (message escapes plus `,` / `:`).
fn esc_gh_prop(s: &str) -> String {
    esc_gh_msg(s).replace(',', "%2C").replace(':', "%3A")
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::config::{Allow, Config};

    fn diag(rule: Rule, file: &str, function: &str, msg: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.into(),
            line: 1,
            function: Some(function.into()),
            message: msg.into(),
        }
    }

    #[test]
    fn allowlist_matches_rule_file_and_function() {
        let mut cfg = Config::default();
        cfg.allows.push(Allow {
            rule: "guard-across-rpc".into(),
            file: "sim.rs".into(),
            function: Some("deliver".into()),
            contains: None,
            reason: "channel send cannot block".into(),
            expires: None,
            line: 10,
        });
        let mut report = Report {
            diagnostics: vec![
                diag(
                    Rule::GuardAcrossRpc,
                    "crates/transport/src/sim.rs",
                    "deliver",
                    "m",
                ),
                diag(
                    Rule::GuardAcrossRpc,
                    "crates/transport/src/sim.rs",
                    "other_fn",
                    "m",
                ),
                diag(
                    Rule::LockOrder,
                    "crates/transport/src/sim.rs",
                    "deliver",
                    "m",
                ),
            ],
            suppressed: vec![],
            allow_hits: Default::default(),
            files_scanned: 1,
        };
        report.apply_allowlist(&cfg);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.diagnostics.len(), 2);
        assert!(report.allow_hits.contains(&0));
    }

    #[test]
    fn expired_allow_stops_suppressing() {
        let mut cfg = Config {
            today: Some("2026-08-08".into()),
            ..Default::default()
        };
        cfg.allows.push(Allow {
            rule: "lock-order".into(),
            file: "sim.rs".into(),
            function: None,
            contains: None,
            reason: "pending refactor".into(),
            expires: Some("2026-01-01".into()),
            line: 3,
        });
        let mut report = Report {
            diagnostics: vec![diag(Rule::LockOrder, "crates/t/src/sim.rs", "f", "m")],
            ..Report::default()
        };
        report.apply_allowlist(&cfg);
        assert_eq!(report.diagnostics.len(), 1, "expired allow must not fire");
        assert!(report.allow_hits.is_empty());

        // Same entry with a future expiry still suppresses.
        cfg.allows[0].expires = Some("2027-01-01".into());
        let mut report = Report {
            diagnostics: vec![diag(Rule::LockOrder, "crates/t/src/sim.rs", "f", "m")],
            ..Report::default()
        };
        report.apply_allowlist(&cfg);
        assert!(report.diagnostics.is_empty());
        assert!(report.allow_hits.contains(&0));
    }

    #[test]
    fn github_annotations_escape_workflow_metacharacters() {
        let report = Report {
            diagnostics: vec![diag(
                Rule::LockOrder,
                "crates/a,b/src/x.rs",
                "f",
                "cycle: a -> b\n100% held",
            )],
            suppressed: vec![],
            allow_hits: Default::default(),
            files_scanned: 1,
        };
        let gh = report.render_github();
        assert!(
            gh.contains("::error file=crates/a%2Cb/src/x.rs,line=1,title=lock-order::"),
            "{gh}"
        );
        assert!(gh.contains("100%25 held"), "{gh}");
        assert!(gh.contains("a -> b%0A"), "{gh}");
        assert!(gh.contains("1 violation(s)"), "{gh}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let report = Report {
            diagnostics: vec![diag(Rule::CounterRegistry, "a\"b.rs", "f", "use \"names\"")],
            suppressed: vec![],
            allow_hits: Default::default(),
            files_scanned: 3,
        };
        let json = report.render_json();
        assert!(json.contains("\"clean\":false"), "{json}");
        assert!(json.contains("a\\\"b.rs"), "{json}");
        assert!(json.contains("\"counter-registry\":1"), "{json}");
    }
}
