//! The five syd-lint rules, built on the walker events and token scans.

use crate::config::Config;
use crate::lexer::Tok;
use crate::report::{Diagnostic, Report, Rule};
use crate::source::SourceFile;
use crate::walker::{self, Events, LockTable, WalkRules};
use std::collections::{BTreeMap, BTreeSet};

/// Runs every rule over the parsed file set.
///
/// `workspace_mode` enables whole-workspace checks (orphaned metric
/// constants) that are meaningless on a partial file list.
pub fn run_all(files: &[SourceFile], config: &Config, workspace_mode: bool) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    let table = LockTable::build(files);
    let rules = WalkRules {
        rpc_methods: &config.rpc_methods,
        rpc_qualified: &config.rpc_qualified,
        forbidden: &config.poll_forbidden,
    };
    let mut events = Events::default();
    for f in files {
        walker::walk_file(f, &table, &rules, &mut events);
    }

    lock_order(&events, config, &mut report);
    guard_across_rpc(&events, &mut report);
    no_blocking_in_poll_loop(&events, config, &mut report);
    counter_registry(files, config, workspace_mode, &mut report);
    coordination_boundary(files, config, &mut report);

    report.apply_allowlist(config);
    report
}

/// lock-order: reentrancy, hierarchy-rank inversions, and cycles in the
/// global acquisition graph.
fn lock_order(events: &Events, config: &Config, report: &mut Report) {
    let edges: Vec<_> = events.edges.iter().filter(|e| !e.is_test).collect();

    for e in &edges {
        if e.from == e.to {
            report.diagnostics.push(Diagnostic {
                rule: Rule::LockOrder,
                file: e.file.clone(),
                line: e.line,
                function: Some(e.function.clone()),
                message: format!(
                    "lock `{}` acquired while already held in `{}` — parking_lot locks are not reentrant, this self-deadlocks",
                    e.to, e.function
                ),
            });
        } else if let (Some((fr, fname)), Some((tr, tname))) =
            (config.rank_of(&e.from), config.rank_of(&e.to))
        {
            if fr > tr {
                report.diagnostics.push(Diagnostic {
                    rule: Rule::LockOrder,
                    file: e.file.clone(),
                    line: e.line,
                    function: Some(e.function.clone()),
                    message: format!(
                        "`{}` (level {tname}, rank {tr}) acquired while holding `{}` (level {fname}, rank {fr}); declared hierarchy is {}",
                        e.to,
                        e.from,
                        hierarchy_str(config)
                    ),
                });
            }
        }
    }

    // Cycle detection over distinct (from, to) pairs.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut locate: BTreeMap<(&str, &str), (&str, u32)> = BTreeMap::new();
    for e in &edges {
        if e.from != e.to {
            adj.entry(&e.from).or_default().insert(&e.to);
            locate.entry((&e.from, &e.to)).or_insert((&e.file, e.line));
        }
    }
    for cycle in find_cycles(&adj) {
        let hops: Vec<String> = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .map(|(a, b)| {
                let (file, line) = locate
                    .get(&(a.as_str(), b.as_str()))
                    .copied()
                    .unwrap_or(("?", 0));
                format!("{a} -> {b} ({file}:{line})")
            })
            .collect();
        let (file, line) = locate
            .get(&(cycle[0].as_str(), cycle[1 % cycle.len()].as_str()))
            .copied()
            .unwrap_or(("?", 0));
        report.diagnostics.push(Diagnostic {
            rule: Rule::LockOrder,
            file: file.to_string(),
            line,
            function: None,
            message: format!("lock acquisition cycle: {}", hops.join(", ")),
        });
    }
}

fn hierarchy_str(config: &Config) -> String {
    let mut levels: Vec<_> = config.levels.iter().collect();
    levels.sort_by_key(|l| l.rank);
    levels
        .iter()
        .map(|l| l.name.as_str())
        .collect::<Vec<_>>()
        .join(" < ")
}

/// Finds elementary cycles: one canonical cycle per strongly connected
/// component with ≥ 2 nodes (enough to pinpoint the offending edges
/// without flooding the report).
fn find_cycles(adj: &BTreeMap<&str, BTreeSet<&str>>) -> Vec<Vec<String>> {
    // Tarjan SCC, iterative-enough for the graph sizes involved.
    let nodes: Vec<&str> = adj
        .iter()
        .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.iter().copied()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn strongconnect(
        v: usize,
        nodes: &[&str],
        adj: &BTreeMap<&str, BTreeSet<&str>>,
        index_of: &BTreeMap<&str, usize>,
        index: &mut [usize],
        low: &mut [usize],
        on_stack: &mut [bool],
        stack: &mut Vec<usize>,
        next_index: &mut usize,
        sccs: &mut Vec<Vec<usize>>,
    ) {
        index[v] = *next_index;
        low[v] = *next_index;
        *next_index += 1;
        stack.push(v);
        on_stack[v] = true;
        if let Some(succs) = adj.get(nodes[v]) {
            for s in succs {
                let w = index_of[s];
                if index[w] == usize::MAX {
                    strongconnect(
                        w, nodes, adj, index_of, index, low, on_stack, stack, next_index, sccs,
                    );
                    low[v] = low[v].min(low[w]);
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
        }
        if low[v] == index[v] {
            let mut comp = Vec::new();
            while let Some(w) = stack.pop() {
                on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            sccs.push(comp);
        }
    }

    for v in 0..n {
        if index[v] == usize::MAX {
            strongconnect(
                v,
                &nodes,
                adj,
                &index_of,
                &mut index,
                &mut low,
                &mut on_stack,
                &mut stack,
                &mut next_index,
                &mut sccs,
            );
        }
    }

    let mut out = Vec::new();
    for comp in sccs {
        if comp.len() < 2 {
            continue;
        }
        // Walk one cycle within the component, deterministically.
        let members: BTreeSet<&str> = comp.iter().map(|&i| nodes[i]).collect();
        let start = *members.iter().min().unwrap_or(&"");
        let mut path = vec![start.to_string()];
        let mut cur = start;
        loop {
            let next = adj
                .get(cur)
                .and_then(|s| s.iter().find(|x| members.contains(*x)))
                .copied();
            let Some(next) = next else { break };
            if next == start {
                break;
            }
            if path.contains(&next.to_string()) {
                break;
            }
            path.push(next.to_string());
            cur = next;
        }
        if path.len() >= 2 {
            out.push(path);
        }
    }
    out
}

/// guard-across-rpc: any lock guard live across an RPC / transport send.
fn guard_across_rpc(events: &Events, report: &mut Report) {
    for r in events.rpcs.iter().filter(|r| !r.is_test) {
        let held: Vec<String> = r
            .held
            .iter()
            .map(|(id, line)| format!("`{id}` (acquired line {line})"))
            .collect();
        report.diagnostics.push(Diagnostic {
            rule: Rule::GuardAcrossRpc,
            file: r.file.clone(),
            line: r.line,
            function: Some(r.function.clone()),
            message: format!(
                "remote call `{}` made while holding {} — a slow or dead peer extends the critical section into a distributed deadlock",
                r.method,
                held.join(", ")
            ),
        });
    }
}

/// no-blocking-in-poll-loop: forbidden callees inside poll/router fns.
fn no_blocking_in_poll_loop(events: &Events, config: &Config, report: &mut Report) {
    for b in events.blocking.iter().filter(|b| !b.is_test) {
        if !config.poll_fns.iter().any(|f| f == &b.function) {
            continue;
        }
        report.diagnostics.push(Diagnostic {
            rule: Rule::NoBlockingInPollLoop,
            file: b.file.clone(),
            line: b.line,
            function: Some(b.function.clone()),
            message: format!(
                "blocking call `{}` inside poll-loop function `{}` stalls every connection sharing the loop; use non-blocking ops or a condvar wait",
                b.callee, b.function
            ),
        });
    }
}

/// counter-registry: metric names *and span kinds* must be
/// `syd_telemetry::names` constants; constants without call sites are
/// orphaned. Span kinds (`Tracer::span` & friends) share the registry
/// so trace assembly and the exporters see one stable vocabulary.
fn counter_registry(
    files: &[SourceFile],
    config: &Config,
    workspace_mode: bool,
    report: &mut Report,
) {
    // Registry constants: `pub const NAME: &str = "value";`
    let registry = files
        .iter()
        .find(|f| f.path.ends_with(&config.registry_path));
    let mut consts: Vec<(String, String, u32)> = Vec::new(); // (ident, value, line)
    if let Some(reg) = registry {
        let t = &reg.tokens;
        for i in 0..t.len() {
            if !matches!(&t[i].kind, Tok::Ident(s) if s == "const") {
                continue;
            }
            let (Some(Tok::Ident(name)), Some(Tok::Punct(':'))) =
                (t.get(i + 1).map(|x| &x.kind), t.get(i + 2).map(|x| &x.kind))
            else {
                continue;
            };
            // const NAME: &str = "value";
            if let (Some(Tok::Punct('=')), Some(Tok::Str(v))) =
                (t.get(i + 5).map(|x| &x.kind), t.get(i + 6).map(|x| &x.kind))
            {
                consts.push((name.clone(), v.clone(), t[i + 1].line));
            }
        }
    }
    // Inline literals at metric call sites.
    for f in files {
        if config.registry_exempt.iter().any(|p| f.path.starts_with(p)) {
            continue;
        }
        let t = &f.tokens;
        for i in 0..t.len() {
            let Tok::Ident(m) = &t[i].kind else { continue };
            let is_metric = config.metric_methods.iter().any(|mm| mm == m);
            let is_span = config.span_methods.iter().any(|sm| sm == m);
            if (!is_metric && !is_span)
                || !matches!(t.get(i.wrapping_sub(1)).map(|x| &x.kind), Some(Tok::Dot))
                || !matches!(t.get(i + 1).map(|x| &x.kind), Some(Tok::LParen))
            {
                continue;
            }
            let Some(Tok::Str(lit)) = t.get(i + 2).map(|x| &x.kind) else {
                continue;
            };
            if f.is_test_path || fn_is_test_at(f, i) {
                continue;
            }
            let hint = consts.iter().find(|(_, v, _)| v == lit).map_or_else(
                || {
                    format!(
                        "not in the registry — add a constant to {} and use it",
                        config.registry_path
                    )
                },
                |(name, _, _)| format!("use syd_telemetry::names::{name}"),
            );
            let what = if is_metric {
                "metric name"
            } else {
                "span kind"
            };
            report.diagnostics.push(Diagnostic {
                rule: Rule::CounterRegistry,
                file: f.path.clone(),
                line: t[i].line,
                function: enclosing_fn(f, i),
                message: format!("inline {what} \"{lit}\" in `{m}()`; {hint}"),
            });
        }
    }

    // Orphan constants: defined in the registry, referenced nowhere else.
    if workspace_mode && registry.is_some() {
        for (name, value, line) in &consts {
            let referenced = files.iter().any(|f| {
                !f.path.ends_with(&config.registry_path)
                    && f.tokens
                        .iter()
                        .any(|t| matches!(&t.kind, Tok::Ident(s) if s == name))
            });
            if !referenced {
                report.diagnostics.push(Diagnostic {
                    rule: Rule::CounterRegistry,
                    file: registry.map(|r| r.path.clone()).unwrap_or_default(),
                    line: *line,
                    function: None,
                    message: format!(
                        "metric constant `{name}` (\"{value}\") has no call sites — orphaned counter"
                    ),
                });
            }
        }
    }
}

/// coordination-boundary: §4.3 protocol invocations and LockManager
/// mutations only from the negotiation core.
fn coordination_boundary(files: &[SourceFile], config: &Config, report: &mut Report) {
    for f in files {
        if f.is_test_path || config.boundary_allowed.iter().any(|p| f.path.ends_with(p)) {
            continue;
        }
        let t = &f.tokens;
        for i in 0..t.len() {
            let Tok::Ident(m) = &t[i].kind else { continue };
            // invoke-family call with a protected method-name literal arg.
            if config.rpc_methods.iter().any(|mm| mm == m)
                && matches!(t.get(i.wrapping_sub(1)).map(|x| &x.kind), Some(Tok::Dot))
                && matches!(t.get(i + 1).map(|x| &x.kind), Some(Tok::LParen))
            {
                let mut depth = 0usize;
                let mut j = i + 1;
                while j < t.len() {
                    match &t[j].kind {
                        Tok::LParen => depth += 1,
                        Tok::RParen => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Str(s)
                            if config.protocol_methods.iter().any(|p| p == s)
                                && !fn_is_test_at(f, i) =>
                        {
                            report.diagnostics.push(Diagnostic {
                                rule: Rule::CoordinationBoundary,
                                file: f.path.clone(),
                                line: t[i].line,
                                function: enclosing_fn(f, i),
                                message: format!(
                                    "negotiation protocol method \"{s}\" invoked outside the negotiation core (`core::negotiate`); the CALM fast-path split requires all §4.3 coordination to flow through one module"
                                ),
                            });
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // `.locks().acquire(…)`-style LockManager mutation.
            if config.lock_manager_methods.iter().any(|mm| mm == m)
                && matches!(t.get(i.wrapping_sub(1)).map(|x| &x.kind), Some(Tok::Dot))
                && matches!(t.get(i + 1).map(|x| &x.kind), Some(Tok::LParen))
                && matches!(t.get(i.wrapping_sub(2)).map(|x| &x.kind), Some(Tok::RParen))
                && matches!(t.get(i.wrapping_sub(3)).map(|x| &x.kind), Some(Tok::LParen))
                && matches!(
                    t.get(i.wrapping_sub(4)).map(|x| &x.kind),
                    Some(Tok::Ident(recv)) if recv == "locks"
                )
                && !fn_is_test_at(f, i)
            {
                report.diagnostics.push(Diagnostic {
                    rule: Rule::CoordinationBoundary,
                    file: f.path.clone(),
                    line: t[i].line,
                    function: enclosing_fn(f, i),
                    message: format!(
                        "LockManager mutation `{m}` outside the coordination boundary; row locks may only change under the §4.3 protocol (core::negotiate / kernel mark handlers)"
                    ),
                });
            }
        }
    }
}

/// Innermost function containing token `idx`, if any.
fn enclosing_fn(f: &SourceFile, idx: usize) -> Option<String> {
    f.fns
        .iter()
        .filter(|fi| fi.body_start < idx && idx < fi.body_end)
        .max_by_key(|fi| fi.body_start)
        .map(|fi| fi.name.clone())
}

/// Is token `idx` inside a test function (or test module)?
fn fn_is_test_at(f: &SourceFile, idx: usize) -> bool {
    f.fns
        .iter()
        .filter(|fi| fi.body_start < idx && idx < fi.body_end)
        .max_by_key(|fi| fi.body_start)
        .is_some_and(|fi| fi.is_test)
}
