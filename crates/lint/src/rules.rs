//! The syd-lint rules, built on the walker events, the workspace call
//! graph and the interprocedural effect summaries.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::effects::{Atom, Effects, Origin};
use crate::lexer::Tok;
use crate::report::{Diagnostic, Report, Rule};
use crate::source::SourceFile;
use crate::walker::{self, Events, LockTable, WalkRules};
use std::collections::{BTreeMap, BTreeSet};

/// Runs every rule over the parsed file set.
///
/// `workspace_mode` enables whole-workspace checks (orphaned metric
/// constants, unused suppressions) that are meaningless on a partial
/// file list.
pub fn run_all(files: &[SourceFile], config: &Config, workspace_mode: bool) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    let table = LockTable::build(files);
    let detached = detached_callees(config);
    let rules = WalkRules {
        rpc_methods: &config.rpc_methods,
        rpc_qualified: &config.rpc_qualified,
        forbidden: &config.poll_forbidden,
        detached: &detached,
    };
    let mut events = Events::default();
    for f in files {
        walker::walk_file(f, &table, &rules, &mut events);
    }
    let graph = CallGraph::build(files, &events.calls, config);
    let effects = Effects::compute(files, &events, &graph, config);

    lock_order(&events, &graph, &effects, config, &mut report);
    guard_across_rpc(&events, &graph, &effects, &mut report);
    no_blocking_in_poll_loop(&events, config, &mut report);
    transitive_blocking(&graph, &effects, config, &mut report);
    strong_capture_cycle(&effects, &mut report);
    counter_registry(files, config, workspace_mode, &mut report);
    coordination_boundary(files, config, &mut report);

    report.apply_allowlist(config);
    stale_suppressions(config, workspace_mode, &mut report);
    report
}

/// Callees whose closure arguments execute on another thread: `spawn`
/// plus every configured registration method. Calls inside their
/// argument lists are excluded from effect propagation.
pub fn detached_callees(config: &Config) -> Vec<String> {
    let mut v = config.registration_methods.clone();
    v.push("spawn".into());
    v
}

/// An acquired-while-holding edge discovered through a call chain: the
/// caller holds `from` at a call site whose callee transitively
/// acquires `to`.
struct ChainEdge {
    from: String,
    to: String,
    file: String,
    line: u32,
    function: String,
    chain: String,
}

/// Collects interprocedural acquisition edges from the effect summaries.
fn chain_edges(graph: &CallGraph, effects: &Effects) -> Vec<ChainEdge> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, String, String, u32)> = BTreeSet::new();
    for e in &graph.edges {
        if e.is_test || e.held.is_empty() {
            continue;
        }
        for atom in effects.summaries[e.callee].keys() {
            let Atom::Acquires(to) = atom else { continue };
            for (from, _) in &e.held {
                if !seen.insert((from.clone(), to.clone(), e.file.clone(), e.line)) {
                    continue;
                }
                out.push(ChainEdge {
                    from: from.clone(),
                    to: to.clone(),
                    file: e.file.clone(),
                    line: e.line,
                    function: graph.nodes[e.caller].name.clone(),
                    chain: format!(
                        "{} ({}:{}) -> {}",
                        graph.nodes[e.callee].name,
                        e.file,
                        e.line,
                        effects.chain(graph, e.callee, atom)
                    ),
                });
            }
        }
    }
    out
}

/// lock-order: reentrancy, hierarchy-rank inversions, and cycles in the
/// global acquisition graph — including edges that only exist through
/// call chains (caller holds A, callee transitively acquires B).
fn lock_order(
    events: &Events,
    graph: &CallGraph,
    effects: &Effects,
    config: &Config,
    report: &mut Report,
) {
    let edges: Vec<_> = events.edges.iter().filter(|e| !e.is_test).collect();

    for e in &edges {
        if e.from == e.to {
            report.diagnostics.push(Diagnostic {
                rule: Rule::LockOrder,
                file: e.file.clone(),
                line: e.line,
                function: Some(e.function.clone()),
                message: format!(
                    "lock `{}` acquired while already held in `{}` — parking_lot locks are not reentrant, this self-deadlocks",
                    e.to, e.function
                ),
            });
        } else if let (Some((fr, fname)), Some((tr, tname))) =
            (config.rank_of(&e.from), config.rank_of(&e.to))
        {
            if fr > tr {
                report.diagnostics.push(Diagnostic {
                    rule: Rule::LockOrder,
                    file: e.file.clone(),
                    line: e.line,
                    function: Some(e.function.clone()),
                    message: format!(
                        "`{}` (level {tname}, rank {tr}) acquired while holding `{}` (level {fname}, rank {fr}); declared hierarchy is {}",
                        e.to,
                        e.from,
                        hierarchy_str(config)
                    ),
                });
            }
        }
    }

    // Interprocedural edges: the same three checks, with the call chain
    // in the message so the hop sequence is actionable.
    let inter = chain_edges(graph, effects);
    for e in &inter {
        if e.from == e.to {
            report.diagnostics.push(Diagnostic {
                rule: Rule::LockOrder,
                file: e.file.clone(),
                line: e.line,
                function: Some(e.function.clone()),
                message: format!(
                    "lock `{}` is held here and acquired again through the call chain {} — parking_lot locks are not reentrant, this self-deadlocks",
                    e.to, e.chain
                ),
            });
        } else if let (Some((fr, fname)), Some((tr, tname))) =
            (config.rank_of(&e.from), config.rank_of(&e.to))
        {
            if fr > tr {
                report.diagnostics.push(Diagnostic {
                    rule: Rule::LockOrder,
                    file: e.file.clone(),
                    line: e.line,
                    function: Some(e.function.clone()),
                    message: format!(
                        "`{}` (level {tname}, rank {tr}) acquired while holding `{}` (level {fname}, rank {fr}) through the call chain {}; declared hierarchy is {}",
                        e.to,
                        e.from,
                        e.chain,
                        hierarchy_str(config)
                    ),
                });
            }
        }
    }

    // Cycle detection over distinct (from, to) pairs, direct and
    // interprocedural alike.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut locate: BTreeMap<(&str, &str), (&str, u32)> = BTreeMap::new();
    for e in &edges {
        if e.from != e.to {
            adj.entry(&e.from).or_default().insert(&e.to);
            locate.entry((&e.from, &e.to)).or_insert((&e.file, e.line));
        }
    }
    for e in &inter {
        if e.from != e.to {
            adj.entry(&e.from).or_default().insert(&e.to);
            locate.entry((&e.from, &e.to)).or_insert((&e.file, e.line));
        }
    }
    for cycle in find_cycles(&adj) {
        let hops: Vec<String> = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .map(|(a, b)| {
                let (file, line) = locate
                    .get(&(a.as_str(), b.as_str()))
                    .copied()
                    .unwrap_or(("?", 0));
                format!("{a} -> {b} ({file}:{line})")
            })
            .collect();
        let (file, line) = locate
            .get(&(cycle[0].as_str(), cycle[1 % cycle.len()].as_str()))
            .copied()
            .unwrap_or(("?", 0));
        report.diagnostics.push(Diagnostic {
            rule: Rule::LockOrder,
            file: file.to_string(),
            line,
            function: None,
            message: format!("lock acquisition cycle: {}", hops.join(", ")),
        });
    }
}

fn hierarchy_str(config: &Config) -> String {
    let mut levels: Vec<_> = config.levels.iter().collect();
    levels.sort_by_key(|l| l.rank);
    levels
        .iter()
        .map(|l| l.name.as_str())
        .collect::<Vec<_>>()
        .join(" < ")
}

/// Finds elementary cycles: one canonical cycle per strongly connected
/// component with ≥ 2 nodes (enough to pinpoint the offending edges
/// without flooding the report).
fn find_cycles(adj: &BTreeMap<&str, BTreeSet<&str>>) -> Vec<Vec<String>> {
    // Tarjan SCC, iterative-enough for the graph sizes involved.
    let nodes: Vec<&str> = adj
        .iter()
        .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.iter().copied()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn strongconnect(
        v: usize,
        nodes: &[&str],
        adj: &BTreeMap<&str, BTreeSet<&str>>,
        index_of: &BTreeMap<&str, usize>,
        index: &mut [usize],
        low: &mut [usize],
        on_stack: &mut [bool],
        stack: &mut Vec<usize>,
        next_index: &mut usize,
        sccs: &mut Vec<Vec<usize>>,
    ) {
        index[v] = *next_index;
        low[v] = *next_index;
        *next_index += 1;
        stack.push(v);
        on_stack[v] = true;
        if let Some(succs) = adj.get(nodes[v]) {
            for s in succs {
                let w = index_of[s];
                if index[w] == usize::MAX {
                    strongconnect(
                        w, nodes, adj, index_of, index, low, on_stack, stack, next_index, sccs,
                    );
                    low[v] = low[v].min(low[w]);
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
        }
        if low[v] == index[v] {
            let mut comp = Vec::new();
            while let Some(w) = stack.pop() {
                on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            sccs.push(comp);
        }
    }

    for v in 0..n {
        if index[v] == usize::MAX {
            strongconnect(
                v,
                &nodes,
                adj,
                &index_of,
                &mut index,
                &mut low,
                &mut on_stack,
                &mut stack,
                &mut next_index,
                &mut sccs,
            );
        }
    }

    let mut out = Vec::new();
    for comp in sccs {
        if comp.len() < 2 {
            continue;
        }
        // Walk one cycle within the component, deterministically.
        let members: BTreeSet<&str> = comp.iter().map(|&i| nodes[i]).collect();
        let start = *members.iter().min().unwrap_or(&"");
        let mut path = vec![start.to_string()];
        let mut cur = start;
        loop {
            let next = adj
                .get(cur)
                .and_then(|s| s.iter().find(|x| members.contains(*x)))
                .copied();
            let Some(next) = next else { break };
            if next == start {
                break;
            }
            if path.contains(&next.to_string()) {
                break;
            }
            path.push(next.to_string());
            cur = next;
        }
        if path.len() >= 2 {
            out.push(path);
        }
    }
    out
}

/// guard-across-rpc: any lock guard live across an RPC / transport send
/// — at the call site itself, or through a helper that transitively
/// performs one.
fn guard_across_rpc(events: &Events, graph: &CallGraph, effects: &Effects, report: &mut Report) {
    for r in events.rpcs.iter().filter(|r| !r.is_test) {
        let held: Vec<String> = r
            .held
            .iter()
            .map(|(id, line)| format!("`{id}` (acquired line {line})"))
            .collect();
        report.diagnostics.push(Diagnostic {
            rule: Rule::GuardAcrossRpc,
            file: r.file.clone(),
            line: r.line,
            function: Some(r.function.clone()),
            message: format!(
                "remote call `{}` made while holding {} — a slow or dead peer extends the critical section into a distributed deadlock",
                r.method,
                held.join(", ")
            ),
        });
    }

    // Interprocedural: a guard is live at a call whose callee reaches an
    // RPC. Direct RPC call sites (`is_rpc`) are already covered above.
    let mut seen: BTreeSet<(String, u32, usize)> = BTreeSet::new();
    for e in &graph.edges {
        if e.is_test || e.is_rpc || e.held.is_empty() || !effects.has(e.callee, &Atom::Rpc) {
            continue;
        }
        if !seen.insert((e.file.clone(), e.line, e.callee)) {
            continue;
        }
        let held: Vec<String> = e
            .held
            .iter()
            .map(|(id, line)| format!("`{id}` (acquired line {line})"))
            .collect();
        report.diagnostics.push(Diagnostic {
            rule: Rule::GuardAcrossRpc,
            file: e.file.clone(),
            line: e.line,
            function: Some(graph.nodes[e.caller].name.clone()),
            message: format!(
                "`{}` is called while holding {} and transitively performs a remote call: {} — a slow or dead peer extends the critical section into a distributed deadlock",
                graph.nodes[e.callee].name,
                held.join(", "),
                effects.chain(graph, e.callee, &Atom::Rpc)
            ),
        });
    }
}

/// no-blocking-in-poll-loop: forbidden callees inside poll/router fns.
fn no_blocking_in_poll_loop(events: &Events, config: &Config, report: &mut Report) {
    for b in events.blocking.iter().filter(|b| !b.is_test) {
        if !config.poll_fns.iter().any(|f| f == &b.function) {
            continue;
        }
        report.diagnostics.push(Diagnostic {
            rule: Rule::NoBlockingInPollLoop,
            file: b.file.clone(),
            line: b.line,
            function: Some(b.function.clone()),
            message: format!(
                "blocking call `{}` inside poll-loop function `{}` stalls every connection sharing the loop; use non-blocking ops or a condvar wait",
                b.callee, b.function
            ),
        });
    }
}

/// transitive-blocking: a poll-loop function reaches a blocking call
/// through one or more helpers. Direct blocking calls inside the poll fn
/// itself are left to `no-blocking-in-poll-loop`.
fn transitive_blocking(graph: &CallGraph, effects: &Effects, config: &Config, report: &mut Report) {
    for (id, node) in graph.nodes.iter().enumerate() {
        if node.is_test || !config.poll_fns.iter().any(|f| f == &node.name) {
            continue;
        }
        let Some(origin) = effects.summaries[id].get(&Atom::Blocks) else {
            continue;
        };
        // Intrinsic origin means the blocking call is in this body — the
        // direct rule owns that diagnostic.
        let Origin::Call { file, line, .. } = origin else {
            continue;
        };
        report.diagnostics.push(Diagnostic {
            rule: Rule::TransitiveBlocking,
            file: file.clone(),
            line: *line,
            function: Some(node.name.clone()),
            message: format!(
                "poll-loop function `{}` transitively blocks: {} — every connection sharing the loop stalls for the full chain",
                node.name,
                effects.chain(graph, id, &Atom::Blocks)
            ),
        });
    }
}

/// strong-capture-cycle: a closure registered on shared infrastructure
/// (timer wheel, worker pool) captures a strong `Arc` of a
/// runtime-owning type, so the registration keeps the runtime alive
/// after the last external handle drops — the leak class fixed in
/// `DeviceRuntime::register_periodic_tasks` by downgrading to `Weak`.
fn strong_capture_cycle(effects: &Effects, report: &mut Report) {
    for cap in effects.captures.iter().filter(|c| !c.is_test) {
        report.diagnostics.push(Diagnostic {
            rule: Rule::StrongCaptureCycle,
            file: cap.file.clone(),
            line: cap.line,
            function: Some(cap.function.clone()),
            message: format!(
                "closure registered via `{}` captures strong `Arc<{}>` (binding `{}`) — the shared wheel/pool pins the runtime after the last external handle drops; capture `Arc::downgrade(..)` and upgrade inside the closure",
                cap.reg_method, cap.ty, cap.binding
            ),
        });
    }
}

/// stale-suppression: `[[allow]]` entries that have expired, or (in
/// workspace mode, where every diagnostic the entry could match is in
/// view) no longer suppress anything. Runs after the allowlist is
/// applied — a suppression cannot allowlist its own staleness.
fn stale_suppressions(config: &Config, workspace_mode: bool, report: &mut Report) {
    for (i, a) in config.allows.iter().enumerate() {
        let expired = match (&a.expires, &config.today) {
            (Some(exp), Some(today)) => exp.as_str() <= today.as_str(),
            _ => false,
        };
        if expired {
            report.diagnostics.push(Diagnostic {
                rule: Rule::StaleSuppression,
                file: "lint.toml".into(),
                line: a.line as u32,
                function: None,
                message: format!(
                    "[[allow]] for `{}` on `{}` expired {}; remove it or renew the expiry after re-review",
                    a.rule,
                    a.file,
                    a.expires.as_deref().unwrap_or("?")
                ),
            });
        } else if workspace_mode && !report.allow_hits.contains(&i) {
            report.diagnostics.push(Diagnostic {
                rule: Rule::StaleSuppression,
                file: "lint.toml".into(),
                line: a.line as u32,
                function: None,
                message: format!(
                    "[[allow]] for `{}` on `{}` no longer matches any diagnostic — the underlying issue is gone; remove the entry",
                    a.rule, a.file
                ),
            });
        }
    }
    report.sort();
}

/// counter-registry: metric names *and span kinds* must be
/// `syd_telemetry::names` constants; constants without call sites are
/// orphaned. Span kinds (`Tracer::span` & friends) share the registry
/// so trace assembly and the exporters see one stable vocabulary.
fn counter_registry(
    files: &[SourceFile],
    config: &Config,
    workspace_mode: bool,
    report: &mut Report,
) {
    // Registry constants: `pub const NAME: &str = "value";`
    let registry = files
        .iter()
        .find(|f| f.path.ends_with(&config.registry_path));
    let mut consts: Vec<(String, String, u32)> = Vec::new(); // (ident, value, line)
    if let Some(reg) = registry {
        let t = &reg.tokens;
        for i in 0..t.len() {
            if !matches!(&t[i].kind, Tok::Ident(s) if s == "const") {
                continue;
            }
            let (Some(Tok::Ident(name)), Some(Tok::Punct(':'))) =
                (t.get(i + 1).map(|x| &x.kind), t.get(i + 2).map(|x| &x.kind))
            else {
                continue;
            };
            // const NAME: &str = "value";
            if let (Some(Tok::Punct('=')), Some(Tok::Str(v))) =
                (t.get(i + 5).map(|x| &x.kind), t.get(i + 6).map(|x| &x.kind))
            {
                consts.push((name.clone(), v.clone(), t[i + 1].line));
            }
        }
    }
    // Inline literals at metric call sites.
    for f in files {
        if config.registry_exempt.iter().any(|p| f.path.starts_with(p)) {
            continue;
        }
        let t = &f.tokens;
        for i in 0..t.len() {
            let Tok::Ident(m) = &t[i].kind else { continue };
            let is_metric = config.metric_methods.iter().any(|mm| mm == m);
            let is_span = config.span_methods.iter().any(|sm| sm == m);
            if (!is_metric && !is_span)
                || !matches!(t.get(i.wrapping_sub(1)).map(|x| &x.kind), Some(Tok::Dot))
                || !matches!(t.get(i + 1).map(|x| &x.kind), Some(Tok::LParen))
            {
                continue;
            }
            let Some(Tok::Str(lit)) = t.get(i + 2).map(|x| &x.kind) else {
                continue;
            };
            if f.is_test_path || fn_is_test_at(f, i) {
                continue;
            }
            let hint = consts.iter().find(|(_, v, _)| v == lit).map_or_else(
                || {
                    format!(
                        "not in the registry — add a constant to {} and use it",
                        config.registry_path
                    )
                },
                |(name, _, _)| format!("use syd_telemetry::names::{name}"),
            );
            let what = if is_metric {
                "metric name"
            } else {
                "span kind"
            };
            report.diagnostics.push(Diagnostic {
                rule: Rule::CounterRegistry,
                file: f.path.clone(),
                line: t[i].line,
                function: enclosing_fn(f, i),
                message: format!("inline {what} \"{lit}\" in `{m}()`; {hint}"),
            });
        }
    }

    // Orphan constants: defined in the registry, referenced nowhere else.
    if workspace_mode && registry.is_some() {
        for (name, value, line) in &consts {
            let referenced = files.iter().any(|f| {
                !f.path.ends_with(&config.registry_path)
                    && f.tokens
                        .iter()
                        .any(|t| matches!(&t.kind, Tok::Ident(s) if s == name))
            });
            if !referenced {
                report.diagnostics.push(Diagnostic {
                    rule: Rule::CounterRegistry,
                    file: registry.map(|r| r.path.clone()).unwrap_or_default(),
                    line: *line,
                    function: None,
                    message: format!(
                        "metric constant `{name}` (\"{value}\") has no call sites — orphaned counter"
                    ),
                });
            }
        }
    }
}

/// coordination-boundary: §4.3 protocol invocations and LockManager
/// mutations only from the negotiation core.
fn coordination_boundary(files: &[SourceFile], config: &Config, report: &mut Report) {
    for f in files {
        if f.is_test_path || config.boundary_allowed.iter().any(|p| f.path.ends_with(p)) {
            continue;
        }
        let t = &f.tokens;
        for i in 0..t.len() {
            let Tok::Ident(m) = &t[i].kind else { continue };
            // invoke-family call with a protected method-name literal arg.
            if config.rpc_methods.iter().any(|mm| mm == m)
                && matches!(t.get(i.wrapping_sub(1)).map(|x| &x.kind), Some(Tok::Dot))
                && matches!(t.get(i + 1).map(|x| &x.kind), Some(Tok::LParen))
            {
                let mut depth = 0usize;
                let mut j = i + 1;
                while j < t.len() {
                    match &t[j].kind {
                        Tok::LParen => depth += 1,
                        Tok::RParen => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Str(s)
                            if config.protocol_methods.iter().any(|p| p == s)
                                && !fn_is_test_at(f, i) =>
                        {
                            report.diagnostics.push(Diagnostic {
                                rule: Rule::CoordinationBoundary,
                                file: f.path.clone(),
                                line: t[i].line,
                                function: enclosing_fn(f, i),
                                message: format!(
                                    "negotiation protocol method \"{s}\" invoked outside the negotiation core (`core::negotiate`); the CALM fast-path split requires all §4.3 coordination to flow through one module"
                                ),
                            });
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // `.locks().acquire(…)`-style LockManager mutation.
            if config.lock_manager_methods.iter().any(|mm| mm == m)
                && matches!(t.get(i.wrapping_sub(1)).map(|x| &x.kind), Some(Tok::Dot))
                && matches!(t.get(i + 1).map(|x| &x.kind), Some(Tok::LParen))
                && matches!(t.get(i.wrapping_sub(2)).map(|x| &x.kind), Some(Tok::RParen))
                && matches!(t.get(i.wrapping_sub(3)).map(|x| &x.kind), Some(Tok::LParen))
                && matches!(
                    t.get(i.wrapping_sub(4)).map(|x| &x.kind),
                    Some(Tok::Ident(recv)) if recv == "locks"
                )
                && !fn_is_test_at(f, i)
            {
                report.diagnostics.push(Diagnostic {
                    rule: Rule::CoordinationBoundary,
                    file: f.path.clone(),
                    line: t[i].line,
                    function: enclosing_fn(f, i),
                    message: format!(
                        "LockManager mutation `{m}` outside the coordination boundary; row locks may only change under the §4.3 protocol (core::negotiate / kernel mark handlers)"
                    ),
                });
            }
        }
    }
}

/// Innermost function containing token `idx`, if any.
fn enclosing_fn(f: &SourceFile, idx: usize) -> Option<String> {
    f.fns
        .iter()
        .filter(|fi| fi.body_start < idx && idx < fi.body_end)
        .max_by_key(|fi| fi.body_start)
        .map(|fi| fi.name.clone())
}

/// Is token `idx` inside a test function (or test module)?
fn fn_is_test_at(f: &SourceFile, idx: usize) -> bool {
    f.fns
        .iter()
        .filter(|fi| fi.body_start < idx && idx < fi.body_end)
        .max_by_key(|fi| fi.body_start)
        .is_some_and(|fi| fi.is_test)
}
