//! syd-lint: workspace-aware protocol & concurrency static analyzer.
//!
//! A purpose-built companion to `syd-check` (dynamic invariants) and
//! `syd-model` (exhaustive protocol exploration): this crate analyzes the
//! *source* of the workspace and enforces the concurrency and protocol
//! discipline the SyD kernel depends on, with `file:line` diagnostics:
//!
//! * **lock-order** — nested `Mutex`/`RwLock` acquisitions must respect
//!   the declared hierarchy (store < engine < node < transport) and the
//!   global acquisition graph must stay acyclic; reacquiring a held
//!   parking_lot lock is a self-deadlock.
//! * **guard-across-rpc** — no lock guard may be live across an
//!   `invoke*` / transport-send call.
//! * **no-blocking-in-poll-loop** — no `thread::sleep`, blocking `recv`
//!   or blocking socket ops inside the transport poll loop / sim router.
//! * **counter-registry** — metric names must be constants from
//!   `syd_telemetry::names`, and registered names must have call sites.
//! * **coordination-boundary** — §4.3 mark/lock/negotiation entry points
//!   are only reachable from the negotiation core.
//!
//! On top of the per-file walk sits an *interprocedural* layer (DESIGN.md
//! §15): a workspace call graph ([`callgraph`]) plus per-function effect
//! summaries ([`effects`]) propagated to fixpoint, powering:
//!
//! * **transitive-blocking** — a poll loop blocks through helpers.
//! * interprocedural **guard-across-rpc** / **lock-order** — guards held
//!   across helpers that transitively RPC or acquire locks.
//! * **strong-capture-cycle** — closures registered on the shared timer
//!   wheel / worker pool capturing strong `Arc`s of runtime-owning types.
//! * **stale-suppression** — expired or no-longer-matching `[[allow]]`s.
//!
//! The analyzer is deliberately dependency-free: a hand-rolled lexer and
//! a brace-structure scope walker over the token stream, not a full
//! parser. That keeps it honest (fast, no build-graph coupling) at the
//! cost of a documented, config-suppressesable false-positive surface —
//! see `lint.toml` and DESIGN.md §12 / §15.

pub mod callgraph;
pub mod config;
pub mod effects;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod walker;

use config::Config;
use report::Report;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Parses the given files and runs every rule.
///
/// `workspace_mode` additionally enables whole-workspace checks
/// (orphaned metric constants) that need the complete file set.
pub fn analyze(files: &[(String, String)], config: &Config, workspace_mode: bool) -> Report {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(path, src)| SourceFile::parse(path, src))
        .collect();
    rules::run_all(&parsed, config, workspace_mode)
}

/// Collects every workspace `.rs` file under `root`, skipping build
/// output, VCS metadata and the lint fixture corpus (which violates the
/// rules on purpose). Paths come back workspace-relative, `/`-separated,
/// sorted.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                let src = std::fs::read_to_string(&path)?;
                out.push((rel, src));
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn analyze_clean_snippet() {
        let files = vec![(
            "crates/x/src/a.rs".to_string(),
            "struct S { state: Mutex<u8> } fn f(&self) { let g = self.state.lock(); }".to_string(),
        )];
        let report = analyze(&files, &Config::default(), false);
        assert!(report.clean(), "{}", report.render_text());
        assert_eq!(report.files_scanned, 1);
    }

    #[test]
    fn analyze_flags_reentrancy() {
        let files = vec![(
            "crates/x/src/a.rs".to_string(),
            "struct S { state: Mutex<u8> } \
             fn f(&self) { let g = self.state.lock(); let h = self.state.lock(); }"
                .to_string(),
        )];
        let report = analyze(&files, &Config::default(), false);
        assert_eq!(report.diagnostics.len(), 1, "{}", report.render_text());
        assert_eq!(report.diagnostics[0].rule.name(), "lock-order");
    }
}
