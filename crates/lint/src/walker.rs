//! The scope walker: tracks lock-guard liveness through a function body
//! and emits the events the concurrency rules consume — nested-acquisition
//! edges, RPC calls made while a guard is live, and blocking calls.
//!
//! Guard-lifetime model (edition 2021):
//! * `let g = x.lock();` — guard lives to the end of the enclosing block
//!   or an explicit `drop(g)`.
//! * `x.lock().f();` and chained uses — temporary, dropped at the end of
//!   the statement (`;` or `,` at bracket depth 0).
//! * locks acquired in an `if let` / `match` / `while` header — held for
//!   the attached block(s), including `else` chains (scrutinee temporary
//!   scope).
//!
//! Known limits (token-level, no types): guards returned out of a
//! function or bound through destructuring are treated as temporaries,
//! and a closure body is analyzed with the guards live at its definition
//! site (right for inline iterator closures, conservative for spawns).

use crate::lexer::{Tok, Token};
use crate::source::{FnInfo, LockKind, SourceFile};

/// A nested acquisition: `to` acquired while `from` was held.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Lock held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// File of the inner acquisition.
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
    /// Enclosing function.
    pub function: String,
    /// Whether the enclosing function is test code.
    pub is_test: bool,
}

/// An RPC-ish call made while at least one guard was live.
#[derive(Debug, Clone)]
pub struct RpcWhileHeld {
    /// The method called (`invoke_group`, `send`, …).
    pub method: String,
    /// Guards live at the call: (lock id, acquisition line).
    pub held: Vec<(String, u32)>,
    /// File / line / function of the call.
    pub file: String,
    /// Line of the call.
    pub line: u32,
    /// Enclosing function.
    pub function: String,
    /// Whether the enclosing function is test code.
    pub is_test: bool,
}

/// A potentially blocking call (rule filters by enclosing function).
#[derive(Debug, Clone)]
pub struct BlockingCall {
    /// Rendered callee (`thread::sleep`, `.recv`, …).
    pub callee: String,
    /// File of the call.
    pub file: String,
    /// Line of the call.
    pub line: u32,
    /// Enclosing function.
    pub function: String,
    /// Whether the enclosing function is test code.
    pub is_test: bool,
}

/// Any call site: `name(…)`, `recv.name(…)` or `qual::name(…)`. The
/// call-graph builder resolves these to workspace functions; the guard
/// snapshot powers the interprocedural lock/RPC rules.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// Callee name (last segment).
    pub name: String,
    /// Ident immediately before `.name(` (`node` in `self.node.f()`),
    /// when it is a plain ident.
    pub receiver: Option<String>,
    /// Ident immediately before `::name(`.
    pub qualifier: Option<String>,
    /// True for `recv.name(…)` calls, even when the receiver is not a
    /// plain ident (chained calls).
    pub is_method: bool,
    /// True when the argument list is empty (`()`).
    pub empty_args: bool,
    /// True when the callee is a configured RPC method (already covered
    /// by the direct guard-across-rpc rule when guards are held).
    pub is_rpc: bool,
    /// True when the call site sits inside the argument list of a
    /// thread-detaching call (`spawn`, `execute`, `schedule*`, …): the
    /// callee runs on another thread, so the caller does not inherit its
    /// blocking/RPC/lock effects.
    pub in_spawn: bool,
    /// Guards live at the call: (lock id, acquisition line).
    pub held: Vec<(String, u32)>,
    /// File of the call.
    pub file: String,
    /// Line of the call.
    pub line: u32,
    /// `body_start` token index of the enclosing function (unique per
    /// file — the call-graph key).
    pub caller_start: usize,
    /// Enclosing function name.
    pub function: String,
    /// Whether the enclosing function is test code.
    pub is_test: bool,
}

/// Every lock acquisition, independent of what else was held.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Qualified lock id.
    pub id: String,
    /// File of the acquisition.
    pub file: String,
    /// Line of the acquisition.
    pub line: u32,
    /// `body_start` token index of the enclosing function.
    pub caller_start: usize,
    /// Whether the enclosing function is test code.
    pub is_test: bool,
}

/// Walker output for a whole file set.
#[derive(Debug, Default)]
pub struct Events {
    /// Nested lock acquisitions.
    pub edges: Vec<Edge>,
    /// RPCs under a live guard.
    pub rpcs: Vec<RpcWhileHeld>,
    /// Blocking calls (everywhere; rules filter by function).
    pub blocking: Vec<BlockingCall>,
    /// Every call site, with the live-guard snapshot.
    pub calls: Vec<CallEvent>,
    /// Every lock acquisition.
    pub acquisitions: Vec<Acquisition>,
}

/// Resolves `receiver.lock()`-style acquisitions to qualified lock ids.
pub struct LockTable {
    /// (field name, kind) → declaring file stems.
    entries: Vec<(String, LockKind, String)>,
}

impl LockTable {
    /// Builds the global table from every scanned file.
    pub fn build(files: &[SourceFile]) -> LockTable {
        let mut entries = Vec::new();
        for f in files {
            for d in &f.locks {
                entries.push((d.name.clone(), d.kind, f.stem.clone()));
            }
        }
        LockTable { entries }
    }

    /// Resolves a receiver segment + acquisition method to a lock id.
    /// Prefers a declaration in `file`; falls back to a globally unique
    /// declaration; `None` when unknown or ambiguous (io `read`/`write`
    /// and foreign receivers fall out here).
    fn resolve(&self, file: &SourceFile, seg: &str, kind: LockKind) -> Option<String> {
        if file.locks.iter().any(|d| d.name == seg && d.kind == kind) {
            return Some(file.lock_id(seg));
        }
        let mut hits = self
            .entries
            .iter()
            .filter(|(n, k, _)| n == seg && *k == kind)
            .map(|(_, _, stem)| stem);
        match (hits.next(), hits.next()) {
            (Some(stem), None) => Some(format!("{stem}.{seg}")),
            _ => None,
        }
    }
}

/// Method-name sets the walker matches against.
pub struct WalkRules<'a> {
    /// Plain RPC method names.
    pub rpc_methods: &'a [String],
    /// `receiver.method` qualified RPC pairs.
    pub rpc_qualified: &'a [String],
    /// Forbidden (blocking) callee names.
    pub forbidden: &'a [String],
    /// Callees whose closure arguments run on another thread (`spawn`
    /// plus the configured registration methods); calls inside their
    /// argument lists get [`CallEvent::in_spawn`].
    pub detached: &'a [String],
}

#[derive(Debug, Clone)]
struct Held {
    id: String,
    binding: Option<String>,
    line: u32,
}

struct Walker<'a> {
    file: &'a SourceFile,
    func: &'a FnInfo,
    table: &'a LockTable,
    rules: &'a WalkRules<'a>,
    held: Vec<Held>,
    /// Token ranges (exclusive of the callee ident) of thread-detaching
    /// argument lists within this function body.
    detached: Vec<(usize, usize)>,
    out: &'a mut Events,
}

/// Walks every function of `file`, appending events to `out`.
pub fn walk_file(file: &SourceFile, table: &LockTable, rules: &WalkRules<'_>, out: &mut Events) {
    for func in &file.fns {
        // Nested fns are walked on their own; skip the outer copy of an
        // inner fn's body by walking only tokens outside child fns.
        let detached =
            detached_ranges(&file.tokens, func.body_start, func.body_end, rules.detached);
        let mut w = Walker {
            file,
            func,
            table,
            rules,
            held: Vec::new(),
            detached,
            out,
        };
        w.walk_block(func.body_start + 1, func.body_end);
    }
}

/// Argument-list token ranges of calls to thread-detaching methods.
fn detached_ranges(
    tokens: &[Token],
    start: usize,
    end: usize,
    names: &[String],
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in start..end.min(tokens.len()) {
        let Tok::Ident(s) = &tokens[i].kind else {
            continue;
        };
        if !names.iter().any(|n| n == s)
            || !matches!(tokens.get(i + 1).map(|t| &t.kind), Some(Tok::LParen))
        {
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < end.min(tokens.len()) {
            match tokens[j].kind {
                Tok::LParen => depth += 1,
                Tok::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        out.push((i + 1, j));
    }
    out
}

fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            Tok::LBrace => depth += 1,
            Tok::RBrace => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

const MUTEX_METHODS: &[&str] = &["lock", "try_lock"];
const RWLOCK_METHODS: &[&str] = &["read", "write", "try_read", "try_write"];

impl Walker<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        match self.file.tokens.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn kind(&self, i: usize) -> Option<&Tok> {
        self.file.tokens.get(i).map(|t| &t.kind)
    }

    /// Walks tokens in `[start, end)` (inside one brace pair).
    #[allow(clippy::too_many_lines)]
    fn walk_block(&mut self, start: usize, end: usize) {
        let base = self.held.len();
        let mut stmt_temps: Vec<Held> = Vec::new();
        let mut stmt_start = start;
        let mut depth = 0usize; // parens + brackets
        let mut angle = 0usize; // turbofish `::<…>` generic-args depth
        let mut i = start;

        while i < end {
            match &self.file.tokens[i].kind {
                Tok::LParen | Tok::LBracket => {
                    depth += 1;
                    i += 1;
                }
                Tok::RParen | Tok::RBracket => {
                    depth = depth.saturating_sub(1);
                    i += 1;
                }
                // Turbofish: commas inside `get::<A, B>(…)` are argument
                // separators of the *type* list, not statement boundaries.
                Tok::PathSep if matches!(self.kind(i + 1), Some(Tok::Punct('<'))) => {
                    angle += 1;
                    i += 2;
                }
                Tok::Punct('<') if angle > 0 => {
                    angle += 1;
                    i += 1;
                }
                Tok::Punct('>') if angle > 0 => {
                    // `->` inside a turbofished `fn` type is not a closer.
                    if !matches!(self.kind(i.wrapping_sub(1)), Some(Tok::Punct('-'))) {
                        angle -= 1;
                    }
                    i += 1;
                }
                Tok::LBrace => {
                    // Header guards (if-let / match scrutinee) stay held
                    // through the attached block.
                    let m = match_brace(&self.file.tokens, i);
                    let promoted = stmt_temps.len();
                    self.held.append(&mut stmt_temps);
                    // Skip the bodies of nested `fn` items — they are
                    // walked as their own functions.
                    if !self.is_nested_fn_body(i) {
                        self.walk_block(i + 1, m);
                    }
                    for _ in 0..promoted {
                        if let Some(h) = self.held.pop() {
                            stmt_temps.push(h);
                        }
                    }
                    stmt_temps.reverse();
                    let else_follows = matches!(self.ident(m + 1), Some("else"));
                    if !else_follows && depth == 0 {
                        stmt_temps.clear();
                        stmt_start = m + 1;
                    }
                    i = m + 1;
                }
                Tok::RBrace => {
                    // Unbalanced only if ranges are wrong; stop cleanly.
                    i += 1;
                }
                Tok::Semi if depth == 0 => {
                    // A `;` at paren depth 0 cannot be inside generic
                    // args — also resets a desynced angle count.
                    angle = 0;
                    stmt_temps.clear();
                    stmt_start = i + 1;
                    i += 1;
                }
                Tok::Comma if depth == 0 && angle == 0 => {
                    stmt_temps.clear();
                    stmt_start = i + 1;
                    i += 1;
                }
                Tok::Ident(name) => {
                    if self.try_drop(i, &mut stmt_temps)
                        || self.try_lock_acq(i, stmt_start, &mut stmt_temps)
                        || self.try_call(i, name, &stmt_temps)
                    {
                        // handled; all matchers advance by one token
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        self.held.truncate(base);
    }

    /// Is the brace at `open` the body of a nested `fn` item?
    fn is_nested_fn_body(&self, open: usize) -> bool {
        self.file
            .fns
            .iter()
            .any(|f| f.body_start == open && f.body_start != self.func.body_start)
    }

    /// `drop(name)` releases a named guard early.
    fn try_drop(&mut self, i: usize, stmt_temps: &mut Vec<Held>) -> bool {
        if self.ident(i) != Some("drop") || !matches!(self.kind(i + 1), Some(Tok::LParen)) {
            return false;
        }
        let (Some(name), Some(Tok::RParen)) = (self.ident(i + 2), self.kind(i + 3)) else {
            return false;
        };
        let name = name.to_string();
        self.held
            .retain(|h| h.binding.as_deref() != Some(name.as_str()));
        stmt_temps.retain(|h| h.binding.as_deref() != Some(name.as_str()));
        true
    }

    /// `receiver.lock()` / `.read()` / … acquisition.
    fn try_lock_acq(&mut self, i: usize, stmt_start: usize, stmt_temps: &mut Vec<Held>) -> bool {
        let Some(method) = self.ident(i) else {
            return false;
        };
        let kind = if MUTEX_METHODS.contains(&method) {
            LockKind::Mutex
        } else if RWLOCK_METHODS.contains(&method) {
            LockKind::RwLock
        } else {
            return false;
        };
        if !matches!(self.kind(i.wrapping_sub(1)), Some(Tok::Dot))
            || !matches!(self.kind(i + 1), Some(Tok::LParen))
            || !matches!(self.kind(i + 2), Some(Tok::RParen))
        {
            return false;
        }
        let Some(seg) = self.ident(i.wrapping_sub(2)) else {
            return false;
        };
        let Some(id) = self.table.resolve(self.file, seg, kind) else {
            return false;
        };
        let line = self.file.tokens[i].line;
        self.out.acquisitions.push(Acquisition {
            id: id.clone(),
            file: self.file.path.clone(),
            line,
            caller_start: self.func.body_start,
            is_test: self.func.is_test,
        });
        for h in self.held.iter().chain(stmt_temps.iter()) {
            self.out.edges.push(Edge {
                from: h.id.clone(),
                to: id.clone(),
                file: self.file.path.clone(),
                line,
                function: self.func.name.clone(),
                is_test: self.func.is_test,
            });
        }
        // Scope: `let g = x.lock();` → block guard; anything chained or
        // non-let → statement temporary (header temps are promoted by
        // the block logic).
        let after = i + 3;
        let chained = matches!(self.kind(after), Some(Tok::Dot));
        let is_let = self.ident(stmt_start) == Some("let");
        let binding = if !chained && is_let {
            let name_idx = if self.ident(stmt_start + 1) == Some("mut") {
                stmt_start + 2
            } else {
                stmt_start + 1
            };
            self.ident(name_idx).map(str::to_string)
        } else {
            None
        };
        let held = Held { id, binding, line };
        if held.binding.is_some() && matches!(self.kind(after), Some(Tok::Semi)) {
            self.held.push(held);
        } else {
            stmt_temps.push(held);
        }
        true
    }

    /// Any call site: records a [`CallEvent`] for the call-graph, plus
    /// the direct RPC-under-guard and blocking events the intraprocedural
    /// rules consume.
    fn try_call(&mut self, i: usize, name: &str, stmt_temps: &[Held]) -> bool {
        if !matches!(self.kind(i + 1), Some(Tok::LParen)) {
            return false;
        }
        let (receiver, qualifier, is_method) = match self.kind(i.wrapping_sub(1)) {
            Some(Tok::Dot) => (
                self.ident(i.wrapping_sub(2)).map(str::to_string),
                None,
                true,
            ),
            Some(Tok::PathSep) => (
                None,
                self.ident(i.wrapping_sub(2)).map(str::to_string),
                false,
            ),
            // `fn name(` is a nested item signature, not a call; control
            // keywords take parenthesized expressions, not arguments.
            Some(Tok::Ident(kw)) if kw == "fn" => return false,
            _ if CALL_KEYWORDS.contains(&name) => return false,
            _ => (None, None, false),
        };

        let plain_rpc = self.rules.rpc_methods.iter().any(|m| m == name);
        let qualified_rpc = receiver.as_deref().is_some_and(|recv| {
            self.rules
                .rpc_qualified
                .iter()
                .any(|q| q.as_str() == format!("{recv}.{name}"))
        });
        let is_rpc = (is_method && plain_rpc) || qualified_rpc;

        let held: Vec<(String, u32)> = self
            .held
            .iter()
            .chain(stmt_temps.iter())
            .map(|h| (h.id.clone(), h.line))
            .collect();

        if is_rpc && !held.is_empty() {
            self.out.rpcs.push(RpcWhileHeld {
                method: name.to_string(),
                held: held.clone(),
                file: self.file.path.clone(),
                line: self.file.tokens[i].line,
                function: self.func.name.clone(),
                is_test: self.func.is_test,
            });
        }

        if self.rules.forbidden.iter().any(|m| m == name) {
            let callee = if is_method {
                Some(format!(".{name}"))
            } else {
                qualifier.as_deref().map(|q| format!("{q}::{name}"))
            };
            if let Some(callee) = callee {
                self.out.blocking.push(BlockingCall {
                    callee,
                    file: self.file.path.clone(),
                    line: self.file.tokens[i].line,
                    function: self.func.name.clone(),
                    is_test: self.func.is_test,
                });
            }
        }

        self.out.calls.push(CallEvent {
            name: name.to_string(),
            receiver,
            qualifier,
            is_method,
            empty_args: matches!(self.kind(i + 2), Some(Tok::RParen)),
            is_rpc,
            in_spawn: self.detached.iter().any(|&(s, e)| s < i && i < e),
            held,
            file: self.file.path.clone(),
            line: self.file.tokens[i].line,
            caller_start: self.func.body_start,
            function: self.func.name.clone(),
            is_test: self.func.is_test,
        });
        true
    }
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "let", "else", "in", "move", "break",
    "continue", "as", "await", "yield",
];

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn walk(src: &str) -> Events {
        let file = SourceFile::parse("crates/x/src/node.rs", src);
        let table = LockTable::build(std::slice::from_ref(&file));
        let rpc: Vec<String> = vec!["invoke".into(), "call".into()];
        let qual: Vec<String> = vec!["net.send".into()];
        let forbidden: Vec<String> = vec!["sleep".into(), "recv".into()];
        let detached: Vec<String> = vec!["spawn".into(), "execute".into()];
        let rules = WalkRules {
            rpc_methods: &rpc,
            rpc_qualified: &qual,
            forbidden: &forbidden,
            detached: &detached,
        };
        let mut out = Events::default();
        walk_file(&file, &table, &rules, &mut out);
        out
    }

    const DECLS: &str = "struct S { pending: Mutex<u8>, state: Mutex<u8>, meta: RwLock<u8> }";

    #[test]
    fn nested_acquisition_produces_edge() {
        let ev = walk(&format!(
            "{DECLS} fn f(&self) {{ let a = self.pending.lock(); let b = self.state.lock(); }}"
        ));
        assert_eq!(ev.edges.len(), 1);
        assert_eq!(ev.edges[0].from, "node.pending");
        assert_eq!(ev.edges[0].to, "node.state");
    }

    #[test]
    fn sequential_acquisition_is_clean() {
        let ev = walk(&format!(
            "{DECLS} fn f(&self) {{ self.pending.lock().checked_add(1); self.state.lock().checked_add(1); }}"
        ));
        assert!(ev.edges.is_empty(), "{:?}", ev.edges);
    }

    #[test]
    fn drop_releases_guard() {
        let ev = walk(&format!(
            "{DECLS} fn f(&self) {{ let a = self.pending.lock(); drop(a); let b = self.state.lock(); }}"
        ));
        assert!(ev.edges.is_empty(), "{:?}", ev.edges);
    }

    #[test]
    fn block_scope_releases_guard() {
        let ev = walk(&format!(
            "{DECLS} fn f(&self) {{ {{ let a = self.pending.lock(); }} let b = self.state.lock(); }}"
        ));
        assert!(ev.edges.is_empty(), "{:?}", ev.edges);
    }

    #[test]
    fn if_let_header_guard_lives_through_block() {
        let ev = walk(&format!(
            "{DECLS} fn f(&self) {{ if let Some(g) = self.pending.try_lock() {{ let b = self.state.lock(); }} }}"
        ));
        assert_eq!(ev.edges.len(), 1, "{:?}", ev.edges);
    }

    #[test]
    fn rpc_under_guard_is_flagged_and_clean_after_scope() {
        let ev = walk(&format!(
            "{DECLS} fn f(&self) {{ let g = self.pending.lock(); self.node.invoke(1); }} \
             fn ok(&self) {{ {{ let g = self.pending.lock(); }} self.node.invoke(1); }}"
        ));
        assert_eq!(ev.rpcs.len(), 1, "{:?}", ev.rpcs);
        assert_eq!(ev.rpcs[0].method, "invoke");
        assert_eq!(ev.rpcs[0].held[0].0, "node.pending");
    }

    #[test]
    fn qualified_send_is_rpc_but_plain_send_is_not() {
        let ev = walk(&format!(
            "{DECLS} fn f(&self) {{ let g = self.pending.lock(); self.net.send(e); }} \
             fn g(&self) {{ let g = self.pending.lock(); self.tx.send(e); }}"
        ));
        assert_eq!(ev.rpcs.len(), 1, "{:?}", ev.rpcs);
        assert_eq!(ev.rpcs[0].method, "send");
    }

    #[test]
    fn io_read_write_do_not_resolve_as_locks() {
        let ev = walk(&format!(
            "{DECLS} fn f(&self) {{ let g = self.meta.write(); stream.write(buf); socket.read(buf); }}"
        ));
        // The io calls take arguments, so the `()` shape check also
        // rejects them; either way no edge appears.
        assert!(ev.edges.is_empty(), "{:?}", ev.edges);
    }

    #[test]
    fn blocking_calls_are_recorded_with_context() {
        let ev = walk("fn poll_loop(&self) { thread::sleep(d); let x = rx.recv(); }");
        let callees: Vec<&str> = ev.blocking.iter().map(|b| b.callee.as_str()).collect();
        assert_eq!(callees, vec!["thread::sleep", ".recv"]);
    }

    #[test]
    fn calls_inside_spawn_closures_are_marked_detached() {
        let ev = walk(
            "fn f(&self) { thread::spawn(move || worker_loop(inner)); helper(); \
             self.pool.execute(move || job.run()); }",
        );
        let flag = |name: &str| ev.calls.iter().find(|c| c.name == name).map(|c| c.in_spawn);
        assert_eq!(flag("worker_loop"), Some(true));
        assert_eq!(flag("run"), Some(true));
        assert_eq!(flag("helper"), Some(false));
        assert_eq!(flag("spawn"), Some(false));
        assert_eq!(flag("execute"), Some(false));
    }

    #[test]
    fn test_fns_are_marked() {
        let file = SourceFile::parse(
            "crates/x/src/node.rs",
            "struct S { pending: Mutex<u8>, state: Mutex<u8> } \
             #[cfg(test)] mod tests { #[test] fn t(s: &S) { let a = s.pending.lock(); let b = s.state.lock(); } }",
        );
        let table = LockTable::build(std::slice::from_ref(&file));
        let rules = WalkRules {
            rpc_methods: &[],
            rpc_qualified: &[],
            forbidden: &[],
            detached: &[],
        };
        let mut out = Events::default();
        walk_file(&file, &table, &rules, &mut out);
        assert_eq!(out.edges.len(), 1);
        assert!(out.edges[0].is_test);
    }
}
