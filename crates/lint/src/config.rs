//! `lint.toml` — declared lock hierarchy, rule parameters and the
//! justified-suppression allowlist.
//!
//! The parser handles the TOML subset the config actually uses: `[table]`
//! and `[[array-of-table]]` headers, `key = "string"`, `key = integer`,
//! `key = ["a", "b"]` (single line), and `#` comments. Anything else is
//! a hard error — a config typo must not silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// One level of the declared lock hierarchy.
#[derive(Debug, Clone)]
pub struct Level {
    /// Human name ("store", "engine", …).
    pub name: String,
    /// Rank; locks may only be acquired in strictly increasing rank.
    pub rank: i64,
    /// Qualified lock ids (`file-stem.field`) at this level.
    pub locks: Vec<String>,
}

/// A justified suppression of one diagnostic pattern.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule name the suppression applies to.
    pub rule: String,
    /// Path suffix the diagnostic's file must end with.
    pub file: String,
    /// Optional: only suppress inside this function.
    pub function: Option<String>,
    /// Optional: only suppress diagnostics whose message contains this.
    pub contains: Option<String>,
    /// Mandatory human justification (empty reasons are rejected).
    pub reason: String,
    /// Optional expiry (`YYYY-MM-DD`); after this date the allow stops
    /// suppressing and `stale-suppression` flags it.
    pub expires: Option<String>,
    /// Line of the `[[allow]]` header in lint.toml (0 for built-ins).
    pub line: usize,
}

/// One trait-dispatch fan-out entry: calls of `method` through a trait
/// object may reach any of `targets` (`file-stem.fn_name`).
#[derive(Debug, Clone)]
pub struct TraitTarget {
    /// Trait method name as it appears at call sites.
    pub method: String,
    /// `stem.fn` implementation targets.
    pub targets: Vec<String>,
}

/// Full analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Declared lock hierarchy, lowest rank first.
    pub levels: Vec<Level>,
    /// Method names treated as remote calls by `guard-across-rpc`.
    pub rpc_methods: Vec<String>,
    /// `receiver.method` pairs additionally treated as remote calls
    /// (for generic method names like `send`).
    pub rpc_qualified: Vec<String>,
    /// Function names whose bodies are poll loops / router ticks.
    pub poll_fns: Vec<String>,
    /// Callee names forbidden inside poll-loop functions.
    pub poll_forbidden: Vec<String>,
    /// Workspace-relative path of the metric-name registry.
    pub registry_path: String,
    /// Registry accessor methods whose first argument is a metric name.
    pub metric_methods: Vec<String>,
    /// Tracer methods whose first argument is a span kind — span kinds
    /// share the metric-name registry (`syd_telemetry::names`).
    pub span_methods: Vec<String>,
    /// Path prefixes exempt from the counter-registry rule.
    pub registry_exempt: Vec<String>,
    /// §4.3 protocol method-name literals (`"mark"`, …).
    pub protocol_methods: Vec<String>,
    /// LockManager mutation methods gated by coordination-boundary.
    pub lock_manager_methods: Vec<String>,
    /// Path suffixes allowed to touch the coordination boundary.
    pub boundary_allowed: Vec<String>,
    /// Trait-dispatch fan-out for the call graph.
    pub trait_targets: Vec<TraitTarget>,
    /// Fully qualified blocking callees (`thread::sleep`) for the
    /// transitive effect analysis.
    pub blocking_qualified: Vec<String>,
    /// Method names that only block when called with no arguments
    /// (`.recv()`, `.join()` — excludes `path.join("x")`).
    pub blocking_zero_arg: Vec<String>,
    /// Method names that block regardless of arguments.
    pub blocking_any_arg: Vec<String>,
    /// Methods that register closures on shared infrastructure
    /// (timer wheel, worker pool) for `strong-capture-cycle`.
    pub registration_methods: Vec<String>,
    /// Types whose strong `Arc` must not be captured at a registration
    /// point (they transitively own the runtime).
    pub runtime_owning: Vec<String>,
    /// Justified suppressions.
    pub allows: Vec<Allow>,
    /// Today's date (`YYYY-MM-DD`) for `expires` checks; injected by the
    /// CLI so tests and library callers stay deterministic.
    pub today: Option<String>,
}

impl Default for Config {
    /// The built-in configuration, mirrored by the checked-in
    /// `lint.toml` (which can extend it with suppressions).
    fn default() -> Self {
        let s = |xs: &[&str]| xs.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        Config {
            levels: vec![
                Level {
                    name: "store".into(),
                    rank: 1,
                    locks: s(&["lock.state", "store.tables", "store.triggers"]),
                },
                Level {
                    name: "engine".into(),
                    rank: 2,
                    locks: s(&["engine.cache", "engine.opts", "directory.state"]),
                },
                Level {
                    name: "node".into(),
                    rank: 3,
                    locks: s(&[
                        "node.pending",
                        "node.handler",
                        "node.events",
                        "node.identity",
                        "pool.tx",
                    ]),
                },
                Level {
                    name: "transport".into(),
                    rank: 4,
                    locks: s(&[
                        "tcp.state",
                        "tcp.tap",
                        "tcp.thread",
                        "tcp.notifier",
                        "sim.state",
                    ]),
                },
                Level {
                    name: "runtime".into(),
                    rank: 5,
                    locks: s(&[
                        "runtime.ready",
                        "runtime.nodes",
                        "runtime.thread",
                        "timer.state",
                        "timer.thread",
                    ]),
                },
            ],
            rpc_methods: s(&[
                "invoke",
                "invoke_with_deadline",
                "invoke_group",
                "invoke_group_by_name",
                "invoke_group_varied",
                "call",
                "call_with",
                "call_async",
                "call_async_to",
                "publish_event",
                "dispatch_event",
                "drain_events",
            ]),
            rpc_qualified: s(&["net.send", "transport.send", "endpoint.send", "ep.send"]),
            poll_fns: s(&[
                "poll_loop",
                "router_loop",
                "flush_on_close",
                "finish_dial",
                "deliver",
                "reactor_loop",
                "timer_loop",
                "drain_events",
                "dispatch_event",
            ]),
            poll_forbidden: s(&[
                "sleep",
                "recv",
                "recv_timeout",
                "connect",
                "connect_timeout",
                "join",
            ]),
            registry_path: "crates/telemetry/src/names.rs".into(),
            metric_methods: s(&[
                "counter",
                "gauge",
                "histogram",
                "get_counter",
                "get_gauge",
                "get_histogram",
            ]),
            span_methods: s(&["span", "span_root", "record_span", "finish_handle"]),
            registry_exempt: s(&["crates/telemetry/"]),
            protocol_methods: s(&["mark", "commit", "abort"]),
            lock_manager_methods: s(&["acquire", "try_acquire", "release", "release_all"]),
            boundary_allowed: s(&[
                "crates/core/src/negotiate.rs",
                "crates/core/src/device.rs",
                "crates/store/src/lock.rs",
            ]),
            trait_targets: vec![TraitTarget {
                // `node.set_handler(Arc<dyn RequestHandler>)` dispatches
                // through `handle`; the workspace's only impl forwards to
                // the listener.
                method: "handle".into(),
                targets: s(&["listener.handle"]),
            }],
            blocking_qualified: s(&["thread::sleep", "TcpStream::connect"]),
            blocking_zero_arg: s(&["recv", "join"]),
            blocking_any_arg: s(&["recv_timeout", "recv_deadline", "connect_timeout"]),
            registration_methods: s(&[
                "register_periodic",
                "schedule",
                "schedule_at",
                "schedule_periodic",
                "execute",
            ]),
            runtime_owning: s(&["DeviceInner", "RuntimeInner", "NodeShared"]),
            allows: Vec::new(),
            today: None,
        }
    }
}

impl Config {
    /// Rank of a qualified lock id in the declared hierarchy, if any.
    pub fn rank_of(&self, lock_id: &str) -> Option<(i64, &str)> {
        self.levels.iter().find_map(|l| {
            l.locks
                .iter()
                .any(|x| x == lock_id)
                .then_some((l.rank, l.name.as_str()))
        })
    }

    /// Parses `lint.toml` text and merges it over the defaults:
    /// scalar/array keys replace the default value; `[[allow]]` and
    /// `[[level]]` tables replace the default set when present.
    pub fn from_toml(text: &str) -> Result<Config, ConfigError> {
        let doc = parse_toml(text)?;
        let mut cfg = Config::default();

        if let Some(levels) = doc.tables.get("level") {
            cfg.levels = levels
                .iter()
                .map(|t| {
                    Ok(Level {
                        name: t.need_str("name")?,
                        rank: t.need_int("rank")?,
                        locks: t.strs("locks"),
                    })
                })
                .collect::<Result<_, ConfigError>>()?;
        }
        let scalars: &mut [(&str, &mut Vec<String>)] = &mut [
            ("rules.guard_across_rpc.methods", &mut cfg.rpc_methods),
            ("rules.guard_across_rpc.qualified", &mut cfg.rpc_qualified),
            (
                "rules.no_blocking_in_poll_loop.functions",
                &mut cfg.poll_fns,
            ),
            (
                "rules.no_blocking_in_poll_loop.forbidden",
                &mut cfg.poll_forbidden,
            ),
            ("rules.counter_registry.methods", &mut cfg.metric_methods),
            ("rules.counter_registry.span_methods", &mut cfg.span_methods),
            ("rules.counter_registry.exempt", &mut cfg.registry_exempt),
            (
                "rules.coordination_boundary.protocol_methods",
                &mut cfg.protocol_methods,
            ),
            (
                "rules.coordination_boundary.lock_manager_methods",
                &mut cfg.lock_manager_methods,
            ),
            (
                "rules.coordination_boundary.allowed",
                &mut cfg.boundary_allowed,
            ),
            (
                "rules.transitive_blocking.qualified",
                &mut cfg.blocking_qualified,
            ),
            (
                "rules.transitive_blocking.zero_arg",
                &mut cfg.blocking_zero_arg,
            ),
            (
                "rules.transitive_blocking.any_arg",
                &mut cfg.blocking_any_arg,
            ),
            (
                "rules.strong_capture.registration_methods",
                &mut cfg.registration_methods,
            ),
            (
                "rules.strong_capture.runtime_owning",
                &mut cfg.runtime_owning,
            ),
        ];
        for (key, slot) in scalars.iter_mut() {
            if let Some(Value::Array(xs)) = doc.keys.get(*key) {
                **slot = xs.clone();
            }
        }
        if let Some(Value::Str(p)) = doc.keys.get("rules.counter_registry.registry") {
            cfg.registry_path.clone_from(p);
        }
        if let Some(targets) = doc.tables.get("trait_target") {
            cfg.trait_targets = targets
                .iter()
                .map(|t| {
                    Ok(TraitTarget {
                        method: t.need_str("method")?,
                        targets: t.strs("targets"),
                    })
                })
                .collect::<Result<_, ConfigError>>()?;
        }
        if let Some(allows) = doc.tables.get("allow") {
            for t in allows {
                let allow = Allow {
                    rule: t.need_str("rule")?,
                    file: t.need_str("file")?,
                    function: t.get_str("function"),
                    contains: t.get_str("contains"),
                    reason: t.need_str("reason")?,
                    expires: t.get_str("expires"),
                    line: t.line,
                };
                if allow.reason.trim().is_empty() {
                    return Err(ConfigError::new(
                        t.line,
                        "allow entry requires a non-empty `reason` justification",
                    ));
                }
                if let Some(exp) = &allow.expires {
                    if !is_iso_date(exp) {
                        return Err(ConfigError::new(
                            t.line,
                            format!("allow `expires` must be YYYY-MM-DD, got `{exp}`"),
                        ));
                    }
                }
                cfg.allows.push(allow);
            }
        }
        Ok(cfg)
    }
}

/// `YYYY-MM-DD` shape check (enough for lexicographic comparison).
fn is_iso_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter()
            .enumerate()
            .all(|(i, c)| i == 4 || i == 7 || c.is_ascii_digit())
}

/// Today's civil date as `YYYY-MM-DD`, derived from the system clock
/// (days since the Unix epoch → proleptic Gregorian; no external crate).
pub fn civil_today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days algorithm.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// A config parse/validation error with its line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-indexed line in lint.toml.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl ConfigError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        ConfigError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Array(Vec<String>),
}

#[derive(Debug, Default)]
struct Table {
    line: usize,
    entries: BTreeMap<String, Value>,
}

impl Table {
    fn need_str(&self, key: &str) -> Result<String, ConfigError> {
        match self.entries.get(key) {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(ConfigError::new(
                self.line,
                format!("missing required string key `{key}`"),
            )),
        }
    }
    fn get_str(&self, key: &str) -> Option<String> {
        match self.entries.get(key) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }
    fn need_int(&self, key: &str) -> Result<i64, ConfigError> {
        match self.entries.get(key) {
            Some(Value::Int(n)) => Ok(*n),
            _ => Err(ConfigError::new(
                self.line,
                format!("missing required integer key `{key}`"),
            )),
        }
    }
    fn strs(&self, key: &str) -> Vec<String> {
        match self.entries.get(key) {
            Some(Value::Array(xs)) => xs.clone(),
            _ => Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
struct Doc {
    /// Dotted `section.key` → value for plain `[section]` tables.
    keys: BTreeMap<String, Value>,
    /// `[[name]]` array-of-tables.
    tables: BTreeMap<String, Vec<Table>>,
}

fn parse_value(raw: &str, lineno: usize) -> Result<Value, ConfigError> {
    let raw = raw.trim();
    if let Some(inner) = raw.strip_prefix('"') {
        let Some(s) = inner.strip_suffix('"') else {
            return Err(ConfigError::new(lineno, "unterminated string"));
        };
        return Ok(Value::Str(s.to_string()));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let Some(body) = inner.strip_suffix(']') else {
            return Err(ConfigError::new(
                lineno,
                "arrays must open and close on one line",
            ));
        };
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, lineno)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(ConfigError::new(
                        lineno,
                        "only arrays of strings are supported",
                    ))
                }
            }
        }
        return Ok(Value::Array(items));
    }
    raw.parse::<i64>().map(Value::Int).map_err(|_| {
        ConfigError::new(
            lineno,
            format!("unsupported value `{raw}` (string, integer or [array] expected)"),
        )
    })
}

fn parse_toml(text: &str) -> Result<Doc, ConfigError> {
    let mut doc = Doc::default();
    // (array-table name, index) or plain section prefix.
    enum Section {
        None,
        Plain(String),
        Array(String),
    }
    let mut section = Section::None;

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = name.trim().to_string();
            doc.tables.entry(name.clone()).or_default().push(Table {
                line: lineno,
                entries: BTreeMap::new(),
            });
            section = Section::Array(name);
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = Section::Plain(name.trim().to_string());
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(ConfigError::new(
                lineno,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = key.trim();
        let value = parse_value(val, lineno)?;
        match &section {
            Section::None => {
                doc.keys.insert(key.to_string(), value);
            }
            Section::Plain(prefix) => {
                doc.keys.insert(format!("{prefix}.{key}"), value);
            }
            Section::Array(name) => {
                if let Some(t) = doc.tables.get_mut(name).and_then(|v| v.last_mut()) {
                    t.entries.insert(key.to_string(), value);
                }
            }
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting `"…#…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn parses_levels_and_allows() {
        let toml = r#"
            # comment
            [[level]]
            name = "store"
            rank = 1
            locks = ["lock.state"]

            [[level]]
            name = "transport"
            rank = 4
            locks = ["tcp.state", "sim.state"]

            [rules.guard_across_rpc]
            methods = ["invoke"]

            [[allow]]
            rule = "guard-across-rpc"
            file = "crates/transport/src/sim.rs"
            function = "deliver"
            reason = "unbounded channel send cannot block"
        "#;
        let cfg = Config::from_toml(toml).unwrap();
        assert_eq!(cfg.levels.len(), 2);
        assert_eq!(cfg.rank_of("sim.state"), Some((4, "transport")));
        assert_eq!(cfg.rank_of("unknown.lock"), None);
        assert_eq!(cfg.rpc_methods, vec!["invoke".to_string()]);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].function.as_deref(), Some("deliver"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let toml = r#"
            [[allow]]
            rule = "lock-order"
            file = "x.rs"
            reason = "  "
        "#;
        let err = Config::from_toml(toml).unwrap_err();
        assert!(err.msg.contains("reason"), "{err}");
    }

    #[test]
    fn defaults_survive_empty_config() {
        let cfg = Config::from_toml("").unwrap();
        assert_eq!(cfg.levels.len(), 5);
        assert!(cfg.rpc_methods.contains(&"invoke_group".to_string()));
    }

    #[test]
    fn bad_syntax_is_an_error_not_a_silent_skip() {
        assert!(Config::from_toml("key = what").is_err());
        assert!(Config::from_toml("just a line").is_err());
    }

    #[test]
    fn trait_targets_parse_and_replace_defaults() {
        let toml = r#"
            [[trait_target]]
            method = "handle"
            targets = ["listener.handle", "acceptor.handle"]
        "#;
        let cfg = Config::from_toml(toml).unwrap();
        assert_eq!(cfg.trait_targets.len(), 1);
        assert_eq!(cfg.trait_targets[0].method, "handle");
        assert_eq!(cfg.trait_targets[0].targets.len(), 2);
    }

    #[test]
    fn allow_expires_is_validated() {
        let good = r#"
            [[allow]]
            rule = "lock-order"
            file = "x.rs"
            reason = "temporary"
            expires = "2026-12-31"
        "#;
        let cfg = Config::from_toml(good).unwrap();
        assert_eq!(cfg.allows[0].expires.as_deref(), Some("2026-12-31"));
        assert!(cfg.allows[0].line > 0);

        let bad = r#"
            [[allow]]
            rule = "lock-order"
            file = "x.rs"
            reason = "temporary"
            expires = "soonish"
        "#;
        let err = Config::from_toml(bad).unwrap_err();
        assert!(err.msg.contains("YYYY-MM-DD"), "{err}");
    }

    #[test]
    fn civil_today_is_iso_shaped() {
        let today = civil_today();
        assert!(is_iso_date(&today), "{today}");
        assert!(today.as_str() >= "2024-01-01", "{today}");
    }
}
