//! Workspace-wide call graph, built from the walker's [`CallEvent`]s.
//!
//! Resolution is deliberately conservative — an edge is only added when
//! the token-level evidence pins the callee to exactly one workspace
//! function:
//!
//! * **free / path calls** (`helper(…)`, `module::helper(…)`,
//!   `Self::helper(…)`): same-file definition first (so a file-local
//!   `helper` shadows a same-named fn elsewhere); a `module::` qualifier
//!   resolves against the file stem `module`; otherwise a *globally
//!   unique* function name resolves, and anything ambiguous gets no
//!   edge.
//! * **inherent methods** (`recv.method(…)`): `self.method(…)` resolves
//!   in the defining file; otherwise the receiver segment is matched
//!   against file stems (`self.node.dispatch(…)` → `node.rs`), the idiom
//!   this workspace uses for its layer structs. Foreign receivers
//!   (`vec.push`, `map.get`) resolve nowhere and stay leaves.
//! * **trait dispatch**: dynamic calls (`handler.handle(…)`) are opaque
//!   to a token scan, so `lint.toml [[trait_target]]` entries name the
//!   implementations a trait method can reach; each configured target
//!   gets an edge.
//!
//! Calls marked [`CallEvent::in_spawn`] (inside a `spawn` / registration
//! closure argument) get no edge at all: the callee runs on another
//! thread, so the caller must not inherit its effects.
//!
//! The net effect is an *under*-approximation of the real call graph:
//! effect propagation (see [`crate::effects`]) misses paths through
//! unresolved calls (documented in DESIGN.md §15), but never invents
//! one, which keeps interprocedural diagnostics actionable.

use crate::config::Config;
use crate::source::SourceFile;
use crate::walker::CallEvent;
use std::collections::BTreeMap;

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the declaring file in the analyzed file set.
    pub file_idx: usize,
    /// Workspace-relative path of the declaring file.
    pub path: String,
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is test code.
    pub is_test: bool,
}

/// A resolved call edge.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// Caller node id.
    pub caller: usize,
    /// Callee node id.
    pub callee: usize,
    /// File of the call site.
    pub file: String,
    /// Line of the call site.
    pub line: u32,
    /// Guards live at the call site: (lock id, acquisition line).
    pub held: Vec<(String, u32)>,
    /// Whether the call site is a configured RPC method (the direct
    /// guard-across-rpc rule already covers it).
    pub is_rpc: bool,
    /// Whether the call site is inside test code.
    pub is_test: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Function nodes, in (file, source) order.
    pub nodes: Vec<FnNode>,
    /// Resolved call edges.
    pub edges: Vec<ResolvedCall>,
    /// (file index, fn `body_start`) → node id.
    by_start: BTreeMap<(usize, usize), usize>,
}

impl CallGraph {
    /// Builds the graph from the parsed files and walker call events.
    pub fn build(files: &[SourceFile], calls: &[CallEvent], config: &Config) -> CallGraph {
        let mut graph = CallGraph::default();

        // Node table plus the resolution indices.
        let mut path_to_file: BTreeMap<&str, usize> = BTreeMap::new();
        let mut stem_files: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        // (file idx, fn name) → node ids (a name may repeat across impls).
        let mut in_file: BTreeMap<(usize, &str), Vec<usize>> = BTreeMap::new();
        let mut global: BTreeMap<&str, Vec<usize>> = BTreeMap::new();

        for (fi, f) in files.iter().enumerate() {
            path_to_file.insert(f.path.as_str(), fi);
            stem_files.entry(f.stem.as_str()).or_default().push(fi);
            for func in &f.fns {
                let id = graph.nodes.len();
                graph.nodes.push(FnNode {
                    file_idx: fi,
                    path: f.path.clone(),
                    name: func.name.clone(),
                    line: func.line,
                    is_test: func.is_test,
                });
                graph.by_start.insert((fi, func.body_start), id);
                in_file
                    .entry((fi, func.name.as_str()))
                    .or_default()
                    .push(id);
                global.entry(func.name.as_str()).or_default().push(id);
            }
        }

        let unique = |v: Option<&Vec<usize>>| match v {
            Some(ids) if ids.len() == 1 => Some(ids[0]),
            _ => None,
        };
        // A fn `name` defined in exactly one file of stem `stem`, unique
        // within that file.
        let by_stem = |stem: &str, name: &str| -> Option<usize> {
            let files_with = stem_files.get(stem)?;
            let mut hit = None;
            for &fi in files_with {
                if let Some(id) = unique(in_file.get(&(fi, name))) {
                    if hit.is_some() {
                        return None; // ambiguous across same-stem files
                    }
                    hit = Some(id);
                }
            }
            hit
        };

        for call in calls {
            if call.in_spawn {
                continue;
            }
            let Some(&file_idx) = path_to_file.get(call.file.as_str()) else {
                continue;
            };
            let Some(&caller) = graph.by_start.get(&(file_idx, call.caller_start)) else {
                continue;
            };
            let same_file = unique(in_file.get(&(file_idx, call.name.as_str())));

            let mut callees: Vec<usize> = Vec::new();
            if let Some(q) = call.qualifier.as_deref() {
                if q == "Self" || q == "self" || q == "crate" {
                    callees.extend(same_file);
                } else if let Some(id) = by_stem(q, &call.name) {
                    callees.push(id);
                }
            } else if call.is_method {
                match call.receiver.as_deref() {
                    Some("self") => callees.extend(same_file),
                    Some(recv) => {
                        if let Some(id) = by_stem(recv, &call.name) {
                            callees.push(id);
                        }
                    }
                    None => {}
                }
                // Trait dispatch: configured targets for this method name
                // (in addition to any concrete resolution).
                for tt in &config.trait_targets {
                    if tt.method != call.name {
                        continue;
                    }
                    for target in &tt.targets {
                        if let Some((stem, fn_name)) = target.split_once('.') {
                            if let Some(id) = by_stem(stem, fn_name) {
                                if !callees.contains(&id) {
                                    callees.push(id);
                                }
                            }
                        }
                    }
                }
            } else {
                // Plain free call: same file shadows the workspace;
                // otherwise a globally unique name resolves.
                match same_file {
                    Some(id) => callees.push(id),
                    None => callees.extend(unique(global.get(call.name.as_str()))),
                }
            }

            for callee in callees {
                graph.edges.push(ResolvedCall {
                    caller,
                    callee,
                    file: call.file.clone(),
                    line: call.line,
                    held: call.held.clone(),
                    is_rpc: call.is_rpc,
                    is_test: call.is_test,
                });
            }
        }
        graph
    }

    /// Node id for the function starting at `body_start` in file
    /// `file_idx`, if any.
    pub fn node_at(&self, file_idx: usize, body_start: usize) -> Option<usize> {
        self.by_start.get(&(file_idx, body_start)).copied()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::walker::{self, Events, LockTable, WalkRules};

    fn build(files: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        build_with(files, &Config::default())
    }

    fn build_with(files: &[(&str, &str)], config: &Config) -> (Vec<SourceFile>, CallGraph) {
        let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let table = LockTable::build(&parsed);
        let detached = crate::rules::detached_callees(config);
        let rules = WalkRules {
            rpc_methods: &config.rpc_methods,
            rpc_qualified: &config.rpc_qualified,
            forbidden: &config.poll_forbidden,
            detached: &detached,
        };
        let mut events = Events::default();
        for f in &parsed {
            walker::walk_file(f, &table, &rules, &mut events);
        }
        let graph = CallGraph::build(&parsed, &events.calls, config);
        (parsed, graph)
    }

    fn edge_names(graph: &CallGraph) -> Vec<(String, String)> {
        graph
            .edges
            .iter()
            .map(|e| {
                (
                    graph.nodes[e.caller].name.clone(),
                    graph.nodes[e.callee].name.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn same_file_shadows_other_files() {
        let (_, graph) = build(&[
            (
                "crates/a/src/alpha.rs",
                "fn helper() {} fn caller() { helper(); }",
            ),
            ("crates/b/src/beta.rs", "fn helper() {}"),
        ]);
        let edges = edge_names(&graph);
        assert_eq!(edges, vec![("caller".to_string(), "helper".to_string())]);
        let callee = &graph.nodes[graph.edges[0].callee];
        assert_eq!(callee.path, "crates/a/src/alpha.rs");
    }

    #[test]
    fn globally_unique_free_fn_resolves_cross_file() {
        let (_, graph) = build(&[
            ("crates/a/src/alpha.rs", "fn caller() { unique_helper(); }"),
            ("crates/b/src/beta.rs", "pub fn unique_helper() {}"),
        ]);
        assert_eq!(
            edge_names(&graph),
            vec![("caller".to_string(), "unique_helper".to_string())]
        );
    }

    #[test]
    fn ambiguous_free_fn_gets_no_edge() {
        let (_, graph) = build(&[
            ("crates/a/src/alpha.rs", "fn caller() { helper(); }"),
            ("crates/b/src/beta.rs", "fn helper() {}"),
            ("crates/c/src/gamma.rs", "fn helper() {}"),
        ]);
        assert!(graph.edges.is_empty(), "{:?}", edge_names(&graph));
    }

    #[test]
    fn method_resolves_by_receiver_file_stem_not_free_fn() {
        let (_, graph) = build(&[
            (
                "crates/a/src/engine.rs",
                "fn caller(&self) { self.node.dispatch(1); other.dispatch(1); }",
            ),
            ("crates/net/src/node.rs", "pub fn dispatch(x: u8) {}"),
        ]);
        // `self.node.dispatch` resolves via the `node` stem; the foreign
        // receiver `other` must not fall back to the global name.
        assert_eq!(
            edge_names(&graph),
            vec![("caller".to_string(), "dispatch".to_string())]
        );
    }

    #[test]
    fn self_method_resolves_same_file() {
        let (_, graph) = build(&[(
            "crates/a/src/engine.rs",
            "impl E { fn helper(&self) {} fn caller(&self) { self.helper(); } }",
        )]);
        assert_eq!(
            edge_names(&graph),
            vec![("caller".to_string(), "helper".to_string())]
        );
    }

    #[test]
    fn trait_dispatch_uses_configured_targets() {
        let mut config = Config::default();
        config.trait_targets.push(crate::config::TraitTarget {
            method: "handle".into(),
            targets: vec!["listener.handle".into(), "acceptor.handle".into()],
        });
        let (_, graph) = build_with(
            &[
                (
                    "crates/a/src/node.rs",
                    "fn serve(&self) { self.handler.handle(1); }",
                ),
                ("crates/b/src/listener.rs", "pub fn handle(x: u8) {}"),
                ("crates/c/src/acceptor.rs", "pub fn handle(x: u8) {}"),
            ],
            &config,
        );
        let mut edges = edge_names(&graph);
        edges.sort();
        assert_eq!(edges.len(), 2, "{edges:?}");
        let paths: Vec<&str> = graph
            .edges
            .iter()
            .map(|e| graph.nodes[e.callee].path.as_str())
            .collect();
        assert!(paths.contains(&"crates/b/src/listener.rs"));
        assert!(paths.contains(&"crates/c/src/acceptor.rs"));
    }

    #[test]
    fn recursion_builds_cyclic_edges_without_diverging() {
        let (_, graph) = build(&[(
            "crates/a/src/rec.rs",
            "fn ping() { pong(); } fn pong() { ping(); }",
        )]);
        let mut edges = edge_names(&graph);
        edges.sort();
        assert_eq!(
            edges,
            vec![
                ("ping".to_string(), "pong".to_string()),
                ("pong".to_string(), "ping".to_string())
            ]
        );
    }
}
