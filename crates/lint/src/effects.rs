//! The effect lattice: per-function summaries propagated to fixpoint
//! over the workspace call graph.
//!
//! Each function gets a set of *effect atoms* — [`Atom::Blocks`],
//! [`Atom::Rpc`], [`Atom::SpawnsThread`], [`Atom::Acquires`] (one per
//! lock id) and [`Atom::CapturesStrong`] (one per runtime-owning type).
//! Intrinsic atoms come from the function's own body; the fixpoint then
//! unions every callee's summary into its callers, so `poll_loop →
//! helper → thread::sleep` surfaces on `poll_loop` even though the
//! sleep is two hops away.
//!
//! Every atom carries an [`Origin`]: either the intrinsic site, or the
//! call edge that imported it. Origins form a DAG (an atom's origin is
//! fixed the first time it appears, before any caller can import it), so
//! [`Effects::chain`] can always render the full `file:line` hop list a
//! diagnostic needs.
//!
//! The blocking matchers here are *narrower* than the intraprocedural
//! poll-loop rule's `forbidden` list: `.join()` and `.recv()` only count
//! with empty argument lists (a thread join / channel receive, not
//! `path.join("x")` or `str::join(sep)`), because a transitive false
//! positive multiplies through every caller.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::Tok;
use crate::source::SourceFile;
use crate::walker::Events;
use std::collections::{BTreeMap, BTreeSet};

/// One element of the effect lattice.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Atom {
    /// May block the calling thread (sleep, channel recv, thread join).
    Blocks,
    /// Performs (or dispatches) a remote call.
    Rpc,
    /// Spawns a thread.
    SpawnsThread,
    /// Acquires the named lock.
    Acquires(String),
    /// Registers a closure holding a strong `Arc` of a runtime-owning
    /// type on shared infrastructure (timer wheel / worker pool).
    CapturesStrong(String),
}

impl Atom {
    /// Short human label for chain rendering.
    pub fn label(&self) -> String {
        match self {
            Atom::Blocks => "blocks".into(),
            Atom::Rpc => "performs RPC".into(),
            Atom::SpawnsThread => "spawns thread".into(),
            Atom::Acquires(l) => format!("acquires `{l}`"),
            Atom::CapturesStrong(t) => format!("captures strong `{t}`"),
        }
    }
}

/// Where an atom in a function's summary came from.
#[derive(Debug, Clone)]
pub enum Origin {
    /// The effect happens in the function's own body.
    Intrinsic {
        /// File of the effect site.
        file: String,
        /// Line of the effect site.
        line: u32,
        /// Rendered site (`thread::sleep`, `.recv`, lock id, …).
        what: String,
    },
    /// The effect was imported from a callee.
    Call {
        /// File of the call site.
        file: String,
        /// Line of the call site.
        line: u32,
        /// Callee node id in the call graph.
        callee: usize,
    },
}

/// A strong-capture registration site (input to `strong-capture-cycle`).
#[derive(Debug, Clone)]
pub struct StrongCapture {
    /// Runtime-owning type captured.
    pub ty: String,
    /// The binding name carried into the closure.
    pub binding: String,
    /// The registration method (`register_periodic`, `schedule_at`, …).
    pub reg_method: String,
    /// File of the registration call.
    pub file: String,
    /// Line of the registration call.
    pub line: u32,
    /// Enclosing function.
    pub function: String,
    /// Whether the enclosing function is test code.
    pub is_test: bool,
}

/// Per-function effect summaries over a call graph.
#[derive(Debug, Default)]
pub struct Effects {
    /// `summaries[node] = atom → origin`.
    pub summaries: Vec<BTreeMap<Atom, Origin>>,
    /// Strong-capture registration sites, in file order.
    pub captures: Vec<StrongCapture>,
}

impl Effects {
    /// Seeds intrinsic effects and propagates them to fixpoint.
    pub fn compute(
        files: &[SourceFile],
        events: &Events,
        graph: &CallGraph,
        config: &Config,
    ) -> Effects {
        let mut eff = Effects {
            summaries: vec![BTreeMap::new(); graph.nodes.len()],
            captures: Vec::new(),
        };
        let file_idx: BTreeMap<&str, usize> = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.path.as_str(), i))
            .collect();
        let node_of = |file: &str, caller_start: usize| -> Option<usize> {
            graph.node_at(*file_idx.get(file)?, caller_start)
        };

        // Intrinsic: lock acquisitions.
        for a in &events.acquisitions {
            if a.is_test {
                continue;
            }
            if let Some(n) = node_of(&a.file, a.caller_start) {
                eff.summaries[n]
                    .entry(Atom::Acquires(a.id.clone()))
                    .or_insert(Origin::Intrinsic {
                        file: a.file.clone(),
                        line: a.line,
                        what: a.id.clone(),
                    });
            }
        }

        // Intrinsic: RPC, blocking and thread-spawn call sites. Calls
        // inside spawn/registration closures run on another thread and
        // contribute nothing to the enclosing function's summary.
        for c in &events.calls {
            if c.is_test || c.in_spawn {
                continue;
            }
            let Some(n) = node_of(&c.file, c.caller_start) else {
                continue;
            };
            let mut put = |atom: Atom, what: String| {
                eff.summaries[n].entry(atom).or_insert(Origin::Intrinsic {
                    file: c.file.clone(),
                    line: c.line,
                    what,
                });
            };
            if c.is_rpc {
                put(Atom::Rpc, format!(".{}", c.name));
            }
            let qualified = c.qualifier.as_deref().map(|q| format!("{q}::{}", c.name));
            if let Some(q) = &qualified {
                if config.blocking_qualified.iter().any(|b| b == q) {
                    put(Atom::Blocks, q.clone());
                }
                if q == "thread::spawn" {
                    put(Atom::SpawnsThread, q.clone());
                }
            }
            if c.is_method {
                let zero = config.blocking_zero_arg.iter().any(|b| b == &c.name);
                let any = config.blocking_any_arg.iter().any(|b| b == &c.name);
                if (zero && c.empty_args) || any {
                    put(Atom::Blocks, format!(".{}", c.name));
                }
                if c.name == "spawn" {
                    put(Atom::SpawnsThread, format!(".{}", c.name));
                }
            }
        }

        // Intrinsic: strong captures at registration sites.
        let strong_fields = build_strong_field_table(files, config);
        for f in files {
            scan_strong_captures(f, &strong_fields, config, &mut eff.captures);
        }
        for cap in &eff.captures {
            if cap.is_test {
                continue;
            }
            // Attribute to the enclosing fn via name lookup within file.
            let Some(&fi) = file_idx.get(cap.file.as_str()) else {
                continue;
            };
            let Some(func) = files[fi].fns.iter().find(|fn_| fn_.name == cap.function) else {
                continue;
            };
            if let Some(n) = graph.node_at(fi, func.body_start) {
                eff.summaries[n]
                    .entry(Atom::CapturesStrong(cap.ty.clone()))
                    .or_insert(Origin::Intrinsic {
                        file: cap.file.clone(),
                        line: cap.line,
                        what: format!("{}(move || …{}…)", cap.reg_method, cap.binding),
                    });
            }
        }

        // Fixpoint: union callee summaries into callers. Monotone over a
        // finite lattice, so the loop terminates even on recursion.
        loop {
            let mut changed = false;
            for e in &graph.edges {
                if e.caller == e.callee {
                    continue;
                }
                let imported: Vec<Atom> = eff.summaries[e.callee]
                    .keys()
                    .filter(|a| !eff.summaries[e.caller].contains_key(*a))
                    .cloned()
                    .collect();
                for atom in imported {
                    eff.summaries[e.caller].insert(
                        atom,
                        Origin::Call {
                            file: e.file.clone(),
                            line: e.line,
                            callee: e.callee,
                        },
                    );
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        eff
    }

    /// Whether `node`'s summary contains `atom`.
    pub fn has(&self, node: usize, atom: &Atom) -> bool {
        self.summaries[node].contains_key(atom)
    }

    /// Renders the full call chain for `atom` on `node`:
    /// `helper (a.rs:10) -> inner (b.rs:4) -> `thread::sleep` (b.rs:9)`.
    pub fn chain(&self, graph: &CallGraph, node: usize, atom: &Atom) -> String {
        let mut hops = Vec::new();
        let mut cur = node;
        let mut guard = 0;
        while let Some(origin) = self.summaries[cur].get(atom) {
            guard += 1;
            if guard > 64 {
                hops.push("…".to_string());
                break;
            }
            match origin {
                Origin::Intrinsic { file, line, what } => {
                    hops.push(format!("`{what}` ({file}:{line})"));
                    break;
                }
                Origin::Call { file, line, callee } => {
                    hops.push(format!("{} ({file}:{line})", graph.nodes[*callee].name));
                    cur = *callee;
                }
            }
        }
        hops.join(" -> ")
    }

    /// The first hop of the chain (the call/effect site inside `node`) —
    /// where the diagnostic anchors.
    pub fn site(&self, node: usize, atom: &Atom) -> Option<(String, u32)> {
        match self.summaries[node].get(atom)? {
            Origin::Intrinsic { file, line, .. } | Origin::Call { file, line, .. } => {
                Some((file.clone(), *line))
            }
        }
    }
}

/// Global `field name → runtime-owning type` table for strong `Arc<T>`
/// fields. Unique names win; an ambiguous name (declared with different
/// types in different files) is dropped.
fn build_strong_field_table(files: &[SourceFile], config: &Config) -> BTreeMap<String, String> {
    let mut table: BTreeMap<String, String> = BTreeMap::new();
    let mut ambiguous: BTreeSet<String> = BTreeSet::new();
    for f in files {
        for rf in &f.ref_fields {
            if !rf.strong || !config.runtime_owning.iter().any(|t| t == &rf.ty) {
                continue;
            }
            match table.get(&rf.name) {
                Some(ty) if ty != &rf.ty => {
                    ambiguous.insert(rf.name.clone());
                }
                _ => {
                    table.insert(rf.name.clone(), rf.ty.clone());
                }
            }
        }
    }
    for name in ambiguous {
        table.remove(&name);
    }
    table
}

/// Scans one file for closures handed to configured registration methods
/// that capture a strong binding of a runtime-owning type.
///
/// Binding model (token-level, sequential within each function):
/// * `let b = Arc::clone(&…field)` / `let b = …field.clone()` where
///   `field` is a strong `Arc<T>` field of a runtime-owning `T` → `b`
///   is a strong handle.
/// * `let b = Arc::clone(&other)` where `other` is already strong →
///   strength propagates.
/// * `let b = Arc::downgrade(&…)` → weak; never flagged.
///
/// Registration: `recv.M(…, move |…| body)` with `M` in
/// `registration_methods`; any identifier in `body` (excluding closure
/// parameters and member accesses) naming a strong binding fires.
fn scan_strong_captures(
    file: &SourceFile,
    strong_fields: &BTreeMap<String, String>,
    config: &Config,
    out: &mut Vec<StrongCapture>,
) {
    let t = &file.tokens;
    let ident = |i: usize| match t.get(i).map(|x| &x.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    for func in &file.fns {
        // Strong bindings established so far in this function.
        let mut strong: BTreeMap<String, String> = BTreeMap::new();
        let mut weak: BTreeSet<String> = BTreeSet::new();
        let mut i = func.body_start + 1;
        while i < func.body_end {
            // `let [mut] NAME = …`
            if ident(i) == Some("let") {
                let name_idx = if ident(i + 1) == Some("mut") {
                    i + 2
                } else {
                    i + 1
                };
                if let (Some(name), Some(Tok::Punct('='))) =
                    (ident(name_idx), t.get(name_idx + 1).map(|x| &x.kind))
                {
                    let rhs = name_idx + 2;
                    // Arc::clone(&PATH) / Arc::downgrade(&PATH)
                    if ident(rhs) == Some("Arc")
                        && matches!(t.get(rhs + 1).map(|x| &x.kind), Some(Tok::PathSep))
                    {
                        let method = ident(rhs + 2);
                        let src = last_ident_before_close(t, rhs + 3, func.body_end);
                        match (method, src) {
                            (Some("downgrade"), _) => {
                                weak.insert(name.to_string());
                            }
                            (Some("clone"), Some(src)) => {
                                if let Some(ty) = strong_of(src, &strong, &weak, strong_fields) {
                                    strong.insert(name.to_string(), ty);
                                }
                            }
                            _ => {}
                        }
                    }
                    // PATH.clone()
                    else if let Some(dot) = find_clone_call(t, rhs, func.body_end) {
                        if let Some(src) = ident(dot.wrapping_sub(1)) {
                            if let Some(ty) = strong_of(src, &strong, &weak, strong_fields) {
                                strong.insert(name.to_string(), ty);
                            }
                        }
                    }
                }
            }
            // Registration call: `.M(` with M configured.
            if let Some(m) = ident(i) {
                if config.registration_methods.iter().any(|r| r == m)
                    && matches!(t.get(i.wrapping_sub(1)).map(|x| &x.kind), Some(Tok::Dot))
                    && matches!(t.get(i + 1).map(|x| &x.kind), Some(Tok::LParen))
                {
                    let close = match_paren(t, i + 1, func.body_end);
                    if let Some((binding, ty)) = closure_strong_capture(t, i + 2, close, &strong) {
                        out.push(StrongCapture {
                            ty,
                            binding,
                            reg_method: m.to_string(),
                            file: file.path.clone(),
                            line: t[i].line,
                            function: func.name.clone(),
                            is_test: func.is_test,
                        });
                    }
                }
            }
            i += 1;
        }
    }
}

/// Strength of `src`: a local strong binding, or a strong runtime-owning
/// field (unless locally rebound weak).
fn strong_of(
    src: &str,
    strong: &BTreeMap<String, String>,
    weak: &BTreeSet<String>,
    strong_fields: &BTreeMap<String, String>,
) -> Option<String> {
    if weak.contains(src) {
        return None;
    }
    strong.get(src).or_else(|| strong_fields.get(src)).cloned()
}

/// Last identifier before the `)` closing the paren opened at or after
/// `from` — the field name in `Arc::clone(&self.inner)`.
fn last_ident_before_close(t: &[crate::lexer::Token], from: usize, end: usize) -> Option<&str> {
    let open = (from..end).find(|&i| matches!(t[i].kind, Tok::LParen))?;
    let close = match_paren(t, open, end);
    let mut last = None;
    for tok in t.get(open + 1..close)? {
        if let Tok::Ident(s) = &tok.kind {
            last = Some(s.as_str());
        }
    }
    last
}

/// Does the statement starting at `rhs` end in `.clone()`? Returns the
/// index of the `clone` token.
fn find_clone_call(t: &[crate::lexer::Token], rhs: usize, end: usize) -> Option<usize> {
    let mut i = rhs;
    while i < end {
        match &t[i].kind {
            Tok::Semi => return None,
            Tok::Ident(s)
                if s == "clone"
                    && matches!(t.get(i.wrapping_sub(1)).map(|x| &x.kind), Some(Tok::Dot))
                    && matches!(t.get(i + 1).map(|x| &x.kind), Some(Tok::LParen))
                    && matches!(t.get(i + 2).map(|x| &x.kind), Some(Tok::RParen)) =>
            {
                return Some(i)
            }
            _ => i += 1,
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open` (bounded by `end`).
fn match_paren(t: &[crate::lexer::Token], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end.min(t.len()) {
        match t[i].kind {
            Tok::LParen => depth += 1,
            Tok::RParen => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end.min(t.len().saturating_sub(1))
}

/// Finds a `move |…| body` closure inside the argument range and returns
/// the first captured identifier that names a strong binding.
fn closure_strong_capture(
    t: &[crate::lexer::Token],
    args_start: usize,
    args_end: usize,
    strong: &BTreeMap<String, String>,
) -> Option<(String, String)> {
    let mut i = args_start;
    while i < args_end {
        if matches!(&t[i].kind, Tok::Ident(s) if s == "move")
            && matches!(t.get(i + 1).map(|x| &x.kind), Some(Tok::Punct('|')))
        {
            // Closure params: idents until the closing `|` (or `||`).
            let mut params: BTreeSet<&str> = BTreeSet::new();
            let mut j = i + 2;
            while j < args_end && !matches!(t[j].kind, Tok::Punct('|')) {
                if let Tok::Ident(s) = &t[j].kind {
                    params.insert(s.as_str());
                }
                j += 1;
            }
            // Body: to the end of this argument (the closure is in tail
            // position at every real registration site, so scanning to
            // the call's `)` is exact enough).
            for k in j + 1..args_end {
                let Tok::Ident(s) = &t[k].kind else { continue };
                if params.contains(s.as_str()) {
                    continue;
                }
                // Skip member accesses (`x.inner`) and path segments.
                if matches!(
                    t.get(k.wrapping_sub(1)).map(|x| &x.kind),
                    Some(Tok::Dot | Tok::PathSep)
                ) {
                    continue;
                }
                if let Some(ty) = strong.get(s.as_str()) {
                    return Some((s.clone(), ty.clone()));
                }
            }
            return None;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::walker::{self, LockTable, WalkRules};

    fn compute(files: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph, Effects) {
        let config = Config::default();
        let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let table = LockTable::build(&parsed);
        let detached = crate::rules::detached_callees(&config);
        let rules = WalkRules {
            rpc_methods: &config.rpc_methods,
            rpc_qualified: &config.rpc_qualified,
            forbidden: &config.poll_forbidden,
            detached: &detached,
        };
        let mut events = Events::default();
        for f in &parsed {
            walker::walk_file(f, &table, &rules, &mut events);
        }
        let graph = CallGraph::build(&parsed, &events.calls, &config);
        let eff = Effects::compute(&parsed, &events, &graph, &config);
        (parsed, graph, eff)
    }

    fn node_named(graph: &CallGraph, name: &str) -> usize {
        graph
            .nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no node {name}"))
    }

    #[test]
    fn blocking_propagates_through_two_hops() {
        let (_, graph, eff) = compute(&[(
            "crates/a/src/pipe.rs",
            "fn deep() { thread::sleep(d); }\n\
             fn middle() { deep(); }\n\
             fn top() { middle(); }",
        )]);
        let top = node_named(&graph, "top");
        assert!(eff.has(top, &Atom::Blocks));
        let chain = eff.chain(&graph, top, &Atom::Blocks);
        assert!(
            chain.contains("middle") && chain.contains("deep") && chain.contains("thread::sleep"),
            "{chain}"
        );
    }

    #[test]
    fn path_join_with_args_is_not_blocking() {
        let (_, graph, eff) = compute(&[(
            "crates/a/src/pathy.rs",
            "fn f(p: &Path) { let q = p.join(\"x\"); let parts = v.join(\", \"); }",
        )]);
        let f = node_named(&graph, "f");
        assert!(!eff.has(f, &Atom::Blocks));
    }

    #[test]
    fn zero_arg_join_and_recv_block() {
        let (_, graph, eff) = compute(&[(
            "crates/a/src/thready.rs",
            "fn f(h: JoinHandle<()>) { h.join(); }\nfn g(rx: Receiver<u8>) { rx.recv(); }",
        )]);
        assert!(eff.has(node_named(&graph, "f"), &Atom::Blocks));
        assert!(eff.has(node_named(&graph, "g"), &Atom::Blocks));
    }

    #[test]
    fn acquires_propagates_with_lock_id() {
        let (_, graph, eff) = compute(&[(
            "crates/a/src/store.rs",
            "struct S { tables: Mutex<u8> }\n\
             impl S { fn low(&self) { let g = self.tables.lock(); } \
                      fn high(&self) { self.low(); } }",
        )]);
        let high = node_named(&graph, "high");
        assert!(eff.has(high, &Atom::Acquires("store.tables".into())));
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let (_, graph, eff) = compute(&[(
            "crates/a/src/rec.rs",
            "fn ping(n: u8) { pong(n); }\n\
             fn pong(n: u8) { ping(n); thread::sleep(d); }",
        )]);
        assert!(eff.has(node_named(&graph, "ping"), &Atom::Blocks));
        assert!(eff.has(node_named(&graph, "pong"), &Atom::Blocks));
        // Chains terminate despite the cycle.
        let chain = eff.chain(&graph, node_named(&graph, "ping"), &Atom::Blocks);
        assert!(chain.contains("thread::sleep"), "{chain}");
    }

    #[test]
    fn strong_capture_detected_and_weak_is_clean() {
        let (_, _, eff) = compute(&[(
            "crates/a/src/device.rs",
            "struct DeviceRuntime { inner: Arc<DeviceInner> }\n\
             impl DeviceRuntime {\n\
               fn leaky(&self) {\n\
                 let inner = Arc::clone(&self.inner);\n\
                 self.events.register_periodic(\"t\", d, move || { inner.scan(); });\n\
               }\n\
               fn fixed(&self) {\n\
                 let inner = Arc::downgrade(&self.inner);\n\
                 self.events.register_periodic(\"t\", d, move || { if let Some(i) = inner.upgrade() { i.scan(); } });\n\
               }\n\
             }",
        )]);
        assert_eq!(eff.captures.len(), 1, "{:?}", eff.captures);
        assert_eq!(eff.captures[0].ty, "DeviceInner");
        assert_eq!(eff.captures[0].binding, "inner");
        assert_eq!(eff.captures[0].function, "leaky");
    }
}
