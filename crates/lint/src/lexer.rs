//! A small Rust lexer producing the token stream the analyses walk.
//!
//! The analyzer is deliberately dependency-free (no `syn`), so it works
//! from tokens plus bracket structure rather than a full AST. The lexer
//! understands everything that could derail a token-level scan: nested
//! block comments, raw/byte strings, char literals vs. lifetimes, and
//! numeric literals with suffixes.

/// One lexical token plus the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub kind: Tok,
    /// 1-indexed source line.
    pub line: u32,
}

/// Token kinds, collapsed to what the analyses need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `let`, `self`, names, …).
    Ident(String),
    /// String literal (regular, raw or byte), with its decoded-ish value:
    /// escape sequences are kept verbatim except `\"` and `\\`.
    Str(String),
    /// Char or byte literal; payload not needed by any rule.
    Char,
    /// Lifetime such as `'a` (distinct from a char literal).
    Lifetime,
    /// Numeric literal.
    Num,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `::`
    PathSep,
    /// `#`
    Pound,
    /// Any other punctuation character.
    Punct(char),
}

/// Lexes `src` into tokens. Comments and whitespace are dropped; the
/// lexer never fails — unexpected bytes become [`Tok::Punct`].
pub fn lex(src: &str) -> Vec<Token> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let mut val = String::new();
                i += 1;
                while i < n && bytes[i] != '"' {
                    if bytes[i] == '\\' && i + 1 < n {
                        if bytes[i + 1] == '"' || bytes[i + 1] == '\\' {
                            val.push(bytes[i + 1]);
                        } else {
                            val.push(bytes[i]);
                            val.push(bytes[i + 1]);
                        }
                        if bytes[i + 1] == '\n' {
                            line += 1;
                        }
                        i += 2;
                    } else {
                        if bytes[i] == '\n' {
                            line += 1;
                        }
                        val.push(bytes[i]);
                        i += 1;
                    }
                }
                i += 1; // closing quote
                out.push(Token {
                    kind: Tok::Str(val),
                    line: start_line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes, i) => {
                let start_line = line;
                let (val, next, lines) = scan_raw_or_byte_string(&bytes, i);
                line += lines;
                i = next;
                out.push(Token {
                    kind: Tok::Str(val),
                    line: start_line,
                });
            }
            // Raw identifier `r#match`: lex as a plain identifier so the
            // `#` does not desync attribute scanning downstream.
            'r' if i + 2 < n && bytes[i + 1] == '#' && is_ident_start(bytes[i + 2]) => {
                let start = i + 2;
                i = start;
                while i < n && is_ident(bytes[i]) {
                    i += 1;
                }
                let ident: String = bytes[start..i].iter().collect();
                out.push(Token {
                    kind: Tok::Ident(ident),
                    line,
                });
            }
            '\'' => {
                // Lifetime ('a, 'static) vs char literal ('x', '\n', '\'').
                let is_lifetime = i + 1 < n
                    && is_ident_start(bytes[i + 1])
                    && !(i + 2 < n && bytes[i + 2] == '\'');
                if is_lifetime {
                    i += 1;
                    while i < n && is_ident(bytes[i]) {
                        i += 1;
                    }
                    out.push(Token {
                        kind: Tok::Lifetime,
                        line,
                    });
                } else {
                    i += 1;
                    while i < n && bytes[i] != '\'' {
                        if bytes[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    out.push(Token {
                        kind: Tok::Char,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < n && (is_ident(bytes[i]) || bytes[i] == '.') {
                    // Stop a method call on a literal (`1.max(2)`) from
                    // swallowing the identifier.
                    if bytes[i] == '.' && i + 1 < n && is_ident_start(bytes[i + 1]) {
                        break;
                    }
                    i += 1;
                }
                out.push(Token {
                    kind: Tok::Num,
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident(bytes[i]) {
                    i += 1;
                }
                let ident: String = bytes[start..i].iter().collect();
                out.push(Token {
                    kind: Tok::Ident(ident),
                    line,
                });
            }
            ':' if i + 1 < n && bytes[i + 1] == ':' => {
                out.push(Token {
                    kind: Tok::PathSep,
                    line,
                });
                i += 2;
            }
            _ => {
                let kind = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    '.' => Tok::Dot,
                    '#' => Tok::Pound,
                    other => Tok::Punct(other),
                };
                out.push(Token { kind, line });
                i += 1;
            }
        }
    }
    out
}

/// Does `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` start at `i`?
fn starts_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j < n && bytes[j] == 'r' {
        j += 1;
        while j < n && bytes[j] == '#' {
            j += 1;
        }
    }
    // Plain b"…" (no r) is also handled here.
    j < n && bytes[j] == '"' && j > i
}

/// Scans a raw/byte string starting at `i`; returns (value, next index,
/// newline count).
fn scan_raw_or_byte_string(bytes: &[char], i: usize) -> (String, usize, u32) {
    let n = bytes.len();
    let mut j = i;
    let mut raw = false;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j < n && bytes[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0;
    while j < n && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut val = String::new();
    let mut lines = 0;
    while j < n {
        if bytes[j] == '\n' {
            lines += 1;
        }
        if !raw && bytes[j] == '\\' && j + 1 < n {
            val.push(bytes[j]);
            val.push(bytes[j + 1]);
            j += 2;
            continue;
        }
        if bytes[j] == '"' {
            // A raw string closes only on `"` followed by the right
            // number of hashes.
            let mut k = j + 1;
            let mut seen = 0;
            while k < n && bytes[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (val, k, lines);
            }
        }
        val.push(bytes[j]);
        j += 1;
    }
    (val, j, lines)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
            // fn not_here() {}
            /* fn nor_here() { /* nested */ } */
            let s = "fn not_a_fn"; let r = r#"fn raw"#;
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real".to_string()));
        assert!(!ids.contains(&"not_here".to_string()));
        assert!(!ids.contains(&"nor_here".to_string()));
        assert!(!ids.contains(&"not_a_fn".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn string_values_and_lines_survive() {
        let toks = lex("let a = \"dir.lookups\";\nlet b = 2;");
        assert_eq!(toks[3].kind, Tok::Str("dir.lookups".into()));
        assert_eq!(toks[3].line, 1);
        let b = toks.iter().find(|t| t.kind == Tok::Ident("b".into()));
        assert_eq!(b.map(|t| t.line), Some(2));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = lex("fn r#match(r#type: u8) { r#type + 1; } let s = r#\"raw\"#;");
        let ids = idents("fn r#match(r#type: u8) { r#type + 1; }");
        assert!(ids.contains(&"match".to_string()), "{ids:?}");
        assert!(ids.contains(&"type".to_string()), "{ids:?}");
        // The raw string after it still lexes as a string, not idents.
        assert!(toks.iter().any(|t| t.kind == Tok::Str("raw".into())));
    }

    #[test]
    fn nested_generics_and_turbofish_keep_brace_balance() {
        let src =
            "fn f() { let m: HashMap<String, Vec<HashMap<u8, u8>>> = x.get::<Vec<u8>, _>(); }";
        let toks = lex(src);
        let open = toks.iter().filter(|t| t.kind == Tok::LBrace).count();
        let close = toks.iter().filter(|t| t.kind == Tok::RBrace).count();
        assert_eq!(open, close);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = lex(r#"let a = "x\"y"; fn f() {}"#);
        assert_eq!(toks[3].kind, Tok::Str("x\"y".into()));
        assert!(idents(r#"let a = "x\"y"; fn f() {}"#).contains(&"f".to_string()));
    }
}
