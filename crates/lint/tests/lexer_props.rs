//! Lexer hardening properties: the token scanner is the foundation every
//! rule stands on, so it must (a) never panic on arbitrary input and
//! (b) keep brace accounting balanced on every real workspace file —
//! an unbalanced count silently truncates function bodies and makes
//! the interprocedural rules blind.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use proptest::prelude::*;
use syd_lint::lexer::{lex, Tok};

/// Rust-ish source fragments chosen to stress the tricky scanner states:
/// raw strings, raw identifiers, turbofish, lifetimes vs char literals,
/// and unterminated comment/string openers.
fn arb_fragment() -> BoxedStrategy<String> {
    prop_oneof![
        Just("r#\"raw \"quoted\" body\"#".to_string()),
        Just("r##\"nested \"# hash\"##".to_string()),
        Just("\"plain string\\\"esc\"".to_string()),
        Just("b\"bytes\"".to_string()),
        Just("r#match".to_string()),
        Just("Vec::<HashMap<String, Vec<u8>>>::new()".to_string()),
        Just("x >> 2 >= y".to_string()),
        Just("fn f<'a>(s: &'a str) -> &'a str {".to_string()),
        Just("}".to_string()),
        Just("'x'".to_string()),
        Just("'\\n'".to_string()),
        Just("// line comment".to_string()),
        Just("/* block /* nested */ comment */".to_string()),
        Just("/* unterminated".to_string()),
        Just("\"unterminated".to_string()),
        Just("r#\"unterminated raw".to_string()),
        Just("#[derive(Clone)]".to_string()),
        Just("let _ = 0x1f_u64 + 1.5e-3;".to_string()),
    ]
    .boxed()
}

proptest! {
    /// Arbitrary printable input must lex without panicking.
    #[test]
    fn lex_never_panics_on_arbitrary_input(src in ".{0,400}") {
        let _ = lex(&src);
    }

    /// Concatenated Rust-ish fragments — including unterminated openers —
    /// must lex without panicking, in both space- and newline-joined form.
    #[test]
    fn lex_never_panics_on_fragment_soup(parts in proptest::collection::vec(arb_fragment(), 0..24)) {
        let _ = lex(&parts.join(" "));
        let _ = lex(&parts.join("\n"));
    }
}

#[test]
fn workspace_files_lex_with_balanced_braces() {
    // Every checked-in source file must scan to an exactly balanced brace
    // stream — this is the invariant the function walker depends on.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut checked = 0usize;
    for entry in walk_rs_files(std::path::Path::new(root)) {
        let src = std::fs::read_to_string(&entry).unwrap();
        let toks = lex(&src);
        let mut depth = 0i64;
        for t in &toks {
            match t.kind {
                Tok::LBrace => depth += 1,
                Tok::RBrace => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "negative brace depth in {}", entry.display());
        }
        assert_eq!(depth, 0, "unbalanced braces in {}", entry.display());
        checked += 1;
    }
    assert!(checked > 40, "workspace walk found only {checked} files");
}

fn walk_rs_files(root: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n != "target") {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out
}
