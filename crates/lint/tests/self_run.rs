//! The workspace must lint clean with the checked-in `lint.toml` —
//! the same gate CI enforces, reachable from plain `cargo test`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::path::Path;
use syd_lint::config::Config;
use syd_lint::{analyze, find_workspace_root, workspace_files};

#[test]
fn workspace_is_clean_under_checked_in_config() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");

    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("checked-in lint.toml");
    let config = Config::from_toml(&config_text).expect("lint.toml parses");

    let files = workspace_files(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks truncated: {} files",
        files.len()
    );

    let report = analyze(&files, &config, true);
    assert!(
        report.clean(),
        "workspace must lint clean:\n{}",
        report.render_text()
    );
    // Suppressions must carry their justification through.
    for (d, reason) in &report.suppressed {
        assert!(!reason.trim().is_empty(), "unjustified suppression: {d}");
    }
}
