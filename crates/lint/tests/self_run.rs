//! The workspace must lint clean with the checked-in `lint.toml` —
//! the same gate CI enforces, reachable from plain `cargo test`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::path::Path;
use syd_lint::config::Config;
use syd_lint::{analyze, find_workspace_root, workspace_files};

#[test]
fn workspace_is_clean_under_checked_in_config() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");

    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("checked-in lint.toml");
    let mut config = Config::from_toml(&config_text).expect("lint.toml parses");
    // CI runs with the real date; pin expiry evaluation on here too so an
    // allow rotting past its `expires` fails `cargo test`, not just CI.
    config.today = Some(syd_lint::config::civil_today());

    let files = workspace_files(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks truncated: {} files",
        files.len()
    );

    let started = std::time::Instant::now();
    let report = analyze(&files, &config, true);
    let elapsed = started.elapsed();
    assert!(
        report.clean(),
        "workspace must lint clean (stale-suppression included):\n{}",
        report.render_text()
    );
    // Allowlist audit: every surviving suppression is justified and was
    // actually exercised this run (stale-suppression enforces the latter,
    // but assert the hit bookkeeping directly as well).
    for (d, reason) in &report.suppressed {
        assert!(!reason.trim().is_empty(), "unjustified suppression: {d}");
    }
    assert_eq!(
        report.allow_hits.len(),
        config.allows.len(),
        "every [[allow]] in lint.toml must still match a diagnostic"
    );

    // CI budget: the lint job runs under `timeout 60`; the analysis pass
    // itself (debug build, full workspace) must stay far inside that.
    assert!(
        elapsed < std::time::Duration::from_secs(60),
        "workspace self-run took {elapsed:?}, breaking the 60s CI budget"
    );
}
