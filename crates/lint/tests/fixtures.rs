//! Seeded-violation corpus: every rule must fire on its fixture —
//! exactly once, and only that rule.
//!
//! Fixture files live under `tests/fixtures/` (which the workspace
//! walker skips), but are presented to the analyzer under a `src/` path:
//! the rules deliberately exempt test-path code, and these fixtures
//! model production code.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use syd_lint::analyze;
use syd_lint::config::Config;

fn run_fixture(name: &str) -> syd_lint::report::Report {
    let disk_path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&disk_path).unwrap_or_else(|e| panic!("reading {disk_path}: {e}"));
    let files = vec![(format!("crates/fixture/src/{name}"), src)];
    analyze(&files, &Config::default(), false)
}

fn assert_fires_once(name: &str, rule: &str) {
    let report = run_fixture(name);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "{name} must produce exactly one diagnostic, got:\n{}",
        report.render_text()
    );
    assert_eq!(report.diagnostics[0].rule.name(), rule, "{name}");
    assert!(report.diagnostics[0].line > 1, "{name} has a real line");
}

#[test]
fn lock_order_fixture_fires_once() {
    assert_fires_once("lock_order.rs", "lock-order");
}

#[test]
fn guard_across_rpc_fixture_fires_once() {
    assert_fires_once("guard_across_rpc.rs", "guard-across-rpc");
}

#[test]
fn poll_block_fixture_fires_once() {
    assert_fires_once("poll_block.rs", "no-blocking-in-poll-loop");
}

#[test]
fn reactor_block_fixture_fires_once() {
    assert_fires_once("reactor_block.rs", "no-blocking-in-poll-loop");
}

#[test]
fn timer_block_fixture_fires_once() {
    assert_fires_once("timer_block.rs", "no-blocking-in-poll-loop");
}

#[test]
fn guard_across_dispatch_fixture_fires_once() {
    assert_fires_once("guard_across_dispatch.rs", "guard-across-rpc");
}

#[test]
fn counter_registry_fixture_fires_once() {
    assert_fires_once("counter_registry.rs", "counter-registry");
}

#[test]
fn span_registry_fixture_fires_once() {
    let report = run_fixture("span_registry.rs");
    assert_eq!(
        report.diagnostics.len(),
        1,
        "span_registry.rs must produce exactly one diagnostic, got:\n{}",
        report.render_text()
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.name(), "counter-registry");
    assert!(
        d.message.contains("span kind"),
        "span call sites get the span wording: {}",
        d.message
    );
}

#[test]
fn boundary_fixture_fires_once() {
    assert_fires_once("boundary.rs", "coordination-boundary");
}

#[test]
fn transitive_block_fixture_fires_once_with_full_chain() {
    let report = run_fixture("transitive_block.rs");
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render_text());
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.name(), "transitive-blocking");
    // The message carries every hop with file:line, down to the
    // blocking site itself.
    for hop in ["drain_backlog", "wait_for_event", "`.recv`"] {
        assert!(d.message.contains(hop), "missing hop {hop}: {}", d.message);
    }
    assert!(
        d.message
            .contains("crates/fixture/src/transitive_block.rs:"),
        "{}",
        d.message
    );
}

#[test]
fn guard_transitive_rpc_fixture_fires_once() {
    let report = run_fixture("guard_transitive_rpc.rs");
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render_text());
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.name(), "guard-across-rpc");
    assert!(
        d.message.contains("transitively") && d.message.contains("`.invoke`"),
        "{}",
        d.message
    );
    assert_eq!(d.function.as_deref(), Some("notify"));
}

#[test]
fn lock_chain_fixture_fires_once() {
    let report = run_fixture("lock_chain.rs");
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render_text());
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.name(), "lock-order");
    assert!(
        d.message.contains("call chain") && d.message.contains("count"),
        "{}",
        d.message
    );
}

#[test]
fn strong_capture_fixture_fires_once() {
    let report = run_fixture("strong_capture.rs");
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render_text());
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.name(), "strong-capture-cycle");
    assert!(
        d.message.contains("Arc<DeviceInner>") && d.message.contains("register_periodic"),
        "{}",
        d.message
    );
    assert_eq!(d.function.as_deref(), Some("register_periodic_tasks"));
}

#[test]
fn hierarchy_inversion_across_files_fires() {
    // Not a corpus file: the hierarchy check needs two declaring files
    // (lock ids are `file-stem.field`), so the pair is built inline.
    let files = vec![
        (
            "crates/store/src/lock.rs".to_string(),
            "pub struct LockManager { state: Mutex<Tables> }".to_string(),
        ),
        (
            "crates/core/src/engine.rs".to_string(),
            "struct SydEngine { cache: Mutex<u8> } \
             impl SydEngine { fn bad(&self, mgr: &LockManager) { \
                 let c = self.cache.lock(); \
                 let s = mgr.state.lock(); \
                 let _ = (c, s); } }"
                .to_string(),
        ),
    ];
    let report = analyze(&files, &Config::default(), false);
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render_text());
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.name(), "lock-order");
    assert!(
        d.message.contains("lock.state") && d.message.contains("engine.cache"),
        "{}",
        d.message
    );
}

#[test]
fn runtime_rank_sits_above_node_locks() {
    // The shared runtime's locks (rank 5) must never be held while
    // grabbing a node-layer lock — this is the self-deadlock the
    // reactor's "drain outside the ready lock" discipline prevents.
    let files = vec![
        (
            "crates/net/src/node.rs".to_string(),
            "pub struct NodeShared { pending: Mutex<u8> }".to_string(),
        ),
        (
            "crates/net/src/runtime.rs".to_string(),
            "struct Reactor { ready: Mutex<u8> } \
             impl Reactor { fn bad(&self, node: &NodeShared) { \
                 let r = self.ready.lock(); \
                 let p = node.pending.lock(); \
                 let _ = (r, p); } }"
                .to_string(),
        ),
    ];
    let report = analyze(&files, &Config::default(), false);
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render_text());
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.name(), "lock-order");
    assert!(
        d.message.contains("node.pending") && d.message.contains("runtime.ready"),
        "{}",
        d.message
    );
}

#[test]
fn rank_inversion_through_call_chain_fires() {
    // Interprocedural hierarchy inversion: `engine.cache` (rank 2) held
    // while a cross-file helper acquires `lock.state` (rank 1). No single
    // function shows both acquisitions.
    let files = vec![
        (
            "crates/store/src/lock.rs".to_string(),
            "pub struct LockManager { state: Mutex<Tables> } \
             pub fn checkout(mgr: &LockManager) { let s = mgr.state.lock(); let _ = s; }"
                .to_string(),
        ),
        (
            "crates/core/src/engine.rs".to_string(),
            "struct SydEngine { cache: Mutex<u8> } \
             impl SydEngine { fn bad(&self, mgr: &LockManager) { \
                 let c = self.cache.lock(); \
                 lock::checkout(mgr); \
                 drop(c); } }"
                .to_string(),
        ),
    ];
    let report = analyze(&files, &Config::default(), false);
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render_text());
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.name(), "lock-order");
    assert!(
        d.message.contains("lock.state")
            && d.message.contains("engine.cache")
            && d.message.contains("call chain")
            && d.message.contains("checkout"),
        "{}",
        d.message
    );
}

#[test]
fn fixtures_are_rule_pure() {
    // No fixture may trip any *other* rule — one seeded defect per file.
    for (name, rule) in [
        ("lock_order.rs", "lock-order"),
        ("guard_across_rpc.rs", "guard-across-rpc"),
        ("poll_block.rs", "no-blocking-in-poll-loop"),
        ("reactor_block.rs", "no-blocking-in-poll-loop"),
        ("timer_block.rs", "no-blocking-in-poll-loop"),
        ("guard_across_dispatch.rs", "guard-across-rpc"),
        ("counter_registry.rs", "counter-registry"),
        ("span_registry.rs", "counter-registry"),
        ("boundary.rs", "coordination-boundary"),
        ("transitive_block.rs", "transitive-blocking"),
        ("guard_transitive_rpc.rs", "guard-across-rpc"),
        ("lock_chain.rs", "lock-order"),
        ("strong_capture.rs", "strong-capture-cycle"),
    ] {
        let report = run_fixture(name);
        for d in &report.diagnostics {
            assert_eq!(
                d.rule.name(),
                rule,
                "{name} leaked a {} finding",
                d.rule.name()
            );
        }
    }
}
