//! Seeded violation: reentrant acquisition that only exists through a
//! call chain — the helper re-locks a mutex its caller already holds.
//! Expected: exactly one `lock-order` diagnostic.

struct Registry {
    entries: Mutex<u8>,
}

impl Registry {
    fn insert(&self) {
        let guard = self.entries.lock();
        self.count(); // <- fires here: count() re-locks `entries`
        drop(guard);
    }

    fn count(&self) -> usize {
        let g = self.entries.lock();
        let _ = g;
        0
    }
}
