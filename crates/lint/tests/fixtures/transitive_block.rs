//! Seeded violation: a poll loop that blocks two hops down its call
//! chain — the body itself never names a forbidden callee.
//! Expected: exactly one `transitive-blocking` diagnostic.

fn poll_loop(rx: &Receiver<Event>) {
    loop {
        drain_backlog(rx); // <- fires here: chain reaches rx.recv()
    }
}

fn drain_backlog(rx: &Receiver<Event>) {
    wait_for_event(rx);
}

fn wait_for_event(rx: &Receiver<Event>) {
    let _ = rx.recv();
}
