//! Seeded violation: re-acquiring a held parking_lot Mutex.
//! Expected: exactly one `lock-order` diagnostic (self-deadlock).

struct Ledger {
    state: Mutex<u8>,
}

impl Ledger {
    fn double_lock(&self) {
        let outer = self.state.lock();
        let inner = self.state.lock(); // <- fires here
        let _ = (*outer, *inner);
    }
}
