//! Seeded violation: a lock guard held across a helper that performs the
//! remote call one hop down — the guarded body has no `invoke` of its
//! own. Expected: exactly one `guard-across-rpc` diagnostic.

struct Relay {
    pending: Mutex<u8>,
}

impl Relay {
    fn notify(&self, peer: &Peer) {
        let guard = self.pending.lock();
        self.forward(peer); // <- fires here: forward() invokes remotely
        drop(guard);
    }

    fn forward(&self, peer: &Peer) {
        peer.invoke("ping");
    }
}
