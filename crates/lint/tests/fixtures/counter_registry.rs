//! Seeded violation: inline metric-name literal at a metric call site.
//! Expected: exactly one `counter-registry` diagnostic.

fn record(metrics: &Registry) {
    metrics.counter("fixture.unregistered").inc(); // <- fires here
}
