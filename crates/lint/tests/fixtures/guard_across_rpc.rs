//! Seeded violation: lock guard live across a remote invocation.
//! Expected: exactly one `guard-across-rpc` diagnostic.

struct Node {
    pending: Mutex<u8>,
}

impl Node {
    fn notify(&self, peer: &Peer) {
        let guard = self.pending.lock();
        peer.invoke("ping"); // <- fires here: `guard` still live
        drop(guard);
    }
}
