//! Seeded violation: the pre-fix shape of
//! `DeviceRuntime::register_periodic_tasks` — a strong `Arc<DeviceInner>`
//! captured by a closure registered on the shared timer wheel. The wheel
//! outlives every device, so the capture pins device + runtime after the
//! last external handle drops (the real fix captures `Arc::downgrade`
//! and upgrades inside the closure).
//! Expected: exactly one `strong-capture-cycle` diagnostic.

struct DeviceRuntime {
    inner: Arc<DeviceInner>,
}

impl DeviceRuntime {
    fn register_periodic_tasks(&self) {
        let inner = Arc::clone(&self.inner);
        self.events
            .register_periodic("link-expiry", EXPIRY_TICK, move || {
                // <- fires on the register_periodic call above
                let _ = inner.links.expire_scan();
            });
    }
}
