//! Seeded violation: §4.3 protocol method invoked outside the
//! negotiation core. Expected: exactly one `coordination-boundary`
//! diagnostic.

fn rogue_mark(engine: &SydEngine, group: &str) {
    let _ = engine.invoke_group(group, "mark", &[]); // <- fires here
}
