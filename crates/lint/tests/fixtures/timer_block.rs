//! Seeded violation: sleeping on the shared timer wheel's dispatch
//! thread delays every armed deadline in the process.
//! Expected: exactly one `no-blocking-in-poll-loop` diagnostic.

fn timer_loop(tick: Duration) {
    loop {
        std::thread::sleep(tick); // <- fires here
    }
}
