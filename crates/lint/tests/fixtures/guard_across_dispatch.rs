//! Seeded violation: lock guard live across the reactor's event-dispatch
//! re-entry point (`dispatch_event` runs node handlers inline).
//! Expected: exactly one `guard-across-rpc` diagnostic.

struct Reactor {
    nodes: Mutex<u8>,
}

impl Reactor {
    fn wake(&self, node: &NodeShared) {
        let guard = self.nodes.lock();
        node.dispatch_event(Event::Ready); // <- fires here: `guard` still live
        drop(guard);
    }
}
