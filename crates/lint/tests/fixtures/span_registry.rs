//! Seeded violation: inline span-kind literal at a tracer call site.
//! Expected: exactly one `counter-registry` diagnostic.

fn trace_op(tracer: &Tracer) {
    let _span = tracer.span("fixture.unregistered_kind"); // <- fires here
}
