//! Seeded violation: blocking call inside a poll-loop function.
//! Expected: exactly one `no-blocking-in-poll-loop` diagnostic.

fn poll_loop(tick: Duration) {
    loop {
        std::thread::sleep(tick); // <- fires here
    }
}
