//! Seeded violation: blocking channel receive inside the shared reactor
//! loop — one parked drain stalls every device on the runtime.
//! Expected: exactly one `no-blocking-in-poll-loop` diagnostic.

fn reactor_loop(rx: &Receiver<NodeAddr>) {
    loop {
        let addr = rx.recv(); // <- fires here
        dispatch(addr);
    }
}
