//! Integration tests for `stale-suppression`: allowlist entries that have
//! expired (past their `expires` date) or that no longer match any
//! diagnostic must themselves be flagged, so the allowlist cannot rot.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use syd_lint::analyze;
use syd_lint::config::Config;

/// A minimal source that trips `no-blocking-in-poll-loop` once.
fn blocking_poll_file() -> (String, String) {
    (
        "crates/net/src/poll.rs".to_string(),
        "fn poll_loop(d: Duration) { loop { thread::sleep(d); } }".to_string(),
    )
}

fn config_with_allow(expires: Option<&str>) -> Config {
    let expiry_line = match expires {
        Some(d) => format!("expires = \"{d}\"\n"),
        None => String::new(),
    };
    let toml = format!(
        "[[allow]]\n\
         rule = \"no-blocking-in-poll-loop\"\n\
         file = \"crates/net/src/poll.rs\"\n\
         reason = \"handshake helper, runs before the reactor starts\"\n\
         {expiry_line}"
    );
    Config::from_toml(&toml).expect("allow toml parses")
}

#[test]
fn unexpired_allow_suppresses_and_is_not_stale() {
    let mut config = config_with_allow(Some("2099-01-01"));
    config.today = Some("2026-08-08".to_string());
    let report = analyze(&[blocking_poll_file()], &config, true);
    assert!(
        report.diagnostics.is_empty(),
        "future-dated allow must still suppress:\n{}",
        report.render_text()
    );
}

#[test]
fn expired_allow_resurfaces_diagnostic_and_flags_itself() {
    let mut config = config_with_allow(Some("2026-01-01"));
    config.today = Some("2026-08-08".to_string());
    let report = analyze(&[blocking_poll_file()], &config, true);
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.name()).collect();
    // Both the underlying violation and the rotten allow entry surface.
    assert!(
        rules.contains(&"no-blocking-in-poll-loop"),
        "suppressed diagnostic must come back: {rules:?}"
    );
    assert!(
        rules.contains(&"stale-suppression"),
        "expired allow must be flagged: {rules:?}"
    );
    assert_eq!(report.diagnostics.len(), 2, "{}", report.render_text());
    let stale = report
        .diagnostics
        .iter()
        .find(|d| d.rule.name() == "stale-suppression")
        .unwrap();
    assert!(
        stale.file == "lint.toml" && stale.message.contains("2026-01-01"),
        "stale finding points at the config entry: {} {}",
        stale.file,
        stale.message
    );
}

#[test]
fn unused_allow_is_flagged_in_workspace_mode_only() {
    // The allow matches nothing: the analyzed file is clean.
    let config = config_with_allow(None);
    let clean = (
        "crates/net/src/poll.rs".to_string(),
        "fn helper() { let x = 1; let _ = x; }".to_string(),
    );

    let per_file = analyze(std::slice::from_ref(&clean), &config, false);
    assert!(
        per_file.diagnostics.is_empty(),
        "single-file runs see a partial workspace — unused allows are not\
         decidable there:\n{}",
        per_file.render_text()
    );

    let workspace = analyze(&[clean], &config, true);
    assert_eq!(
        workspace.diagnostics.len(),
        1,
        "{}",
        workspace.render_text()
    );
    let d = &workspace.diagnostics[0];
    assert_eq!(d.rule.name(), "stale-suppression");
    assert!(d.message.contains("no longer matches"), "{}", d.message);
}

#[test]
fn used_allow_is_not_flagged_as_unused() {
    let config = config_with_allow(None);
    let report = analyze(&[blocking_poll_file()], &config, true);
    assert!(
        report.diagnostics.is_empty(),
        "a matching allow suppresses and is not stale:\n{}",
        report.render_text()
    );
}

#[test]
fn allow_without_today_never_expires() {
    // `today` unset (library callers): expiry is not evaluated, the
    // allow keeps suppressing.
    let config = config_with_allow(Some("2000-01-01"));
    assert!(config.today.is_none());
    let report = analyze(&[blocking_poll_file()], &config, true);
    assert!(
        report.diagnostics.is_empty(),
        "without a reference date expiry must not trigger:\n{}",
        report.render_text()
    );
}
