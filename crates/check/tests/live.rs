//! Live-system fault injection: the checker against real devices on a
//! simulated network — real negotiations must audit clean (strictly, on
//! an ideal network), and every planted defect must be caught with the
//! offending session id and its journal excerpt.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::time::Duration;

use syd_check::{AuditOptions, Rule};
use syd_core::device::entity_lock_key;
use syd_core::links::Constraint;
use syd_core::negotiate::{link_service, Participant};
use syd_core::{DeviceRuntime, SydEnv};
use syd_net::NetConfig;
use syd_telemetry::EventKind;
use syd_types::Value;

fn rig(n: usize) -> (SydEnv, Vec<DeviceRuntime>) {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let devices = (0..n)
        .map(|i| env.device(&format!("live{i}"), "").unwrap())
        .collect();
    (env, devices)
}

/// Real negotiations on an ideal network audit clean even under the
/// strict rules (every story closed, no abort after commit).
#[test]
fn negotiations_on_ideal_network_audit_strictly_clean() {
    let (_env, devices) = rig(4);
    let coordinator = &devices[0];
    for round in 0..12 {
        let parts: Vec<Participant> = devices
            .iter()
            .map(|d| Participant::new(d.user(), format!("e{}", round % 3), Value::str("x")))
            .collect();
        let constraint = match round % 3 {
            0 => Constraint::And,
            1 => Constraint::AtLeast(2),
            _ => Constraint::Exactly(1),
        };
        coordinator
            .negotiator()
            .negotiate(constraint, &parts)
            .unwrap();
    }
    syd_check::audit_strict(devices.iter()).assert_clean();
}

/// A coordinator that dies between mark and commit strands the entity
/// lock on the participant; the stale-session sweep must reclaim it,
/// journal the cleanup, and leave the audit clean.
#[test]
fn sweep_reclaims_a_dead_owners_lock() {
    let (_env, devices) = rig(2);
    let (coordinator, participant) = (&devices[0], &devices[1]);

    // The mark of a coordinator that will never commit or abort.
    let dead_session = (coordinator.user().raw() << 24) | 0x77;
    let vote = coordinator
        .engine()
        .invoke(
            participant.user(),
            &link_service(),
            "mark",
            vec![
                Value::from(dead_session),
                Value::str("slot:stranded"),
                Value::str("chg"),
            ],
        )
        .unwrap();
    assert_eq!(vote, Value::Bool(true));
    assert_eq!(participant.store().locks().held_count(), 1);

    // Before the sweep: the story is open, so the loss-tolerant audit
    // already accepts it (the lock is merely awaiting cleanup)...
    syd_check::audit(devices.iter()).assert_clean();
    // ...but the strict audit refuses to sign off on the open story.
    let strict = syd_check::audit_with(devices.iter(), &AuditOptions::strict());
    assert!(
        strict.violations.iter().any(|v| v.rule == Rule::LockLeak),
        "strict audit missed the stranded lock:\n{strict}"
    );

    // The sweep reclaims the lock and journals the cleanup.
    assert_eq!(participant.sweep_stale_sessions(Duration::ZERO), 1);
    assert_eq!(participant.store().locks().held_count(), 0);
    let journal = participant.journal().dump();
    assert!(
        journal.contains("reason=stale-sweep"),
        "sweep did not journal its cleanup:\n{journal}"
    );

    // Now even the strict audit is clean: the story closed.
    syd_check::audit_strict(devices.iter()).assert_clean();
}

/// A lock whose journal story closed but which is still held can never
/// be released by the protocol — the audit reports it as a leak with
/// the session id and the story as evidence.
#[test]
fn closed_story_with_held_lock_is_a_leak() {
    let (_env, devices) = rig(1);
    let device = &devices[0];
    let session = 0xBAD_CAFE;
    device.journal().record(
        EventKind::Lock,
        format!("session={session} entity=slot:leak"),
    );
    device.journal().record(
        EventKind::Change,
        format!("session={session} entity=slot:leak applied=true"),
    );
    assert!(device
        .store()
        .locks()
        .try_acquire(session, &entity_lock_key("slot:leak")));

    let report = syd_check::audit(devices.iter());
    let leak = report
        .violations
        .iter()
        .find(|v| v.rule == Rule::LockLeak)
        .unwrap_or_else(|| panic!("no leak reported:\n{report}"));
    assert_eq!(leak.session, Some(session));
    assert_eq!(leak.device, device.name());
    assert!(
        leak.excerpt.iter().any(|l| l.contains("slot:leak")),
        "excerpt does not pin the story: {:?}",
        leak.excerpt
    );
}

/// A forged change record by a session that does not hold the lock is
/// reported as a double-book even while a legitimate session proceeds.
#[test]
fn forged_commit_without_lock_is_a_double_book() {
    let (_env, devices) = rig(1);
    let device = &devices[0];
    let holder = 0x1111;
    let intruder = 0x2222;
    let journal = device.journal();
    journal.record(EventKind::Lock, format!("session={holder} entity=slot:x"));
    journal.record(
        EventKind::Change,
        format!("session={intruder} entity=slot:x applied=true"),
    );
    journal.record(
        EventKind::Change,
        format!("session={holder} entity=slot:x applied=true"),
    );

    let report = syd_check::audit(devices.iter());
    let dbl = report
        .violations
        .iter()
        .find(|v| v.rule == Rule::DoubleBook)
        .unwrap_or_else(|| panic!("no double-book reported:\n{report}"));
    assert_eq!(dbl.session, Some(intruder));
    assert!(!dbl.excerpt.is_empty());
}
