//! Synthetic journal generator — the oracle for the checker itself.
//!
//! Generates per-device journals for batches of well-formed §4.3
//! negotiation sessions, then optionally applies one targeted
//! [`Mutation`] that breaks a specific invariant. The checker's own
//! tests assert that unmutated journals audit clean and every mutation
//! is caught with the right [`crate::Rule`] — without an oracle, a
//! checker that accepts everything would look identical to one that
//! works.
//!
//! The generator carries its own xorshift RNG so `syd-check` needs no
//! dependency on an external randomness crate; proptest layers real
//! shrinking on top in the test suite.

use syd_telemetry::{EventKind, JournalEvent};

use crate::event::ConstraintKind;

/// A deliberate protocol defect to inject into one generated session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// No defect: the journals describe a correct run.
    None,
    /// A committed participant's `Change`/release record is dropped, so
    /// its lock story never closes (a leaked lock).
    DropRelease,
    /// An extra `Change` is recorded for a foreign session while the
    /// entity is locked by another (a double booking).
    DoubleCommit,
    /// A participant records `Change` without ever locking the entity.
    CommitWithoutLock,
    /// The coordinator reports `satisfied=true` with fewer commits than
    /// the constraint requires.
    BadArithmetic,
}

impl Mutation {
    /// Every mutation, for exhaustive oracle sweeps.
    pub const ALL: [Mutation; 5] = [
        Mutation::None,
        Mutation::DropRelease,
        Mutation::DoubleCommit,
        Mutation::CommitWithoutLock,
        Mutation::BadArithmetic,
    ];
}

/// Deterministic xorshift64* generator.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (zero is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// One device's journal under construction.
struct DeviceJournal {
    name: String,
    seq: u64,
    events: Vec<JournalEvent>,
}

impl DeviceJournal {
    fn push(&mut self, at: &mut u64, kind: EventKind, detail: String) {
        *at += 1;
        self.events.push(JournalEvent {
            seq: self.seq,
            at_micros: *at,
            trace: 0,
            span: 0,
            kind,
            detail,
        });
        self.seq += 1;
    }
}

/// Generates `sessions` sequential negotiation sessions across `devices`
/// devices, applying `mutation` to the middle session. Returns one
/// `(name, journal)` pair per device, shaped exactly like
/// [`crate::audit_journals`] expects.
pub fn generate(
    seed: u64,
    sessions: usize,
    devices: usize,
    mutation: Mutation,
) -> Vec<(String, Vec<JournalEvent>)> {
    let devices = devices.max(2);
    let mut rng = Rng::new(seed);
    let mut journals: Vec<DeviceJournal> = (0..devices)
        .map(|i| DeviceJournal {
            name: format!("dev{i}"),
            seq: 0,
            events: Vec::new(),
        })
        .collect();
    let mut at = 0u64;
    let target = sessions / 2;

    for i in 0..sessions {
        let m = if i == target {
            mutation
        } else {
            Mutation::None
        };
        gen_session(&mut rng, &mut journals, &mut at, i as u64, m);
    }

    journals.into_iter().map(|d| (d.name, d.events)).collect()
}

fn gen_session(
    rng: &mut Rng,
    journals: &mut [DeviceJournal],
    at: &mut u64,
    index: u64,
    mutation: Mutation,
) {
    let devices = journals.len();
    let coord = rng.below(devices as u64) as usize;
    let session = ((coord as u64 + 1) << 24) | (index + 1);
    // The mutated session gets its own entity: a leaked lock on a shared
    // slot would (correctly) trip double-book checks on *later* sessions
    // too, muddying the oracle's one-mutation → one-rule mapping.
    let entity = if mutation == Mutation::None {
        format!("slot:{}", rng.below(4))
    } else {
        "slot:mut".to_owned()
    };
    // Participants: every device except duplicates, 1..=devices of them.
    let count = 1 + rng.below(devices as u64) as usize;
    let mut participants: Vec<usize> = (0..devices).collect();
    for i in (1..participants.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        participants.swap(i, j);
    }
    participants.truncate(count);

    let constraint = if mutation == Mutation::BadArithmetic {
        // Force a constraint that the mutated counts will clearly violate.
        ConstraintKind::And
    } else {
        match rng.below(3) {
            0 => ConstraintKind::And,
            1 => ConstraintKind::AtLeast(1 + rng.below(count as u64) as u32),
            _ => ConstraintKind::Exactly(1 + rng.below(count as u64) as u32),
        }
    };

    journals[coord].push(
        at,
        EventKind::SpanBegin,
        format!(
            "negotiate session={session} constraint={constraint:?} participants={}",
            participants.len()
        ),
    );

    // Mark phase: mostly yes votes; occasional declines and lock-busy.
    let mut yes = Vec::new();
    let mut declined = 0usize;
    let mut contended = 0usize;
    for &p in &participants {
        if mutation == Mutation::None && rng.chance(1, 8) {
            if rng.chance(1, 2) {
                // Lock-busy: no lock was ever taken on p.
                journals[p].push(
                    at,
                    EventKind::Mark,
                    format!("session={session} entity={entity} vote=no reason=lock-busy"),
                );
                // A lock-busy decline counts in both tallies: `contended`
                // is the transient subset of `declined`.
                declined += 1;
                contended += 1;
            } else {
                // Prepare failure: lock taken, then released.
                journals[p].push(
                    at,
                    EventKind::Lock,
                    format!("session={session} entity={entity}"),
                );
                journals[p].push(
                    at,
                    EventKind::Mark,
                    format!("session={session} entity={entity} vote=no reason={entity} is busy"),
                );
                declined += 1;
            }
        } else {
            journals[p].push(
                at,
                EventKind::Lock,
                format!("session={session} entity={entity}"),
            );
            journals[p].push(
                at,
                EventKind::Mark,
                format!("session={session} entity={entity} vote=yes"),
            );
            yes.push(p);
        }
    }
    journals[coord].push(
        at,
        EventKind::Mark,
        format!(
            "session={session} yes={} declined={declined} contended={contended}",
            yes.len()
        ),
    );

    // Decide the outcome.
    let n = participants.len();
    let satisfied = match constraint {
        ConstraintKind::And => yes.len() == n,
        ConstraintKind::AtLeast(k) | ConstraintKind::Exactly(k) => yes.len() >= k as usize,
    };
    let committed: Vec<usize> = if satisfied {
        match constraint {
            ConstraintKind::Exactly(k) => yes.iter().copied().take(k as usize).collect(),
            _ => yes.clone(),
        }
    } else {
        Vec::new()
    };
    let aborted: Vec<usize> = yes
        .iter()
        .copied()
        .filter(|p| !committed.contains(p))
        .collect();

    // Commit fan-out.
    let mut dropped = false;
    for &p in &committed {
        if mutation == Mutation::DropRelease && !dropped {
            // The change (and therefore the release) never lands: the
            // participant's lock story stays open.
            dropped = true;
            continue;
        }
        if mutation == Mutation::CommitWithoutLock && p == committed[0] {
            // Recorded on a device that never locked the entity: pick a
            // non-participant if one exists, else reuse with a bogus
            // session id so no lock precedes it.
            let stranger = (0..journals.len()).find(|d| !participants.contains(d));
            match stranger {
                Some(d) => journals[d].push(
                    at,
                    EventKind::Change,
                    format!("session={session} entity={entity} applied=true"),
                ),
                None => journals[p].push(
                    at,
                    EventKind::Change,
                    format!("session={} entity={entity} applied=true", session ^ 0xbad),
                ),
            }
        }
        if mutation == Mutation::DoubleCommit && p == committed[0] {
            // A foreign session commits the entity while `session` still
            // holds its lock — the classic double booking.
            journals[p].push(
                at,
                EventKind::Change,
                format!("session={} entity={entity} applied=true", session ^ 0xf00d),
            );
        }
        journals[p].push(
            at,
            EventKind::Change,
            format!("session={session} entity={entity} applied=true"),
        );
    }
    if !committed.is_empty() {
        journals[coord].push(
            at,
            EventKind::Change,
            format!("session={session} committed={}", committed.len()),
        );
    }

    // Abort fan-out: yes-voters not committed, plus decliners (broadcast
    // cleanup — legal without a lock).
    for &p in &aborted {
        journals[p].push(
            at,
            EventKind::Abort,
            format!("session={session} entity={entity} reason=coordinator-abort"),
        );
    }

    let reported_committed = if mutation == Mutation::BadArithmetic {
        // Satisfied-and with one commit short of everyone.
        committed.len().saturating_sub(1)
    } else {
        committed.len()
    };
    let final_satisfied = if mutation == Mutation::BadArithmetic {
        true
    } else {
        satisfied && !committed.is_empty()
    };
    journals[coord].push(
        at,
        EventKind::SpanEnd,
        format!(
            "negotiate session={session} satisfied={final_satisfied} \
             committed={reported_committed} aborted={} declined={declined}",
            aborted.len()
        ),
    );
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::replay::{audit_journals, AuditOptions};
    use crate::report::Rule;

    #[test]
    fn valid_journals_audit_clean() {
        for seed in 1..=20u64 {
            let journals = generate(seed, 12, 4, Mutation::None);
            let report = audit_journals(&journals, &AuditOptions::strict());
            assert!(report.ok(), "seed {seed}:\n{report}");
            assert!(report.sessions >= 12, "seed {seed}: {}", report.sessions);
        }
    }

    #[test]
    fn drop_release_is_caught_as_lock_leak() {
        for seed in 1..=20u64 {
            let journals = generate(seed, 9, 4, Mutation::DropRelease);
            let report = audit_journals(&journals, &AuditOptions::strict());
            // The drop may hit a session with no commits; those seeds
            // still audit clean, but most must trip the leak detector.
            if report.violations.is_empty() {
                continue;
            }
            assert!(
                report.violations.iter().any(|v| v.rule == Rule::LockLeak),
                "seed {seed}:\n{report}"
            );
        }
        // At least one seed in the sweep must produce the leak.
        let any = (1..=20u64).any(|seed| {
            let journals = generate(seed, 9, 4, Mutation::DropRelease);
            !audit_journals(&journals, &AuditOptions::strict()).ok()
        });
        assert!(any, "no seed produced a lock leak");
    }

    #[test]
    fn double_commit_is_caught_with_session_and_excerpt() {
        let mut caught = 0;
        for seed in 1..=20u64 {
            let journals = generate(seed, 9, 4, Mutation::DoubleCommit);
            let report = audit_journals(&journals, &AuditOptions::strict());
            if let Some(v) = report
                .violations
                .iter()
                .find(|v| v.rule == Rule::DoubleBook)
            {
                assert!(v.session.is_some(), "{v}");
                assert!(!v.excerpt.is_empty(), "{v}");
                caught += 1;
            }
        }
        assert!(
            caught >= 10,
            "double commits caught in only {caught}/20 seeds"
        );
    }

    #[test]
    fn commit_without_lock_is_caught() {
        let mut caught = 0;
        for seed in 1..=20u64 {
            let journals = generate(seed, 9, 4, Mutation::CommitWithoutLock);
            let report = audit_journals(&journals, &AuditOptions::strict());
            if report.violations.iter().any(|v| v.rule == Rule::DoubleBook) {
                caught += 1;
            }
        }
        assert!(caught >= 10, "caught only {caught}/20 seeds");
    }

    #[test]
    fn bad_arithmetic_is_caught() {
        let mut caught = 0;
        for seed in 1..=20u64 {
            let journals = generate(seed, 9, 4, Mutation::BadArithmetic);
            let report = audit_journals(&journals, &AuditOptions::strict());
            if report.violations.iter().any(|v| v.rule == Rule::Constraint) {
                caught += 1;
            }
        }
        assert!(caught >= 10, "caught only {caught}/20 seeds");
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let j1 = generate(3, 5, 3, Mutation::None);
        let j2 = generate(3, 5, 3, Mutation::None);
        assert_eq!(j1, j2);
    }

    /// FNV-1a over every journal field the replay reads.
    fn fnv(hash: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *hash ^= u64::from(b);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[test]
    fn generate_is_seed_stable_across_platforms() {
        // Regression pin: fixed seed → fixed event stream, byte for byte,
        // on every platform. Model-checker counterexample replay and
        // seeded stress runs cite seeds in bug reports; if this hash
        // moves, every recorded seed silently means a different run. Only
        // update the constant for a *deliberate* generator change.
        let journals = generate(42, 10, 4, Mutation::None);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for (name, events) in &journals {
            fnv(&mut hash, name.as_bytes());
            for e in events {
                fnv(&mut hash, &e.seq.to_le_bytes());
                fnv(&mut hash, &e.at_micros.to_le_bytes());
                fnv(&mut hash, e.kind.to_string().as_bytes());
                fnv(&mut hash, e.detail.as_bytes());
            }
        }
        assert_eq!(
            hash, 0xe238_e09a_34b4_0304,
            "synth::generate event stream for seed 42 drifted (hash {hash:#x})"
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod proptests {
    use proptest::prelude::*;

    use super::*;
    use crate::replay::{audit_journals, AuditOptions};
    use crate::report::Rule;

    proptest! {
        #[test]
        fn valid_journals_always_audit_clean(
            seed in 1u64..10_000,
            sessions in 1usize..24,
            devices in 2usize..6,
        ) {
            let journals = generate(seed, sessions, devices, Mutation::None);
            let report = audit_journals(&journals, &AuditOptions::strict());
            prop_assert!(report.ok(), "{report}");
        }

        #[test]
        fn mutations_never_pass_silently_as_wrong_rule(
            seed in 1u64..10_000,
            sessions in 3usize..16,
            devices in 2usize..6,
            which in 1usize..Mutation::ALL.len(),
        ) {
            let mutation = Mutation::ALL[which];
            let journals = generate(seed, sessions, devices, mutation);
            let report = audit_journals(&journals, &AuditOptions::strict());
            // A mutation either leaves the journals accidentally valid
            // (e.g. the target session committed nothing) or is reported
            // under its own invariant class — never as random noise.
            for v in &report.violations {
                let expected = match mutation {
                    Mutation::DropRelease => Rule::LockLeak,
                    Mutation::DoubleCommit | Mutation::CommitWithoutLock => Rule::DoubleBook,
                    Mutation::BadArithmetic => Rule::Constraint,
                    Mutation::None => unreachable!(),
                };
                prop_assert_eq!(v.rule, expected, "unexpected violation: {}", v);
            }
        }

        #[test]
        fn double_commit_violations_carry_context(
            seed in 1u64..2_000,
            devices in 2usize..6,
        ) {
            let journals = generate(seed, 9, devices, Mutation::DoubleCommit);
            let report = audit_journals(&journals, &AuditOptions::strict());
            for v in &report.violations {
                prop_assert!(v.session.is_some());
                prop_assert!(!v.device.is_empty());
            }
        }
    }
}
