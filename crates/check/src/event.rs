//! Typed view of the journal's protocol events.
//!
//! Hot paths record free-form `key=value` detail strings (cheap to
//! format, no allocation-heavy structures). The checker parses them back
//! into [`ProtoEvent`]s here; anything it does not recognize becomes
//! [`ProtoEvent::Other`] and is ignored by the replay, so application
//! code is free to journal its own events.

use syd_telemetry::{EventKind, JournalEvent};

/// Constraint of a negotiation session, parsed from the coordinator's
/// `SpanBegin` record (the `{:?}` rendering of `syd_core::Constraint`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintKind {
    /// All participants must commit (negotiation-and).
    And,
    /// At least `k` participants must commit (negotiation-or).
    AtLeast(u32),
    /// Exactly `k` participants must commit (negotiation-xor).
    Exactly(u32),
}

impl ConstraintKind {
    /// Whether `committed` out of `participants` satisfies the constraint.
    pub fn holds(&self, committed: usize, participants: usize) -> bool {
        match *self {
            ConstraintKind::And => committed == participants,
            ConstraintKind::AtLeast(k) => committed >= k as usize,
            ConstraintKind::Exactly(k) => committed == k as usize,
        }
    }

    /// Parses the `Debug` rendering used in `SpanBegin` details.
    pub fn parse(text: &str) -> Option<ConstraintKind> {
        if text == "And" {
            return Some(ConstraintKind::And);
        }
        let arg = |prefix: &str| {
            text.strip_prefix(prefix)?
                .strip_suffix(')')?
                .parse::<u32>()
                .ok()
        };
        if let Some(k) = arg("AtLeast(") {
            return Some(ConstraintKind::AtLeast(k));
        }
        arg("Exactly(").map(ConstraintKind::Exactly)
    }
}

impl std::fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintKind::And => f.write_str("And"),
            ConstraintKind::AtLeast(k) => write!(f, "AtLeast({k})"),
            ConstraintKind::Exactly(k) => write!(f, "Exactly({k})"),
        }
    }
}

/// One protocol-relevant journal event in typed form.
///
/// Participant-side events (`Lock`, `Vote`, `Commit`, `Release`) appear in
/// the journal of the device whose entity is involved; coordinator-side
/// events (`Begin`, `Tally`, `Committed`, `AbortUser`, `End`) appear in
/// the coordinator's journal.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoEvent {
    /// Participant acquired the entity lock for a session.
    Lock {
        /// Negotiation session id.
        session: u64,
        /// Locked entity.
        entity: String,
    },
    /// Participant answered a mark request.
    Vote {
        /// Negotiation session id.
        session: u64,
        /// Marked entity.
        entity: String,
        /// True for `vote=yes`.
        yes: bool,
        /// Decline reason (`lock-busy` means the lock was never taken;
        /// any other reason means prepare failed after locking).
        reason: Option<String>,
    },
    /// Participant applied (or failed to apply) a committed change.
    Commit {
        /// Negotiation session id.
        session: u64,
        /// Changed entity.
        entity: String,
        /// Whether the entity handler applied the change.
        applied: bool,
    },
    /// Participant aborted a session's change on an entity (coordinator
    /// abort, or the stale-session sweep reclaiming a dead owner's lock).
    Release {
        /// Negotiation session id.
        session: u64,
        /// Released entity.
        entity: String,
        /// Why the change was discarded.
        reason: String,
    },
    /// Coordinator opened a negotiation session.
    Begin {
        /// Negotiation session id.
        session: u64,
        /// Constraint being negotiated.
        constraint: ConstraintKind,
        /// Number of participants.
        participants: usize,
    },
    /// Coordinator tallied the mark phase.
    Tally {
        /// Negotiation session id.
        session: u64,
        /// Yes votes.
        yes: usize,
        /// Declines.
        declined: usize,
        /// Lock-busy answers.
        contended: usize,
    },
    /// Coordinator counted the successful commits.
    Committed {
        /// Negotiation session id.
        session: u64,
        /// Participants whose commit succeeded.
        committed: usize,
    },
    /// Coordinator recorded an abort decision for one participant.
    AbortUser {
        /// Negotiation session id.
        session: u64,
        /// The aborted participant.
        user: u64,
        /// Why (`lock-contention`, `xor-overflow`, `commit-failed`, …).
        reason: String,
    },
    /// Coordinator closed a negotiation session.
    End {
        /// Negotiation session id.
        session: u64,
        /// Final outcome: constraint satisfied and commits applied.
        satisfied: bool,
        /// Committed participant count.
        committed: usize,
        /// Aborted participant count.
        aborted: usize,
        /// Declined participant count.
        declined: usize,
    },
    /// A waiting link was promoted to permanent (§4.2 op. 3).
    Promoted {
        /// The promoted link.
        link: u64,
        /// Its queue priority.
        priority: i64,
        /// Its waiting group.
        group: i64,
    },
    /// A link was deleted, possibly fanning out along its correlation id.
    LinkDeleted {
        /// The deleted link.
        id: u64,
        /// Correlation id of the connection.
        corr: String,
        /// Whether the deletion cascades to peers.
        cascade: bool,
    },
    /// Anything the checker does not model.
    Other,
}

/// `key=value` tokens of a detail string. `reason=` swallows the rest of
/// the line, since error messages contain spaces.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    reason: Option<&'a str>,
}

impl<'a> Fields<'a> {
    fn of(detail: &'a str) -> Fields<'a> {
        let (head, reason) = match detail.find("reason=") {
            Some(i) => (&detail[..i], Some(&detail[i + "reason=".len()..])),
            None => (detail, None),
        };
        Fields {
            pairs: head
                .split_whitespace()
                .filter_map(|tok| tok.split_once('='))
                .collect(),
            reason,
        }
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    fn u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    fn i64(&self, key: &str) -> Option<i64> {
        self.get(key)?.parse().ok()
    }

    fn usize(&self, key: &str) -> Option<usize> {
        self.get(key)?.parse().ok()
    }

    fn bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }
}

/// Parses one journal event into its typed protocol form.
pub fn parse(event: &JournalEvent) -> ProtoEvent {
    let f = Fields::of(&event.detail);
    match event.kind {
        EventKind::Lock => match (f.u64("session"), f.get("entity")) {
            (Some(session), Some(entity)) => ProtoEvent::Lock {
                session,
                entity: entity.to_owned(),
            },
            _ => ProtoEvent::Other,
        },
        EventKind::Mark => {
            if let (Some(session), Some(entity)) = (f.u64("session"), f.get("entity")) {
                match f.get("vote") {
                    Some("yes") => ProtoEvent::Vote {
                        session,
                        entity: entity.to_owned(),
                        yes: true,
                        reason: None,
                    },
                    Some("no") => ProtoEvent::Vote {
                        session,
                        entity: entity.to_owned(),
                        yes: false,
                        reason: f.reason.map(str::to_owned),
                    },
                    _ => ProtoEvent::Other,
                }
            } else if let (Some(session), Some(yes), Some(declined), Some(contended)) = (
                f.u64("session"),
                f.usize("yes"),
                f.usize("declined"),
                f.usize("contended"),
            ) {
                ProtoEvent::Tally {
                    session,
                    yes,
                    declined,
                    contended,
                }
            } else {
                ProtoEvent::Other
            }
        }
        EventKind::Change => {
            if let (Some(session), Some(entity), Some(applied)) =
                (f.u64("session"), f.get("entity"), f.bool("applied"))
            {
                ProtoEvent::Commit {
                    session,
                    entity: entity.to_owned(),
                    applied,
                }
            } else if let (Some(session), Some(committed)) =
                (f.u64("session"), f.usize("committed"))
            {
                ProtoEvent::Committed { session, committed }
            } else {
                ProtoEvent::Other
            }
        }
        EventKind::Abort => {
            if let (Some(session), Some(entity)) = (f.u64("session"), f.get("entity")) {
                ProtoEvent::Release {
                    session,
                    entity: entity.to_owned(),
                    reason: f.reason.unwrap_or("").to_owned(),
                }
            } else if let (Some(session), Some(user)) = (f.u64("session"), f.u64("user")) {
                ProtoEvent::AbortUser {
                    session,
                    user,
                    reason: f.reason.unwrap_or("").to_owned(),
                }
            } else {
                ProtoEvent::Other
            }
        }
        EventKind::SpanBegin if event.detail.starts_with("negotiate ") => {
            match (
                f.u64("session"),
                f.get("constraint").and_then(ConstraintKind::parse),
                f.usize("participants"),
            ) {
                (Some(session), Some(constraint), Some(participants)) => ProtoEvent::Begin {
                    session,
                    constraint,
                    participants,
                },
                _ => ProtoEvent::Other,
            }
        }
        EventKind::SpanEnd if event.detail.starts_with("negotiate ") => {
            match (
                f.u64("session"),
                f.bool("satisfied"),
                f.usize("committed"),
                f.usize("aborted"),
                f.usize("declined"),
            ) {
                (
                    Some(session),
                    Some(satisfied),
                    Some(committed),
                    Some(aborted),
                    Some(declined),
                ) => ProtoEvent::End {
                    session,
                    satisfied,
                    committed,
                    aborted,
                    declined,
                },
                _ => ProtoEvent::Other,
            }
        }
        EventKind::Promotion => match (f.u64("id"), f.i64("priority"), f.i64("group")) {
            (Some(link), Some(priority), Some(group)) => ProtoEvent::Promoted {
                link,
                priority,
                group,
            },
            _ => ProtoEvent::Other,
        },
        EventKind::Info if event.detail.starts_with("link.deleted ") => {
            match (f.u64("id"), f.get("corr"), f.bool("cascade")) {
                (Some(id), Some(corr), Some(cascade)) => ProtoEvent::LinkDeleted {
                    id,
                    corr: corr.to_owned(),
                    cascade,
                },
                _ => ProtoEvent::Other,
            }
        }
        _ => ProtoEvent::Other,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn ev(kind: EventKind, detail: &str) -> JournalEvent {
        JournalEvent {
            seq: 0,
            at_micros: 0,
            trace: 0,
            span: 0,
            kind,
            detail: detail.to_owned(),
        }
    }

    #[test]
    fn parses_participant_events() {
        assert_eq!(
            parse(&ev(EventKind::Lock, "session=7 entity=slot:1:9")),
            ProtoEvent::Lock {
                session: 7,
                entity: "slot:1:9".into()
            }
        );
        assert_eq!(
            parse(&ev(EventKind::Mark, "session=7 entity=e vote=yes")),
            ProtoEvent::Vote {
                session: 7,
                entity: "e".into(),
                yes: true,
                reason: None
            }
        );
        assert_eq!(
            parse(&ev(
                EventKind::Mark,
                "session=7 entity=e vote=no reason=e is busy right now"
            )),
            ProtoEvent::Vote {
                session: 7,
                entity: "e".into(),
                yes: false,
                reason: Some("e is busy right now".into())
            }
        );
        assert_eq!(
            parse(&ev(EventKind::Change, "session=7 entity=e applied=true")),
            ProtoEvent::Commit {
                session: 7,
                entity: "e".into(),
                applied: true
            }
        );
        assert_eq!(
            parse(&ev(
                EventKind::Abort,
                "session=7 entity=e reason=coordinator-abort"
            )),
            ProtoEvent::Release {
                session: 7,
                entity: "e".into(),
                reason: "coordinator-abort".into()
            }
        );
    }

    #[test]
    fn parses_coordinator_events() {
        assert_eq!(
            parse(&ev(
                EventKind::SpanBegin,
                "negotiate session=16777217 constraint=AtLeast(2) participants=3"
            )),
            ProtoEvent::Begin {
                session: 16777217,
                constraint: ConstraintKind::AtLeast(2),
                participants: 3
            }
        );
        assert_eq!(
            parse(&ev(
                EventKind::Mark,
                "session=5 yes=2 declined=1 contended=0"
            )),
            ProtoEvent::Tally {
                session: 5,
                yes: 2,
                declined: 1,
                contended: 0
            }
        );
        assert_eq!(
            parse(&ev(EventKind::Change, "session=5 committed=2")),
            ProtoEvent::Committed {
                session: 5,
                committed: 2
            }
        );
        assert_eq!(
            parse(&ev(
                EventKind::Abort,
                "session=5 user=3 reason=xor-overflow"
            )),
            ProtoEvent::AbortUser {
                session: 5,
                user: 3,
                reason: "xor-overflow".into()
            }
        );
        assert_eq!(
            parse(&ev(
                EventKind::SpanEnd,
                "negotiate session=5 satisfied=true committed=2 aborted=0 declined=1"
            )),
            ProtoEvent::End {
                session: 5,
                satisfied: true,
                committed: 2,
                aborted: 0,
                declined: 1
            }
        );
    }

    #[test]
    fn parses_link_events() {
        assert_eq!(
            parse(&ev(
                EventKind::Promotion,
                "link.promoted group=7 id=3 priority=200"
            )),
            ProtoEvent::Promoted {
                link: 3,
                priority: 200,
                group: 7
            }
        );
        assert_eq!(
            parse(&ev(
                EventKind::Info,
                "link.deleted cascade=true corr=corr:1:2 id=4"
            )),
            ProtoEvent::LinkDeleted {
                id: 4,
                corr: "corr:1:2".into(),
                cascade: true
            }
        );
    }

    #[test]
    fn unmodeled_events_are_other() {
        assert_eq!(parse(&ev(EventKind::Info, "link.created corr=c id=1")), {
            ProtoEvent::Other
        });
        assert_eq!(
            parse(&ev(EventKind::SpanBegin, "rpc call")),
            ProtoEvent::Other
        );
        assert_eq!(parse(&ev(EventKind::Mark, "garbage")), ProtoEvent::Other);
    }

    #[test]
    fn constraint_arithmetic() {
        assert!(ConstraintKind::And.holds(3, 3));
        assert!(!ConstraintKind::And.holds(2, 3));
        assert!(ConstraintKind::AtLeast(2).holds(2, 3));
        assert!(ConstraintKind::AtLeast(2).holds(3, 3));
        assert!(!ConstraintKind::AtLeast(2).holds(1, 3));
        assert!(ConstraintKind::Exactly(1).holds(1, 3));
        assert!(!ConstraintKind::Exactly(1).holds(2, 3));
        assert_eq!(ConstraintKind::parse("And"), Some(ConstraintKind::And));
        assert_eq!(
            ConstraintKind::parse("AtLeast(4)"),
            Some(ConstraintKind::AtLeast(4))
        );
        assert_eq!(
            ConstraintKind::parse("Exactly(1)"),
            Some(ConstraintKind::Exactly(1))
        );
        assert_eq!(ConstraintKind::parse("Nope(1)"), None);
        assert_eq!(ConstraintKind::AtLeast(2).to_string(), "AtLeast(2)");
    }
}
