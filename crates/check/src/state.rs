//! Snapshot-based audit: the live-state checks of [`crate::audit_with`]
//! over plain data instead of [`syd_core::DeviceRuntime`] handles.
//!
//! A [`DeviceState`] is everything the auditor needs to know about one
//! device — its journal plus the lock table, link database, and
//! waiting-link queue reduced to plain records. The live audit snapshots
//! each runtime into this form and delegates here; the `syd-model`
//! exhaustive model checker builds the same snapshots from abstract
//! model states, so both paths are judged by literally the same oracle.

use std::collections::BTreeSet;

use syd_telemetry::JournalEvent;

use crate::replay::{self, AuditOptions};
use crate::report::{session_excerpt, AuditReport, Rule, Violation};

/// One held entity lock: `session` owns the lock on `entity`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeldLock {
    /// The owning negotiation session.
    pub session: u64,
    /// The locked entity (e.g. `"slot:4:14"`).
    pub entity: String,
}

/// One row of the link database, reduced to what the audit checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkRecord {
    /// Local link id.
    pub id: u64,
    /// True while the link is tentative (queued behind another).
    pub tentative: bool,
    /// Correlation id shared by the link's cross-device halves.
    pub corr: String,
}

/// One row of the waiting-link queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitingRecord {
    /// The tentative link that is waiting.
    pub link: u64,
    /// The link it waits on.
    pub waits_on: u64,
}

/// Everything the auditor sees of one device.
#[derive(Clone, Debug, Default)]
pub struct DeviceState {
    /// Device name (journals and violations are attributed to it).
    pub device: String,
    /// The device's postmortem journal, oldest first.
    pub journal: Vec<JournalEvent>,
    /// Entity locks currently held.
    pub locks: Vec<HeldLock>,
    /// The link database.
    pub links: Vec<LinkRecord>,
    /// The waiting-link queue.
    pub waiting: Vec<WaitingRecord>,
}

/// Audits device snapshots: replays every journal through
/// [`crate::replay`], then correlates the stories with each snapshot's
/// lock table, waiting-link queue, and link database exactly as
/// [`crate::audit_with`] does for live devices.
pub fn audit_states(devices: &[DeviceState], opts: &AuditOptions) -> AuditReport {
    let mut report = AuditReport::default();
    let mut all_sessions = BTreeSet::new();
    let mut cascaded: BTreeSet<String> = BTreeSet::new();

    for device in devices {
        let summary = replay::replay_device(&device.device, &device.journal, opts, &mut report);

        // Lock-leak detector: a lock still held although its journal
        // story closed can never be released — commit and abort both
        // release before returning, so a held lock with a closed story
        // means the release was lost inside the device. In strict mode
        // any held lock is a failure (the run quiesced first).
        for lock in &device.locks {
            let story = (lock.session, lock.entity.clone());
            let closed_story = !summary.truncated
                && summary.closed.contains(&story)
                && !summary.open.contains(&story);
            if opts.strict || closed_story {
                report.violations.push(Violation {
                    device: device.device.clone(),
                    session: Some(lock.session),
                    rule: Rule::LockLeak,
                    message: if closed_story {
                        format!(
                            "lock on `{}` still held although its session story closed",
                            lock.entity
                        )
                    } else {
                        format!("lock on `{}` still held after quiesce", lock.entity)
                    },
                    excerpt: session_excerpt(&device.journal, lock.session, 12),
                });
            }
        }

        // Waiting-queue audit (§4.2 op. 3): every waiter exists exactly
        // once, is still tentative, and waits on a link that exists.
        let ids: BTreeSet<u64> = device.links.iter().map(|l| l.id).collect();
        let mut seen = BTreeSet::new();
        for entry in &device.waiting {
            if !seen.insert(entry.link) {
                report.violations.push(waiting_violation(
                    device,
                    format!("link link-{} queued twice in the waiting table", entry.link),
                ));
            }
            if !ids.contains(&entry.link) {
                report.violations.push(waiting_violation(
                    device,
                    format!("waiting entry references deleted link link-{}", entry.link),
                ));
            } else if let Some(link) = device.links.iter().find(|l| l.id == entry.link) {
                if !link.tentative {
                    report.violations.push(waiting_violation(
                        device,
                        format!(
                            "link link-{} is permanent but still queued as a waiter",
                            entry.link
                        ),
                    ));
                }
            }
            if !ids.contains(&entry.waits_on) {
                report.violations.push(waiting_violation(
                    device,
                    format!(
                        "link link-{} waits on deleted link link-{} — promotion lost it",
                        entry.link, entry.waits_on
                    ),
                ));
            }
        }

        cascaded.extend(summary.cascaded.iter().cloned());
        all_sessions.extend(summary.sessions);
    }

    // Cascade-delete completeness (strict): once any device cascade-
    // deleted a correlation group, no device may still hold a link of
    // that group. On lossy networks an unreachable peer legitimately
    // keeps its half until expiry, so this is strict-only.
    if opts.strict {
        for corr in &cascaded {
            for device in devices {
                let left: Vec<String> = device
                    .links
                    .iter()
                    .filter(|l| &l.corr == corr)
                    .map(|l| format!("link-{}", l.id))
                    .collect();
                if !left.is_empty() {
                    report.violations.push(Violation {
                        device: device.device.clone(),
                        session: None,
                        rule: Rule::Cascade,
                        message: format!(
                            "cascade delete of corr `{corr}` left {} link(s) behind: {}",
                            left.len(),
                            left.join(", ")
                        ),
                        excerpt: Vec::new(),
                    });
                }
            }
        }
    }

    report.sessions = all_sessions.len();
    report.normalize();
    report
}

fn waiting_violation(device: &DeviceState, message: String) -> Violation {
    Violation {
        device: device.device.clone(),
        session: None,
        rule: Rule::Waiting,
        message,
        excerpt: Vec::new(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_telemetry::EventKind;

    fn ev(seq: u64, kind: EventKind, detail: &str) -> JournalEvent {
        JournalEvent {
            seq,
            at_micros: seq * 10,
            trace: 0,
            span: 0,
            kind,
            detail: detail.to_owned(),
        }
    }

    #[test]
    fn clean_snapshot_audits_clean() {
        let state = DeviceState {
            device: "dev1".into(),
            journal: vec![
                ev(0, EventKind::Lock, "session=9 entity=e"),
                ev(1, EventKind::Mark, "session=9 entity=e vote=yes"),
                ev(2, EventKind::Change, "session=9 entity=e applied=true"),
            ],
            ..DeviceState::default()
        };
        let report = audit_states(&[state], &AuditOptions::strict());
        assert!(report.ok(), "{report}");
        assert_eq!(report.sessions, 1);
    }

    #[test]
    fn held_lock_with_closed_story_is_a_leak() {
        let state = DeviceState {
            device: "dev1".into(),
            journal: vec![
                ev(0, EventKind::Lock, "session=9 entity=e"),
                ev(1, EventKind::Change, "session=9 entity=e applied=true"),
            ],
            locks: vec![HeldLock {
                session: 9,
                entity: "e".into(),
            }],
            ..DeviceState::default()
        };
        let report = audit_states(&[state], &AuditOptions::default());
        assert_eq!(report.violations.len(), 1, "{report}");
        assert_eq!(report.violations[0].rule, Rule::LockLeak);
    }

    #[test]
    fn waiter_on_deleted_link_is_flagged() {
        let state = DeviceState {
            device: "dev1".into(),
            links: vec![LinkRecord {
                id: 2,
                tentative: true,
                corr: "c".into(),
            }],
            waiting: vec![WaitingRecord {
                link: 2,
                waits_on: 1,
            }],
            ..DeviceState::default()
        };
        let report = audit_states(&[state], &AuditOptions::default());
        assert_eq!(report.violations.len(), 1, "{report}");
        assert_eq!(report.violations[0].rule, Rule::Waiting);
    }

    #[test]
    fn strict_cascade_flags_leftover_halves() {
        let deleter = DeviceState {
            device: "dev1".into(),
            journal: vec![ev(
                0,
                EventKind::Info,
                "link.deleted cascade=true corr=c id=1",
            )],
            ..DeviceState::default()
        };
        let laggard = DeviceState {
            device: "dev2".into(),
            links: vec![LinkRecord {
                id: 7,
                tentative: false,
                corr: "c".into(),
            }],
            ..DeviceState::default()
        };
        let strict = audit_states(&[deleter.clone(), laggard.clone()], &AuditOptions::strict());
        assert_eq!(strict.violations.len(), 1, "{strict}");
        assert_eq!(strict.violations[0].rule, Rule::Cascade);
        // Lossy-tolerant mode lets the unreachable peer keep its half.
        let lossy = audit_states(&[deleter, laggard], &AuditOptions::default());
        assert!(lossy.ok(), "{lossy}");
    }
}
