//! Violation reports with minimized journal excerpts.

use std::fmt;

use syd_telemetry::JournalEvent;

/// The invariant class a violation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// §4.3 per-session ordering: mark → lock → (change | abort) → unlock.
    Ordering,
    /// A lock outlived its session, or a session story never closed.
    LockLeak,
    /// An entity was committed by a session that did not hold its lock,
    /// or committed twice.
    DoubleBook,
    /// A satisfied session's committed set does not meet its constraint.
    Constraint,
    /// The waiting-link queue lost, duplicated, or mis-ordered a waiter.
    Waiting,
    /// A cascade delete left link halves behind.
    Cascade,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::Ordering => "ordering",
            Rule::LockLeak => "lock-leak",
            Rule::DoubleBook => "double-book",
            Rule::Constraint => "constraint",
            Rule::Waiting => "waiting-link",
            Rule::Cascade => "cascade-delete",
        })
    }
}

/// One invariant violation, with enough journal context to debug it.
///
/// The derived ordering (device, then session, then rule, then message)
/// is the canonical report order — see [`AuditReport::normalize`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Device (journal) the violation was observed on.
    pub device: String,
    /// Offending negotiation session, when one is implicated.
    pub session: Option<u64>,
    /// Invariant class.
    pub rule: Rule,
    /// What went wrong.
    pub message: String,
    /// Minimized journal excerpt: the retained events of the offending
    /// session (or the triggering event), rendered one per line.
    pub excerpt: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] device={}", self.rule, self.device)?;
        if let Some(session) = self.session {
            write!(f, " session={session}")?;
        }
        write!(f, ": {}", self.message)?;
        for line in &self.excerpt {
            write!(f, "\n    | {line}")?;
        }
        Ok(())
    }
}

/// Outcome of an audit pass.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Every violation found. The audit entry points normalize this to
    /// canonical order (see [`AuditReport::normalize`]); reports built
    /// by hand may hold violations in discovery order until normalized.
    pub violations: Vec<Violation>,
    /// Distinct negotiation sessions examined.
    pub sessions: usize,
    /// Journal events examined.
    pub events: usize,
    /// True when at least one journal had evicted (ring-truncated) events;
    /// ordering checks were suppressed for those journals.
    pub truncated: bool,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the full report when any violation was found. The
    /// integration tests call this after their scenario completes.
    #[track_caller]
    pub fn assert_clean(&self) {
        assert!(self.ok(), "protocol invariants violated:\n{self}");
    }

    /// Folds another report into this one. The merged violation list is
    /// re-normalized, so merging the same reports in any order yields a
    /// byte-identical result.
    pub fn merge(&mut self, other: AuditReport) {
        self.violations.extend(other.violations);
        self.sessions += other.sessions;
        self.events += other.events;
        self.truncated |= other.truncated;
        self.normalize();
    }

    /// Stable-sorts violations into canonical (device, session, rule,
    /// message) order and drops exact duplicates. CI diffs, counterexample
    /// comparison in `syd-model`, and cross-platform runs all rely on
    /// reports being byte-stable regardless of audit discovery order.
    pub fn normalize(&mut self) {
        self.violations.sort();
        self.violations.dedup();
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} violation(s) over {} session(s), {} event(s){}",
            self.violations.len(),
            self.sessions,
            self.events,
            if self.truncated {
                " [journal truncated]"
            } else {
                ""
            }
        )?;
        // Render in canonical order with duplicates elided even when the
        // report was never normalized (e.g. hand-built in tests).
        let mut ordered: Vec<&Violation> = self.violations.iter().collect();
        ordered.sort();
        ordered.dedup();
        for v in ordered {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Renders the journal lines that tell a session's story, newest last.
/// `limit` caps the excerpt; when more lines match, the excerpt keeps the
/// first and last few so both the setup and the failure stay visible.
pub(crate) fn session_excerpt(events: &[JournalEvent], session: u64, limit: usize) -> Vec<String> {
    let token = format!("session={session}");
    let lines: Vec<String> = events
        .iter()
        .filter(|e| e.detail.split_whitespace().any(|t| t == token))
        .map(render)
        .collect();
    if lines.len() <= limit || limit < 4 {
        return lines;
    }
    let head = limit / 2;
    let tail = limit - head - 1;
    let mut out: Vec<String> = lines[..head].to_vec();
    out.push(format!("… {} more …", lines.len() - head - tail));
    out.extend_from_slice(&lines[lines.len() - tail..]);
    out
}

/// Renders one journal event the way `Journal::dump` does, minus trace ids.
pub(crate) fn render(event: &JournalEvent) -> String {
    format!(
        "#{} +{}us {} {}",
        event.seq, event.at_micros, event.kind, event.detail
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_telemetry::EventKind;

    fn ev(seq: u64, detail: &str) -> JournalEvent {
        JournalEvent {
            seq,
            at_micros: seq * 10,
            trace: 0,
            span: 0,
            kind: EventKind::Info,
            detail: detail.to_owned(),
        }
    }

    #[test]
    fn excerpt_selects_exact_session_tokens() {
        let events = vec![
            ev(0, "session=5 entity=a"),
            ev(1, "session=50 entity=b"),
            ev(2, "negotiate session=5 satisfied=true"),
        ];
        let lines = session_excerpt(&events, 5, 8);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("entity=a"), "{lines:?}");
        assert!(lines[1].contains("satisfied=true"), "{lines:?}");
    }

    #[test]
    fn excerpt_elides_the_middle() {
        let events: Vec<JournalEvent> = (0..20)
            .map(|i| ev(i, &format!("session=1 step={i}")))
            .collect();
        let lines = session_excerpt(&events, 1, 8);
        assert_eq!(lines.len(), 8);
        assert!(lines[4].contains("more"), "{lines:?}");
        assert!(lines[7].contains("step=19"), "{lines:?}");
    }

    #[test]
    fn report_renders_violations() {
        let mut report = AuditReport::default();
        assert!(report.ok());
        report.assert_clean();
        report.violations.push(Violation {
            device: "dev1".into(),
            session: Some(9),
            rule: Rule::LockLeak,
            message: "lock still held".into(),
            excerpt: vec!["#1 +10us lock session=9 entity=e".into()],
        });
        assert!(!report.ok());
        let text = report.to_string();
        assert!(text.contains("[lock-leak] device=dev1 session=9"), "{text}");
        assert!(text.contains("| #1"), "{text}");
    }

    #[test]
    fn merge_is_order_independent_and_dedupes() {
        let violation = |device: &str, session| Violation {
            device: device.into(),
            session,
            rule: Rule::Ordering,
            message: "m".into(),
            excerpt: vec![],
        };
        let part_a = AuditReport {
            violations: vec![violation("dev2", Some(2)), violation("dev1", None)],
            ..AuditReport::default()
        };
        let part_b = AuditReport {
            violations: vec![violation("dev1", None), violation("dev1", Some(1))],
            ..AuditReport::default()
        };
        let mut ab = AuditReport::default();
        ab.merge(part_a.clone());
        ab.merge(part_b.clone());
        let mut ba = AuditReport::default();
        ba.merge(part_b);
        ba.merge(part_a);
        assert_eq!(ab.violations, ba.violations);
        assert_eq!(ab.to_string(), ba.to_string());
        // The duplicate dev1/no-session violation collapses to one.
        assert_eq!(ab.violations.len(), 3, "{ab}");
    }

    #[test]
    fn render_sorts_and_dedupes_unnormalized_reports() {
        let violation = |device: &str| Violation {
            device: device.into(),
            session: None,
            rule: Rule::Waiting,
            message: "lost".into(),
            excerpt: vec![],
        };
        let report = AuditReport {
            violations: vec![violation("z"), violation("a"), violation("z")],
            ..AuditReport::default()
        };
        let text = report.to_string();
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("device=a"), "{text}");
        assert!(lines[1].contains("device=z"), "{text}");
    }

    #[test]
    #[should_panic(expected = "protocol invariants violated")]
    fn assert_clean_panics_on_violation() {
        let report = AuditReport {
            violations: vec![Violation {
                device: "d".into(),
                session: None,
                rule: Rule::Cascade,
                message: "left behind".into(),
                excerpt: vec![],
            }],
            ..AuditReport::default()
        };
        report.assert_clean();
    }
}
