//! Violation reports with minimized journal excerpts.

use std::fmt;

use syd_telemetry::JournalEvent;

/// The invariant class a violation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// §4.3 per-session ordering: mark → lock → (change | abort) → unlock.
    Ordering,
    /// A lock outlived its session, or a session story never closed.
    LockLeak,
    /// An entity was committed by a session that did not hold its lock,
    /// or committed twice.
    DoubleBook,
    /// A satisfied session's committed set does not meet its constraint.
    Constraint,
    /// The waiting-link queue lost, duplicated, or mis-ordered a waiter.
    Waiting,
    /// A cascade delete left link halves behind.
    Cascade,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::Ordering => "ordering",
            Rule::LockLeak => "lock-leak",
            Rule::DoubleBook => "double-book",
            Rule::Constraint => "constraint",
            Rule::Waiting => "waiting-link",
            Rule::Cascade => "cascade-delete",
        })
    }
}

/// One invariant violation, with enough journal context to debug it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Device (journal) the violation was observed on.
    pub device: String,
    /// Offending negotiation session, when one is implicated.
    pub session: Option<u64>,
    /// Invariant class.
    pub rule: Rule,
    /// What went wrong.
    pub message: String,
    /// Minimized journal excerpt: the retained events of the offending
    /// session (or the triggering event), rendered one per line.
    pub excerpt: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] device={}", self.rule, self.device)?;
        if let Some(session) = self.session {
            write!(f, " session={session}")?;
        }
        write!(f, ": {}", self.message)?;
        for line in &self.excerpt {
            write!(f, "\n    | {line}")?;
        }
        Ok(())
    }
}

/// Outcome of an audit pass.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
    /// Distinct negotiation sessions examined.
    pub sessions: usize,
    /// Journal events examined.
    pub events: usize,
    /// True when at least one journal had evicted (ring-truncated) events;
    /// ordering checks were suppressed for those journals.
    pub truncated: bool,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the full report when any violation was found. The
    /// integration tests call this after their scenario completes.
    #[track_caller]
    pub fn assert_clean(&self) {
        assert!(self.ok(), "protocol invariants violated:\n{self}");
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.violations.extend(other.violations);
        self.sessions += other.sessions;
        self.events += other.events;
        self.truncated |= other.truncated;
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} violation(s) over {} session(s), {} event(s){}",
            self.violations.len(),
            self.sessions,
            self.events,
            if self.truncated {
                " [journal truncated]"
            } else {
                ""
            }
        )?;
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Renders the journal lines that tell a session's story, newest last.
/// `limit` caps the excerpt; when more lines match, the excerpt keeps the
/// first and last few so both the setup and the failure stay visible.
pub(crate) fn session_excerpt(events: &[JournalEvent], session: u64, limit: usize) -> Vec<String> {
    let token = format!("session={session}");
    let lines: Vec<String> = events
        .iter()
        .filter(|e| e.detail.split_whitespace().any(|t| t == token))
        .map(render)
        .collect();
    if lines.len() <= limit || limit < 4 {
        return lines;
    }
    let head = limit / 2;
    let tail = limit - head - 1;
    let mut out: Vec<String> = lines[..head].to_vec();
    out.push(format!("… {} more …", lines.len() - head - tail));
    out.extend_from_slice(&lines[lines.len() - tail..]);
    out
}

/// Renders one journal event the way `Journal::dump` does, minus trace ids.
pub(crate) fn render(event: &JournalEvent) -> String {
    format!(
        "#{} +{}us {} {}",
        event.seq, event.at_micros, event.kind, event.detail
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use syd_telemetry::EventKind;

    fn ev(seq: u64, detail: &str) -> JournalEvent {
        JournalEvent {
            seq,
            at_micros: seq * 10,
            trace: 0,
            span: 0,
            kind: EventKind::Info,
            detail: detail.to_owned(),
        }
    }

    #[test]
    fn excerpt_selects_exact_session_tokens() {
        let events = vec![
            ev(0, "session=5 entity=a"),
            ev(1, "session=50 entity=b"),
            ev(2, "negotiate session=5 satisfied=true"),
        ];
        let lines = session_excerpt(&events, 5, 8);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("entity=a"), "{lines:?}");
        assert!(lines[1].contains("satisfied=true"), "{lines:?}");
    }

    #[test]
    fn excerpt_elides_the_middle() {
        let events: Vec<JournalEvent> = (0..20)
            .map(|i| ev(i, &format!("session=1 step={i}")))
            .collect();
        let lines = session_excerpt(&events, 1, 8);
        assert_eq!(lines.len(), 8);
        assert!(lines[4].contains("more"), "{lines:?}");
        assert!(lines[7].contains("step=19"), "{lines:?}");
    }

    #[test]
    fn report_renders_violations() {
        let mut report = AuditReport::default();
        assert!(report.ok());
        report.assert_clean();
        report.violations.push(Violation {
            device: "dev1".into(),
            session: Some(9),
            rule: Rule::LockLeak,
            message: "lock still held".into(),
            excerpt: vec!["#1 +10us lock session=9 entity=e".into()],
        });
        assert!(!report.ok());
        let text = report.to_string();
        assert!(text.contains("[lock-leak] device=dev1 session=9"), "{text}");
        assert!(text.contains("| #1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "protocol invariants violated")]
    fn assert_clean_panics_on_violation() {
        let report = AuditReport {
            violations: vec![Violation {
                device: "d".into(),
                session: None,
                rule: Rule::Cascade,
                message: "left behind".into(),
                excerpt: vec![],
            }],
            ..AuditReport::default()
        };
        report.assert_clean();
    }
}
