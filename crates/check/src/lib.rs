//! `syd-check` — protocol invariant checker for the SyD middleware.
//!
//! The paper's negotiation protocol (§4.3) and waiting-link promotion
//! table (§4.2 op. 3) are multi-device state machines: a subtle
//! interleaving bug — a leaked entity lock, a double-booked slot, a lost
//! waiter — corrupts calendars silently instead of crashing. This crate
//! turns the `syd-telemetry` journal plus live [`DeviceRuntime`] state
//! into a machine-checkable correctness criterion:
//!
//! * **ordering** — per session: mark → lock → (change | abort) → unlock;
//! * **lock leaks** — no entity lock survives its session's story;
//! * **double-book** — no entity committed by a session that does not
//!   hold its lock, and no two sessions hold one entity at once;
//! * **constraint arithmetic** — `and` commits all, `or` at least *k*,
//!   `xor` exactly *k* of the committed set;
//! * **waiting links** — no lost, duplicate, or orphaned waiter, and
//!   promotion respects priority;
//! * **cascade deletes** (strict) — no link halves left behind.
//!
//! Run [`audit`] (or [`audit_strict`] after quiescing on a reliable
//! network) over the deployment's devices; the returned
//! [`AuditReport`] renders each violation with the offending session id
//! and a minimized journal excerpt. [`audit_journals`] checks captured
//! journals offline — that is also what the synthetic-journal oracle in
//! [`synth`] exercises. The `syd-bench` crate's `check` binary drives
//! hundreds of seeded negotiations through lossy and partitioned
//! networks and audits the aftermath.

pub mod event;
pub mod replay;
pub mod report;
pub mod state;
pub mod synth;

use syd_core::{DeviceRuntime, LinkStatus};
use syd_types::Value;

pub use event::{ConstraintKind, ProtoEvent};
pub use replay::{audit_journals, AuditOptions};
pub use report::{AuditReport, Rule, Violation};
pub use state::{audit_states, DeviceState, HeldLock, LinkRecord, WaitingRecord};
pub use synth::Mutation;

/// Audits live devices with loss-tolerant checks: in-flight sessions and
/// locks awaiting the stale-session sweep are not violations. Suitable
/// after any run, including lossy or partitioned networks.
pub fn audit<'a, I>(devices: I) -> AuditReport
where
    I: IntoIterator<Item = &'a DeviceRuntime>,
{
    audit_with(devices, &AuditOptions::default())
}

/// Audits live devices with the strict checks added: every lock story
/// closed, no abort after commit, no cascade leftovers. Use after the
/// system quiesced on a reliable network (or after forcing
/// `sweep_stale_sessions` on every device).
pub fn audit_strict<'a, I>(devices: I) -> AuditReport
where
    I: IntoIterator<Item = &'a DeviceRuntime>,
{
    audit_with(devices, &AuditOptions::strict())
}

/// Audits live devices under explicit [`AuditOptions`]: snapshots each
/// runtime's journal, lock table, waiting-link queue, and link database
/// into a [`DeviceState`] and delegates to the pure
/// [`state::audit_states`] oracle (which the `syd-model` checker also
/// uses, so live runs and exhaustive model runs are judged identically).
pub fn audit_with<'a, I>(devices: I, opts: &AuditOptions) -> AuditReport
where
    I: IntoIterator<Item = &'a DeviceRuntime>,
{
    let states: Vec<DeviceState> = devices.into_iter().map(snapshot_device).collect();
    audit_states(&states, opts)
}

/// Reduces one live runtime to the plain snapshot the oracle audits.
fn snapshot_device(device: &DeviceRuntime) -> DeviceState {
    let locks = device
        .store()
        .locks()
        .held()
        .into_iter()
        .filter(|(_, key)| key.table == "syd.entity")
        .map(|(owner, key)| HeldLock {
            session: owner,
            entity: match key.key.first().map(syd_store::key::OrdValue::value) {
                Some(Value::Str(s)) => s.clone(),
                _ => key.to_string(),
            },
        })
        .collect();
    let links = device
        .links()
        .all()
        .unwrap_or_default()
        .into_iter()
        .map(|l| LinkRecord {
            id: l.id.raw(),
            tentative: l.status == LinkStatus::Tentative,
            corr: l.corr,
        })
        .collect();
    let waiting = device
        .links()
        .waiting()
        .unwrap_or_default()
        .into_iter()
        .map(|entry| WaitingRecord {
            link: entry.link.raw(),
            waits_on: entry.waits_on.raw(),
        })
        .collect();
    DeviceState {
        device: device.name().to_owned(),
        journal: device.journal().events(),
        locks,
        links,
        waiting,
    }
}
