//! `syd-check` — protocol invariant checker for the SyD middleware.
//!
//! The paper's negotiation protocol (§4.3) and waiting-link promotion
//! table (§4.2 op. 3) are multi-device state machines: a subtle
//! interleaving bug — a leaked entity lock, a double-booked slot, a lost
//! waiter — corrupts calendars silently instead of crashing. This crate
//! turns the `syd-telemetry` journal plus live [`DeviceRuntime`] state
//! into a machine-checkable correctness criterion:
//!
//! * **ordering** — per session: mark → lock → (change | abort) → unlock;
//! * **lock leaks** — no entity lock survives its session's story;
//! * **double-book** — no entity committed by a session that does not
//!   hold its lock, and no two sessions hold one entity at once;
//! * **constraint arithmetic** — `and` commits all, `or` at least *k*,
//!   `xor` exactly *k* of the committed set;
//! * **waiting links** — no lost, duplicate, or orphaned waiter, and
//!   promotion respects priority;
//! * **cascade deletes** (strict) — no link halves left behind.
//!
//! Run [`audit`] (or [`audit_strict`] after quiescing on a reliable
//! network) over the deployment's devices; the returned
//! [`AuditReport`] renders each violation with the offending session id
//! and a minimized journal excerpt. [`audit_journals`] checks captured
//! journals offline — that is also what the synthetic-journal oracle in
//! [`synth`] exercises. The `syd-bench` crate's `check` binary drives
//! hundreds of seeded negotiations through lossy and partitioned
//! networks and audits the aftermath.

pub mod event;
pub mod replay;
pub mod report;
pub mod synth;

use std::collections::BTreeSet;

use syd_core::{DeviceRuntime, LinkStatus};
use syd_types::Value;

pub use event::{ConstraintKind, ProtoEvent};
pub use replay::{audit_journals, AuditOptions};
pub use report::{AuditReport, Rule, Violation};
pub use synth::Mutation;

/// Audits live devices with loss-tolerant checks: in-flight sessions and
/// locks awaiting the stale-session sweep are not violations. Suitable
/// after any run, including lossy or partitioned networks.
pub fn audit<'a, I>(devices: I) -> AuditReport
where
    I: IntoIterator<Item = &'a DeviceRuntime>,
{
    audit_with(devices, &AuditOptions::default())
}

/// Audits live devices with the strict checks added: every lock story
/// closed, no abort after commit, no cascade leftovers. Use after the
/// system quiesced on a reliable network (or after forcing
/// `sweep_stale_sessions` on every device).
pub fn audit_strict<'a, I>(devices: I) -> AuditReport
where
    I: IntoIterator<Item = &'a DeviceRuntime>,
{
    audit_with(devices, &AuditOptions::strict())
}

/// Audits live devices under explicit [`AuditOptions`]: replays every
/// journal, then correlates the stories with each device's lock table,
/// waiting-link queue, and link database.
pub fn audit_with<'a, I>(devices: I, opts: &AuditOptions) -> AuditReport
where
    I: IntoIterator<Item = &'a DeviceRuntime>,
{
    let devices: Vec<&DeviceRuntime> = devices.into_iter().collect();
    let mut report = AuditReport::default();
    let mut all_sessions = BTreeSet::new();
    let mut cascaded: BTreeSet<String> = BTreeSet::new();

    for device in &devices {
        let events = device.journal().events();
        let summary = replay::replay_device(device.name(), &events, opts, &mut report);

        // Lock-leak detector: a lock still held although its journal
        // story closed can never be released — commit and abort both
        // release before returning, so a held lock with a closed story
        // means the release was lost inside the device. In strict mode
        // any held lock is a failure (the run quiesced first).
        for (owner, key) in device.store().locks().held() {
            if key.table != "syd.entity" {
                continue;
            }
            let entity = match key.key.first().map(syd_store::key::OrdValue::value) {
                Some(Value::Str(s)) => s.clone(),
                _ => key.to_string(),
            };
            let story = (owner, entity.clone());
            let closed_story = !summary.truncated
                && summary.closed.contains(&story)
                && !summary.open.contains(&story);
            if opts.strict || closed_story {
                report.violations.push(Violation {
                    device: device.name().to_owned(),
                    session: Some(owner),
                    rule: Rule::LockLeak,
                    message: if closed_story {
                        format!(
                            "lock on `{entity}` still held although its session story closed"
                        )
                    } else {
                        format!("lock on `{entity}` still held after quiesce")
                    },
                    excerpt: report::session_excerpt(&events, owner, 12),
                });
            }
        }

        // Waiting-queue audit (§4.2 op. 3): every waiter exists exactly
        // once, is still tentative, and waits on a link that exists.
        if let (Ok(waiting), Ok(links)) = (device.links().waiting(), device.links().all()) {
            let ids: BTreeSet<u64> = links.iter().map(|l| l.id.raw()).collect();
            let mut seen = BTreeSet::new();
            for entry in &waiting {
                if !seen.insert(entry.link.raw()) {
                    report.violations.push(waiting_violation(
                        device,
                        format!("link {} queued twice in the waiting table", entry.link),
                    ));
                }
                if !ids.contains(&entry.link.raw()) {
                    report.violations.push(waiting_violation(
                        device,
                        format!("waiting entry references deleted link {}", entry.link),
                    ));
                } else if let Some(link) = links.iter().find(|l| l.id == entry.link) {
                    if link.status != LinkStatus::Tentative {
                        report.violations.push(waiting_violation(
                            device,
                            format!(
                                "link {} is permanent but still queued as a waiter",
                                entry.link
                            ),
                        ));
                    }
                }
                if !ids.contains(&entry.waits_on.raw()) {
                    report.violations.push(waiting_violation(
                        device,
                        format!(
                            "link {} waits on deleted link {} — promotion lost it",
                            entry.link, entry.waits_on
                        ),
                    ));
                }
            }
        }

        cascaded.extend(summary.cascaded.iter().cloned());
        all_sessions.extend(summary.sessions);
    }

    // Cascade-delete completeness (strict): once any device cascade-
    // deleted a correlation group, no device may still hold a link of
    // that group. On lossy networks an unreachable peer legitimately
    // keeps its half until expiry, so this is strict-only.
    if opts.strict {
        for corr in &cascaded {
            for device in &devices {
                if let Ok(links) = device.links().by_corr(corr) {
                    if !links.is_empty() {
                        report.violations.push(Violation {
                            device: device.name().to_owned(),
                            session: None,
                            rule: Rule::Cascade,
                            message: format!(
                                "cascade delete of corr `{corr}` left {} link(s) behind: {}",
                                links.len(),
                                links
                                    .iter()
                                    .map(|l| l.id.to_string())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                            excerpt: Vec::new(),
                        });
                    }
                }
            }
        }
    }

    report.sessions = all_sessions.len();
    report
}

fn waiting_violation(device: &DeviceRuntime, message: String) -> Violation {
    Violation {
        device: device.name().to_owned(),
        session: None,
        rule: Rule::Waiting,
        message,
        excerpt: Vec::new(),
    }
}
