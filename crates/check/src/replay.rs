//! Replays device journals against the §4.3 / §4.2 state machines.
//!
//! Each device journal is an ordered story of what its kernel services
//! did: entity locks taken, votes cast, changes applied, aborts
//! processed — plus, on coordinators, the negotiation spans themselves.
//! The replay walks that story and checks:
//!
//! * **ordering** — per `(session, entity)`: lock before vote, change
//!   only while holding the lock, nothing after the story closes;
//! * **mutual exclusion / double-book** — at most one session holds an
//!   entity at a time, and a change is applied only by the holder;
//! * **constraint arithmetic** — a session that ends `satisfied=true`
//!   committed a set meeting its constraint (and = all, or ≥ k,
//!   xor = exactly k);
//! * **lock leaks** (strict) — every lock story is closed by a change,
//!   an abort, or the stale-session sweep by the end of the journal.
//!
//! Aborts without a preceding lock are *legal*: the coordinator aborts
//! broadly (including decliners) to clean up lost-message locks, so the
//! replay never flags them. Journals are bounded rings; when the oldest
//! retained event is not sequence 0, the early story is gone and
//! ordering checks are suppressed for that journal.

use std::collections::{BTreeMap, BTreeSet};

use syd_telemetry::JournalEvent;

use crate::event::{parse, ConstraintKind, ProtoEvent};
use crate::report::{render, session_excerpt, AuditReport, Rule, Violation};

/// Tunables for an audit pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct AuditOptions {
    /// Strict mode adds checks that only hold once the system quiesced on
    /// a reliable network: every lock story closed at journal end, abort
    /// never following commit, and no link halves left behind by a
    /// cascade delete. Leave off for lossy/partitioned runs, where a lost
    /// commit legitimately leaves a lock to the stale-session sweep.
    pub strict: bool,
}

impl AuditOptions {
    /// Strict options (see [`AuditOptions::strict`]).
    pub fn strict() -> AuditOptions {
        AuditOptions { strict: true }
    }
}

/// How far a `(session, entity)` story has progressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Locked,
    Committed,
    Aborted,
}

/// What one journal's replay learned, for correlation with live state.
#[derive(Clone, Debug, Default)]
pub(crate) struct ReplaySummary {
    /// Ring truncation was detected; ordering checks were suppressed.
    pub truncated: bool,
    /// `(session, entity)` stories still holding their lock at journal end.
    pub open: BTreeSet<(u64, String)>,
    /// Stories closed by a change or an abort.
    pub closed: BTreeSet<(u64, String)>,
    /// Correlation ids whose links were cascade-deleted here.
    pub cascaded: BTreeSet<String>,
    /// Every negotiation session id mentioned.
    pub sessions: BTreeSet<u64>,
}

/// Replays one device's journal, appending violations to `report` and
/// returning the summary used by the live-state checks.
pub(crate) fn replay_device(
    device: &str,
    events: &[JournalEvent],
    opts: &AuditOptions,
    report: &mut AuditReport,
) -> ReplaySummary {
    let mut summary = ReplaySummary {
        truncated: events.first().is_some_and(|e| e.seq != 0),
        ..ReplaySummary::default()
    };
    report.events += events.len();
    report.truncated |= summary.truncated;

    // Entity -> session currently holding its lock, per this journal.
    let mut holder: BTreeMap<String, u64> = BTreeMap::new();
    // (session, entity) -> story phase.
    let mut phase: BTreeMap<(u64, String), Phase> = BTreeMap::new();
    // Coordinator side: session -> (constraint, participants).
    let mut begun: BTreeMap<u64, (ConstraintKind, usize)> = BTreeMap::new();

    let violate = |report: &mut AuditReport, rule, session: Option<u64>, message: String| {
        let excerpt = match session {
            Some(s) => session_excerpt(events, s, 12),
            None => Vec::new(),
        };
        report.violations.push(Violation {
            device: device.to_owned(),
            session,
            rule,
            message,
            excerpt,
        });
    };

    for event in events {
        let parsed = parse(event);
        match &parsed {
            ProtoEvent::Lock { session, entity } => {
                summary.sessions.insert(*session);
                if !summary.truncated {
                    if let Some(&other) = holder.get(entity) {
                        if other != *session {
                            violate(
                                report,
                                Rule::DoubleBook,
                                Some(*session),
                                format!(
                                    "entity `{entity}` locked while session {other} still \
                                     holds it (at {})",
                                    render(event)
                                ),
                            );
                        } else if opts.strict {
                            // Same-session re-lock: on a lossy network a
                            // retried `mark` is delivered twice (the RPC
                            // layer is at-least-once) and the re-entrant
                            // lock absorbs it, so only strict mode flags it.
                            violate(
                                report,
                                Rule::Ordering,
                                Some(*session),
                                format!("entity `{entity}` locked twice without release"),
                            );
                        }
                    }
                }
                holder.insert(entity.clone(), *session);
                phase.insert((*session, entity.clone()), Phase::Locked);
            }
            ProtoEvent::Vote {
                session,
                entity,
                yes,
                reason,
            } => {
                summary.sessions.insert(*session);
                let key = (*session, entity.clone());
                if *yes {
                    if !summary.truncated && phase.get(&key) != Some(&Phase::Locked) {
                        violate(
                            report,
                            Rule::Ordering,
                            Some(*session),
                            format!("vote=yes on `{entity}` without holding its lock"),
                        );
                    }
                } else if reason.as_deref() == Some("lock-busy") {
                    // The lock was never taken; nothing to release.
                    if !summary.truncated && holder.get(entity) == Some(session) {
                        violate(
                            report,
                            Rule::Ordering,
                            Some(*session),
                            format!("vote=no reason=lock-busy on `{entity}` while holding it"),
                        );
                    }
                } else {
                    // Prepare failed after locking: the lock is released.
                    if !summary.truncated && phase.get(&key) != Some(&Phase::Locked) {
                        violate(
                            report,
                            Rule::Ordering,
                            Some(*session),
                            format!("vote=no (prepare) on `{entity}` without holding its lock"),
                        );
                    }
                    if holder.get(entity) == Some(session) {
                        holder.remove(entity);
                    }
                    phase.insert(key, Phase::Aborted);
                }
            }
            ProtoEvent::Commit {
                session, entity, ..
            } => {
                summary.sessions.insert(*session);
                let key = (*session, entity.clone());
                if !summary.truncated {
                    match phase.get(&key) {
                        // A session re-committing its own entity is a
                        // duplicate delivery (commits are idempotent and
                        // retried after a lost response), so only strict
                        // mode treats it as a double-book.
                        Some(Phase::Committed) if opts.strict => violate(
                            report,
                            Rule::DoubleBook,
                            Some(*session),
                            format!("entity `{entity}` committed twice by one session"),
                        ),
                        Some(Phase::Committed) => {}
                        _ if holder.get(entity) != Some(session) => violate(
                            report,
                            Rule::DoubleBook,
                            Some(*session),
                            format!(
                                "change applied to `{entity}` without holding its lock \
                                 (holder: {})",
                                holder
                                    .get(entity)
                                    .map_or("nobody".to_owned(), |h| format!("session {h}"))
                            ),
                        ),
                        _ => {}
                    }
                }
                if holder.get(entity) == Some(session) {
                    holder.remove(entity);
                }
                phase.insert(key, Phase::Committed);
            }
            ProtoEvent::Release {
                session, entity, ..
            } => {
                summary.sessions.insert(*session);
                let key = (*session, entity.clone());
                // An abort without a lock is legal: coordinators abort
                // broadly to clean up lost-message locks.
                if opts.strict && !summary.truncated && phase.get(&key) == Some(&Phase::Committed) {
                    violate(
                        report,
                        Rule::Ordering,
                        Some(*session),
                        format!("abort of `{entity}` after its change was committed"),
                    );
                }
                if holder.get(entity) == Some(session) {
                    holder.remove(entity);
                }
                if phase.get(&key) != Some(&Phase::Committed) {
                    phase.insert(key, Phase::Aborted);
                }
            }
            ProtoEvent::Begin {
                session,
                constraint,
                participants,
            } => {
                summary.sessions.insert(*session);
                begun.insert(*session, (*constraint, *participants));
            }
            ProtoEvent::Tally {
                session,
                yes,
                declined,
                contended,
            } => {
                summary.sessions.insert(*session);
                if let Some((_, participants)) = begun.get(session) {
                    // `contended` is the transient-conflict *subset* of
                    // `declined`, so the conservation law is yes+declined.
                    if yes + declined != *participants || contended > declined {
                        violate(
                            report,
                            Rule::Constraint,
                            Some(*session),
                            format!(
                                "mark tally yes={yes} declined={declined} \
                                 contended={contended} does not cover \
                                 {participants} participants"
                            ),
                        );
                    }
                }
            }
            ProtoEvent::End {
                session,
                satisfied,
                committed,
                aborted,
                declined,
            } => {
                summary.sessions.insert(*session);
                if let Some((constraint, participants)) = begun.get(session) {
                    if *satisfied && !constraint.holds(*committed, *participants) {
                        violate(
                            report,
                            Rule::Constraint,
                            Some(*session),
                            format!(
                                "satisfied session committed {committed}/{participants}, \
                                 violating {constraint}"
                            ),
                        );
                    }
                    if committed + aborted + declined > *participants {
                        violate(
                            report,
                            Rule::Constraint,
                            Some(*session),
                            format!(
                                "outcome counts {committed}+{aborted}+{declined} exceed \
                                 {participants} participants"
                            ),
                        );
                    }
                }
            }
            ProtoEvent::LinkDeleted { corr, cascade, .. } => {
                if *cascade {
                    summary.cascaded.insert(corr.clone());
                }
            }
            ProtoEvent::Committed { session, .. } | ProtoEvent::AbortUser { session, .. } => {
                summary.sessions.insert(*session);
            }
            ProtoEvent::Promoted { .. } | ProtoEvent::Other => {}
        }
    }

    for (key, p) in &phase {
        match p {
            Phase::Locked => {
                summary.open.insert(key.clone());
            }
            Phase::Committed | Phase::Aborted => {
                summary.closed.insert(key.clone());
            }
        }
    }

    if opts.strict && !summary.truncated {
        for (session, entity) in &summary.open {
            violate(
                report,
                Rule::LockLeak,
                Some(*session),
                format!(
                    "lock story for `{entity}` never closed: no change, abort, or sweep \
                     by end of journal"
                ),
            );
        }
    }

    summary
}

/// Audits a set of named journals with no live state to correlate
/// against. This is what the synthetic-journal oracle tests and offline
/// postmortem tooling use; [`crate::audit`] layers live-state checks on
/// top of this replay.
pub fn audit_journals(
    journals: &[(String, Vec<JournalEvent>)],
    opts: &AuditOptions,
) -> AuditReport {
    let mut report = AuditReport::default();
    let mut all_sessions = BTreeSet::new();
    for (device, events) in journals {
        let summary = replay_device(device, events, opts, &mut report);
        all_sessions.extend(summary.sessions);
    }
    report.sessions = all_sessions.len();
    report.normalize();
    report
}
