//! Critical-path attribution: where did a negotiation's wall time go?
//!
//! The analyzer maps an assembled [`SpanTree`] to a fixed set of phase
//! buckets whose values sum to the root span's wall time:
//!
//! 1. Start with everything in `other` (the root's own time).
//! 2. DFS the tree. Every *phase* span (`dir.resolve`,
//!    `negotiate.mark_round`, `negotiate.commit_round`,
//!    `links.cascade`) moves its duration out of the nearest enclosing
//!    phase bucket into its own — exclusive attribution, so nested
//!    phases (a directory resolve inside a mark round) are not
//!    double-counted.
//! 3. For each phase span, the **critical RPC** — the longest direct
//!    `rpc.client` child — is decomposed: its `transport.queue`
//!    children move into `transport_queue`, and whatever remains of
//!    the RPC after subtracting its server-handler time and queueing
//!    moves into `rpc_gap` (network latency, retry backoff, response
//!    delivery). Sibling RPCs run in parallel with the critical one
//!    and are deliberately ignored: the round's wall time is governed
//!    by its slowest call, so only that call's costs are on the
//!    critical path.
//!
//! Because every move is a transfer between buckets, the bucket total
//! equals the root duration (up to saturation clamps on malformed
//! clocks), which is what makes the per-phase table trustworthy
//! against the measured end-to-end latency.

use crate::collect::{ServerView, SpanTree};
use syd_telemetry::names;

/// Phase bucket names, in report order. `other` is the remainder:
/// root-span time not covered by any instrumented phase.
pub const PHASES: &[&str] = &[
    "dir_resolve",
    "mark_round",
    "commit_round",
    "cascade",
    "transport_queue",
    "rpc_gap",
    "other",
];

const TRANSPORT_QUEUE: usize = 4;
const RPC_GAP: usize = 5;
const OTHER: usize = 6;

fn bucket_of(kind: &str) -> Option<usize> {
    match kind {
        k if k == names::SPAN_DIR_RESOLVE => Some(0),
        k if k == names::SPAN_MARK_ROUND => Some(1),
        k if k == names::SPAN_COMMIT_ROUND => Some(2),
        k if k == names::SPAN_CASCADE => Some(3),
        _ => None,
    }
}

/// Per-phase attribution of one trace's wall time.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// Root-span wall time, µs.
    pub total_us: u64,
    /// `(phase, µs)` in [`PHASES`] order; sums to `total_us`.
    pub phases: Vec<(&'static str, u64)>,
    /// Whether the underlying tree was complete.
    pub complete: bool,
}

impl Attribution {
    /// Value of one phase bucket, µs.
    pub fn phase_us(&self, phase: &str) -> u64 {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map_or(0, |(_, v)| *v)
    }

    /// Sum of all buckets, µs (equals `total_us` up to clamping).
    pub fn sum_us(&self) -> u64 {
        self.phases.iter().map(|(_, v)| *v).sum()
    }
}

/// Attributes the tree's wall time to phase buckets.
pub fn attribute(tree: &SpanTree) -> Attribution {
    let mut buckets = [0u64; 7];
    let total = tree.duration_us();
    buckets[OTHER] = total;

    // Pass 1: exclusive phase attribution via iterative DFS carrying
    // the nearest enclosing phase bucket.
    let mut stack: Vec<(usize, usize)> = vec![(tree.root, OTHER)];
    let mut phase_nodes: Vec<(usize, usize)> = Vec::new(); // (node, bucket)
    while let Some((idx, enclosing)) = stack.pop() {
        let node = &tree.nodes[idx];
        let here = match bucket_of(node.kind) {
            Some(b) if idx != tree.root => {
                let dur = node.duration_us();
                buckets[b] += dur;
                buckets[enclosing] = buckets[enclosing].saturating_sub(dur);
                phase_nodes.push((idx, b));
                b
            }
            _ => enclosing,
        };
        for &child in &node.children {
            stack.push((child, here));
        }
    }
    // The root itself owns the `other` bucket and is also decomposed.
    phase_nodes.push((tree.root, OTHER));

    // Pass 2: decompose each phase's critical RPC into queueing and
    // network/retry gap.
    for (idx, bucket) in phase_nodes {
        let node = &tree.nodes[idx];
        let crit = node
            .children
            .iter()
            .copied()
            .filter(|&c| tree.nodes[c].kind == names::SPAN_RPC_CLIENT)
            .max_by_key(|&c| tree.nodes[c].duration_us());
        let Some(crit) = crit else { continue };
        let rpc = &tree.nodes[crit];
        let queue_us: u64 = rpc
            .children
            .iter()
            .copied()
            .filter(|&c| tree.nodes[c].kind == names::SPAN_TRANSPORT_QUEUE)
            .map(|c| tree.nodes[c].duration_us())
            .sum();
        let serve_us = rpc.server.as_ref().map_or(0, ServerView::duration_us);
        let gap_us = rpc
            .duration_us()
            .saturating_sub(serve_us)
            .saturating_sub(queue_us);
        let moved = (queue_us + gap_us).min(buckets[bucket]);
        // Keep the transfer balanced even when clocks misbehave.
        let queue_moved = queue_us.min(moved);
        let gap_moved = moved - queue_moved;
        buckets[bucket] -= moved;
        buckets[TRANSPORT_QUEUE] += queue_moved;
        buckets[RPC_GAP] += gap_moved;
    }

    Attribution {
        total_us: total,
        phases: PHASES.iter().copied().zip(buckets).collect(),
        complete: tree.complete,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::collect::{AssemblyMode, Collector};
    use crate::ring::SpanRecord;

    fn rec(
        span: u64,
        parent: u64,
        kind: &'static str,
        device: u64,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace: 1,
            span,
            parent,
            kind,
            device,
            start_us: start,
            end_us: end,
            attrs: Vec::new(),
        }
    }

    /// root [0,1000]
    ///   dir.resolve [0,100]
    ///   mark_round [100,600]
    ///     rpc A [110,580] (crit) server [300,500], queue [115,150]
    ///     rpc B [110,300] server [150,250]  (parallel, ignored)
    ///   commit_round [600,900]
    ///     rpc C [610,890] server [700,850]
    fn build() -> crate::collect::SpanTree {
        let mut c = Collector::new(AssemblyMode::Lossy);
        c.ingest(rec(1, 0, names::SPAN_SCHEDULE, 1, 0, 1000));
        c.ingest(rec(2, 1, names::SPAN_DIR_RESOLVE, 1, 0, 100));
        c.ingest(rec(3, 1, names::SPAN_MARK_ROUND, 1, 100, 600));
        c.ingest(rec(4, 3, names::SPAN_RPC_CLIENT, 1, 110, 580));
        c.ingest(rec(4, 0, names::SPAN_RPC_SERVER, 2, 300, 500));
        c.ingest(rec(7, 4, names::SPAN_TRANSPORT_QUEUE, 1, 115, 150));
        c.ingest(rec(5, 3, names::SPAN_RPC_CLIENT, 1, 110, 300));
        c.ingest(rec(5, 0, names::SPAN_RPC_SERVER, 3, 150, 250));
        c.ingest(rec(6, 1, names::SPAN_COMMIT_ROUND, 1, 600, 900));
        c.ingest(rec(8, 6, names::SPAN_RPC_CLIENT, 1, 610, 890));
        c.ingest(rec(8, 0, names::SPAN_RPC_SERVER, 2, 700, 850));
        c.assemble(1).unwrap()
    }

    #[test]
    fn buckets_sum_to_total() {
        let attr = attribute(&build());
        assert_eq!(attr.total_us, 1000);
        assert_eq!(attr.sum_us(), 1000);
        assert!(attr.complete);
    }

    #[test]
    fn phases_get_exclusive_time_and_rpc_decomposes() {
        let attr = attribute(&build());
        assert_eq!(attr.phase_us("dir_resolve"), 100);
        // mark round: 500 total, minus crit-RPC queue (35) and gap
        // (470 - 200 server - 35 queue = 235).
        assert_eq!(attr.phase_us("mark_round"), 500 - 35 - 235);
        assert_eq!(attr.phase_us("transport_queue"), 35);
        // commit round: 300, crit rpc 280, server 150, gap 130.
        assert_eq!(attr.phase_us("commit_round"), 300 - 130);
        assert_eq!(attr.phase_us("rpc_gap"), 235 + 130);
        // other: 1000 - 100 - 500 - 300 = 100 (slot search etc.)
        assert_eq!(attr.phase_us("other"), 100);
    }

    #[test]
    fn parallel_sibling_rpcs_do_not_overdraw_the_round() {
        // Two parallel RPCs each longer than naive subtraction would
        // allow; only the critical one is decomposed.
        let mut c = Collector::new(AssemblyMode::Lossy);
        c.ingest(rec(1, 0, names::SPAN_SCHEDULE, 1, 0, 200));
        c.ingest(rec(2, 1, names::SPAN_MARK_ROUND, 1, 0, 200));
        c.ingest(rec(3, 2, names::SPAN_RPC_CLIENT, 1, 0, 190));
        c.ingest(rec(3, 0, names::SPAN_RPC_SERVER, 2, 10, 20));
        c.ingest(rec(4, 2, names::SPAN_RPC_CLIENT, 1, 0, 185));
        c.ingest(rec(4, 0, names::SPAN_RPC_SERVER, 3, 10, 20));
        let attr = attribute(&c.assemble(1).unwrap());
        assert_eq!(attr.sum_us(), attr.total_us);
        // Only crit (190): gap 180; bucket keeps the rest.
        assert_eq!(attr.phase_us("rpc_gap"), 180);
        assert_eq!(attr.phase_us("mark_round"), 20);
    }

    #[test]
    fn empty_tree_is_all_other() {
        let mut c = Collector::new(AssemblyMode::Lossy);
        c.ingest(rec(1, 0, names::SPAN_SCHEDULE, 1, 0, 50));
        let attr = attribute(&c.assemble(1).unwrap());
        assert_eq!(attr.phase_us("other"), 50);
        assert_eq!(attr.sum_us(), 50);
    }
}
