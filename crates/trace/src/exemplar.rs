//! Worst-K slow-trace exemplar retention.
//!
//! Aggregated phase tables tell you *where* time goes on average; the
//! exemplar store keeps the actual worst trees per operation so the
//! pathological cases (the 10s TCP reconnect stall, the mark round
//! that waited out a lock) can be opened in Perfetto after the run.

use crate::collect::SpanTree;
use std::collections::HashMap;

/// Retains the `k` slowest assembled trees per root operation.
#[derive(Debug, Default)]
pub struct ExemplarStore {
    k: usize,
    by_op: HashMap<&'static str, Vec<SpanTree>>,
}

impl ExemplarStore {
    /// Creates a store retaining at most `k` trees per operation.
    pub fn new(k: usize) -> ExemplarStore {
        ExemplarStore {
            k: k.max(1),
            by_op: HashMap::new(),
        }
    }

    /// Offers one tree; it is kept only if it ranks among the worst
    /// `k` for its root kind.
    pub fn offer(&mut self, tree: SpanTree) {
        let slot = self.by_op.entry(tree.op()).or_default();
        let pos = slot
            .binary_search_by(|t| tree.duration_us().cmp(&t.duration_us()))
            .unwrap_or_else(|p| p);
        if pos < self.k {
            slot.insert(pos, tree);
            slot.truncate(self.k);
        }
    }

    /// The retained trees for `op`, slowest first.
    pub fn worst(&self, op: &str) -> &[SpanTree] {
        self.by_op.get(op).map_or(&[], Vec::as_slice)
    }

    /// Operations with at least one retained tree, sorted.
    pub fn ops(&self) -> Vec<&'static str> {
        let mut ops: Vec<&'static str> = self.by_op.keys().copied().collect();
        ops.sort_unstable();
        ops
    }

    /// Every retained tree across all operations (for export).
    pub fn all(&self) -> Vec<&SpanTree> {
        let mut trees: Vec<&SpanTree> = self.by_op.values().flatten().collect();
        trees.sort_by_key(|t| std::cmp::Reverse(t.duration_us()));
        trees
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::collect::{AssemblyMode, Collector};
    use crate::ring::SpanRecord;
    use syd_telemetry::names;

    fn tree(trace: u64, dur: u64) -> SpanTree {
        let mut c = Collector::new(AssemblyMode::Lossy);
        c.ingest(SpanRecord {
            trace,
            span: trace,
            parent: 0,
            kind: names::SPAN_SCHEDULE,
            device: 1,
            start_us: 0,
            end_us: dur,
            attrs: Vec::new(),
        });
        c.assemble(trace).unwrap()
    }

    #[test]
    fn keeps_only_the_worst_k_slowest_first() {
        let mut store = ExemplarStore::new(2);
        for (trace, dur) in [(1, 50), (2, 500), (3, 5), (4, 200)] {
            store.offer(tree(trace, dur));
        }
        let worst = store.worst(names::SPAN_SCHEDULE);
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].duration_us(), 500);
        assert_eq!(worst[1].duration_us(), 200);
        assert_eq!(store.ops(), vec![names::SPAN_SCHEDULE]);
        assert_eq!(store.all().len(), 2);
        assert!(store.worst("unknown.op").is_empty());
    }
}
