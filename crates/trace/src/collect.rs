//! Cross-device span-tree assembly.
//!
//! A [`Collector`] ingests [`SpanRecord`]s drained from any number of
//! rings and groups them by trace id. [`Collector::assemble`] then
//! builds one [`SpanTree`] per trace:
//!
//! * **dedup** — at-least-once RPC delivery can record the same span
//!   view twice (a retried request re-runs the server handler under
//!   the same span id). Views are deduplicated on
//!   `(span, kind, device)`, keeping the earliest start; the number of
//!   dropped duplicates is reported on the tree.
//! * **merge** — the client and server sides of an RPC record under
//!   the *same* span id (the one minted by the caller and carried in
//!   the wire `TraceContext`). The non-server record is the node's
//!   primary view; an `rpc.server` record becomes its
//!   [`ServerView`]. Parentage always comes from the primary view,
//!   because only the caller knows the parent.
//! * **lossy tolerance** — mirroring `syd-check`'s strict/lossy modes:
//!   in [`AssemblyMode::Strict`], a missing parent, an orphaned server
//!   view, or an unmatched RPC client span is an [`AssembleError`]; in
//!   [`AssemblyMode::Lossy`] the tree is still built, the stray nodes
//!   are attached under the root, and the tree is flagged
//!   `complete = false` with a human-readable anomaly list.

use crate::ring::{live_rings, SpanRecord, SpanRing};
use std::collections::HashMap;
use std::fmt;
use syd_telemetry::names;

/// How tolerant assembly is of missing records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssemblyMode {
    /// Any hole in the tree is an error.
    Strict,
    /// Holes degrade to a flagged-incomplete tree.
    Lossy,
}

/// Why strict assembly refused to build a tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssembleError {
    /// No records were ingested for the requested trace id.
    UnknownTrace(u64),
    /// No root span (parent 0, non-server view) was found.
    NoRoot(u64),
    /// More than one root span claims the trace.
    MultipleRoots(u64, usize),
    /// A span references a parent that was never recorded.
    MissingParent {
        /// The span whose parent is missing.
        span: u64,
        /// The referenced, unrecorded parent id.
        parent: u64,
    },
    /// An `rpc.server` view has no matching client-side record.
    OrphanServer {
        /// The orphaned span id.
        span: u64,
    },
    /// An `rpc.client` span has no matching server view.
    UnmatchedClient {
        /// The unmatched span id.
        span: u64,
    },
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::UnknownTrace(t) => write!(f, "no records for trace {t:016x}"),
            AssembleError::NoRoot(t) => write!(f, "trace {t:016x} has no root span"),
            AssembleError::MultipleRoots(t, n) => {
                write!(f, "trace {t:016x} has {n} root spans")
            }
            AssembleError::MissingParent { span, parent } => {
                write!(
                    f,
                    "span {span:016x} references missing parent {parent:016x}"
                )
            }
            AssembleError::OrphanServer { span } => {
                write!(f, "server view {span:016x} has no client record")
            }
            AssembleError::UnmatchedClient { span } => {
                write!(f, "client span {span:016x} has no server view")
            }
        }
    }
}

impl std::error::Error for AssembleError {}

/// The server-side view of an RPC span (same span id, other device).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerView {
    /// Device that served the request.
    pub device: u64,
    /// Handler entry, µs.
    pub start_us: u64,
    /// Response sent, µs.
    pub end_us: u64,
}

impl ServerView {
    /// Handler wall time, µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One node of an assembled tree: a span plus its merged views.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span id.
    pub span: u64,
    /// Parent span id (0 for the root).
    pub parent: u64,
    /// Primary kind (the caller/local view).
    pub kind: &'static str,
    /// Device that recorded the primary view.
    pub device: u64,
    /// Primary-view start, µs.
    pub start_us: u64,
    /// Primary-view end, µs.
    pub end_us: u64,
    /// Numeric attributes from the primary view.
    pub attrs: Vec<(&'static str, u64)>,
    /// Merged `rpc.server` view, when one was recorded.
    pub server: Option<ServerView>,
    /// Indices of child nodes, ordered by start time.
    pub children: Vec<usize>,
}

impl SpanNode {
    /// Primary-view wall time, µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// An assembled cross-device span tree for one trace.
#[derive(Clone, Debug)]
pub struct SpanTree {
    /// The trace id the tree describes.
    pub trace: u64,
    /// All nodes; index 0 is unused structure-wise, see [`SpanTree::root`].
    pub nodes: Vec<SpanNode>,
    /// Index of the root node in [`SpanTree::nodes`].
    pub root: usize,
    /// False when assembly had to paper over missing records.
    pub complete: bool,
    /// Human-readable descriptions of every hole papered over.
    pub anomalies: Vec<String>,
    /// At-least-once duplicates dropped during dedup.
    pub duplicates_dropped: u64,
}

impl SpanTree {
    /// Root-span wall time, µs.
    pub fn duration_us(&self) -> u64 {
        self.nodes[self.root].duration_us()
    }

    /// Kind of the root span (the operation this trace describes).
    pub fn op(&self) -> &'static str {
        self.nodes[self.root].kind
    }

    /// Indices of every node with the given kind.
    pub fn find_kind(&self, kind: &str) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].kind == kind)
            .collect()
    }

    /// Multiset of `(kind, child kinds)` pairs, a device- and
    /// timing-independent shape signature for structural comparison.
    pub fn shape(&self) -> Vec<(String, Vec<&'static str>)> {
        let mut shape: Vec<(String, Vec<&'static str>)> = self
            .nodes
            .iter()
            .map(|n| {
                let mut kids: Vec<&'static str> =
                    n.children.iter().map(|&c| self.nodes[c].kind).collect();
                kids.sort_unstable();
                (n.kind.to_string(), kids)
            })
            .collect();
        shape.sort();
        shape
    }
}

/// Ingests drained records and assembles per-trace span trees.
pub struct Collector {
    mode: AssemblyMode,
    traces: HashMap<u64, Vec<SpanRecord>>,
    labels: HashMap<u64, String>,
}

impl Collector {
    /// Creates an empty collector with the given tolerance.
    pub fn new(mode: AssemblyMode) -> Collector {
        Collector {
            mode,
            traces: HashMap::new(),
            labels: HashMap::new(),
        }
    }

    /// Adds one record.
    pub fn ingest(&mut self, rec: SpanRecord) {
        self.traces.entry(rec.trace).or_default().push(rec);
    }

    /// Drains every buffered record out of `ring`.
    pub fn drain(&mut self, ring: &SpanRing) {
        self.labels
            .entry(ring.device())
            .or_insert_with(|| ring.label().to_string());
        while let Some(rec) = ring.pop() {
            self.ingest(rec);
        }
    }

    /// Drains every live ring in the process.
    pub fn drain_global(&mut self) {
        for ring in live_rings() {
            self.drain(&ring);
        }
    }

    /// Device → label map gathered from drained rings (for exporters).
    pub fn labels(&self) -> &HashMap<u64, String> {
        &self.labels
    }

    /// Trace ids with at least one ingested record.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.traces.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Forgets all ingested records (labels are kept).
    pub fn clear(&mut self) {
        self.traces.clear();
    }

    /// Assembles the tree for one trace. See the module docs for the
    /// dedup/merge/tolerance rules.
    pub fn assemble(&self, trace: u64) -> Result<SpanTree, AssembleError> {
        let records = self
            .traces
            .get(&trace)
            .ok_or(AssembleError::UnknownTrace(trace))?;

        // Dedup on (span, kind, device), keeping the earliest start.
        let mut views: HashMap<(u64, &'static str, u64), SpanRecord> = HashMap::new();
        let mut duplicates_dropped = 0u64;
        for rec in records {
            match views.entry((rec.span, rec.kind, rec.device)) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(rec.clone());
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    duplicates_dropped += 1;
                    if rec.start_us < o.get().start_us {
                        o.insert(rec.clone());
                    }
                }
            }
        }

        // Merge views per span id: one primary + optional server view.
        let mut primaries: HashMap<u64, SpanRecord> = HashMap::new();
        let mut servers: HashMap<u64, ServerView> = HashMap::new();
        let mut anomalies: Vec<String> = Vec::new();
        for ((span, kind, _), rec) in views {
            if kind == names::SPAN_RPC_SERVER {
                // A retried RPC can be served by the same handler twice
                // from different pool threads; keep the earliest.
                match servers.entry(span) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(ServerView {
                            device: rec.device,
                            start_us: rec.start_us,
                            end_us: rec.end_us,
                        });
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        duplicates_dropped += 1;
                        if rec.start_us < o.get().start_us {
                            o.insert(ServerView {
                                device: rec.device,
                                start_us: rec.start_us,
                                end_us: rec.end_us,
                            });
                        }
                    }
                }
            } else {
                match primaries.entry(span) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(rec);
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        anomalies.push(format!(
                            "span {span:016x} has conflicting primary views ({} vs {})",
                            o.get().kind,
                            rec.kind
                        ));
                        if rec.start_us < o.get().start_us {
                            o.insert(rec);
                        }
                    }
                }
            }
        }

        // Orphaned server views (client record lost): strict error,
        // lossy synthesized primary flagged in the anomaly list.
        let mut complete = true;
        let orphan_spans: Vec<u64> = servers
            .keys()
            .copied()
            .filter(|s| !primaries.contains_key(s))
            .collect();
        for span in orphan_spans {
            if self.mode == AssemblyMode::Strict {
                return Err(AssembleError::OrphanServer { span });
            }
            complete = false;
            if let Some(sv) = servers.get(&span) {
                anomalies.push(format!(
                    "server view {span:016x} on device {} has no client record",
                    sv.device
                ));
                primaries.insert(
                    span,
                    SpanRecord {
                        trace,
                        span,
                        parent: 0,
                        kind: names::SPAN_RPC_SERVER,
                        device: sv.device,
                        start_us: sv.start_us,
                        end_us: sv.end_us,
                        attrs: Vec::new(),
                    },
                );
            }
        }

        // Unmatched RPC client spans (server record lost or not served).
        for (span, rec) in &primaries {
            if rec.kind == names::SPAN_RPC_CLIENT && !servers.contains_key(span) {
                if self.mode == AssemblyMode::Strict {
                    return Err(AssembleError::UnmatchedClient { span: *span });
                }
                complete = false;
                anomalies.push(format!("client span {span:016x} has no server view"));
            }
        }

        // Build nodes, identify the root, wire up children.
        let mut order: Vec<u64> = primaries.keys().copied().collect();
        order.sort_unstable();
        let index: HashMap<u64, usize> = order.iter().enumerate().map(|(i, s)| (*s, i)).collect();
        let mut nodes: Vec<SpanNode> = order
            .iter()
            .map(|span| {
                let rec = &primaries[span];
                SpanNode {
                    span: *span,
                    parent: rec.parent,
                    kind: rec.kind,
                    device: rec.device,
                    start_us: rec.start_us,
                    end_us: rec.end_us,
                    attrs: rec.attrs.clone(),
                    server: servers.get(span).cloned(),
                    children: Vec::new(),
                }
            })
            .collect();

        let roots: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == 0 && n.kind != names::SPAN_RPC_SERVER)
            .map(|(i, _)| i)
            .collect();
        let root = match roots.len() {
            1 => roots[0],
            0 => {
                if self.mode == AssemblyMode::Strict {
                    return Err(AssembleError::NoRoot(trace));
                }
                complete = false;
                anomalies.push("no root span; earliest span promoted".to_string());
                let earliest = nodes
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, n)| n.start_us)
                    .map(|(i, _)| i)
                    .ok_or(AssembleError::UnknownTrace(trace))?;
                nodes[earliest].parent = 0;
                earliest
            }
            n => {
                if self.mode == AssemblyMode::Strict {
                    return Err(AssembleError::MultipleRoots(trace, n));
                }
                complete = false;
                anomalies.push(format!("{n} root spans; earliest kept, rest reparented"));
                let first = roots
                    .iter()
                    .copied()
                    .min_by_key(|&i| nodes[i].start_us)
                    .unwrap_or(roots[0]);
                let first_span = nodes[first].span;
                for &r in &roots {
                    if r != first {
                        nodes[r].parent = first_span;
                    }
                }
                first
            }
        };

        let root_span = nodes[root].span;
        for i in 0..nodes.len() {
            if i == root {
                continue;
            }
            let parent = nodes[i].parent;
            let parent_idx = match index.get(&parent) {
                Some(&p) => p,
                None => {
                    if self.mode == AssemblyMode::Strict {
                        return Err(AssembleError::MissingParent {
                            span: nodes[i].span,
                            parent,
                        });
                    }
                    complete = false;
                    anomalies.push(format!(
                        "span {:016x} lost parent {parent:016x}; reattached to root",
                        nodes[i].span
                    ));
                    nodes[i].parent = root_span;
                    root
                }
            };
            nodes[parent_idx].children.push(i);
        }
        for i in 0..nodes.len() {
            let mut kids = std::mem::take(&mut nodes[i].children);
            kids.sort_by_key(|&c| (nodes[c].start_us, nodes[c].span));
            nodes[i].children = kids;
        }

        Ok(SpanTree {
            trace,
            nodes,
            root,
            complete,
            anomalies,
            duplicates_dropped,
        })
    }

    /// Assembles every ingested trace, skipping ones that fail strict
    /// assembly (their errors are returned alongside).
    pub fn assemble_all(&self) -> (Vec<SpanTree>, Vec<AssembleError>) {
        let mut trees = Vec::new();
        let mut errors = Vec::new();
        for id in self.trace_ids() {
            match self.assemble(id) {
                Ok(t) => trees.push(t),
                Err(e) => errors.push(e),
            }
        }
        (trees, errors)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn rec(
        trace: u64,
        span: u64,
        parent: u64,
        kind: &'static str,
        device: u64,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace,
            span,
            parent,
            kind,
            device,
            start_us: start,
            end_us: end,
            attrs: Vec::new(),
        }
    }

    fn sample(collector: &mut Collector) {
        // root(schedule) -> mark_round -> rpc X (client dev1 / server dev2)
        collector.ingest(rec(5, 10, 0, names::SPAN_SCHEDULE, 1, 0, 100));
        collector.ingest(rec(5, 11, 10, names::SPAN_MARK_ROUND, 1, 5, 80));
        collector.ingest(rec(5, 12, 11, names::SPAN_RPC_CLIENT, 1, 10, 70));
        collector.ingest(rec(5, 12, 0, names::SPAN_RPC_SERVER, 2, 20, 60));
    }

    #[test]
    fn merges_client_and_server_views() {
        let mut c = Collector::new(AssemblyMode::Strict);
        sample(&mut c);
        let tree = c.assemble(5).unwrap();
        assert!(tree.complete);
        assert_eq!(tree.op(), names::SPAN_SCHEDULE);
        assert_eq!(tree.duration_us(), 100);
        let rpc = tree.find_kind(names::SPAN_RPC_CLIENT);
        assert_eq!(rpc.len(), 1);
        let node = &tree.nodes[rpc[0]];
        let server = node.server.as_ref().unwrap();
        assert_eq!(server.device, 2);
        assert_eq!(server.duration_us(), 40);
        // parentage: rpc under mark_round under root
        let mark = tree.find_kind(names::SPAN_MARK_ROUND)[0];
        assert_eq!(node.parent, tree.nodes[mark].span);
        assert_eq!(tree.nodes[mark].parent, tree.nodes[tree.root].span);
    }

    #[test]
    fn deduplicates_at_least_once_redelivery() {
        let mut c = Collector::new(AssemblyMode::Strict);
        sample(&mut c);
        // The server handler ran twice for a retried request.
        c.ingest(rec(5, 12, 0, names::SPAN_RPC_SERVER, 2, 25, 65));
        let tree = c.assemble(5).unwrap();
        assert!(tree.complete);
        assert_eq!(tree.duplicates_dropped, 1);
        assert_eq!(
            tree.nodes[tree.find_kind(names::SPAN_RPC_CLIENT)[0]]
                .server
                .as_ref()
                .unwrap()
                .start_us,
            20,
            "earliest server view wins"
        );
    }

    #[test]
    fn strict_rejects_missing_parent_lossy_flags_it() {
        let mut strict = Collector::new(AssemblyMode::Strict);
        let mut lossy = Collector::new(AssemblyMode::Lossy);
        for c in [&mut strict, &mut lossy] {
            sample(c);
            // A span whose parent record was evicted from its ring.
            c.ingest(rec(5, 13, 999, names::SPAN_LOCK_WAIT, 2, 30, 40));
        }
        assert_eq!(
            strict.assemble(5).unwrap_err(),
            AssembleError::MissingParent {
                span: 13,
                parent: 999
            }
        );
        let tree = lossy.assemble(5).unwrap();
        assert!(!tree.complete);
        assert!(!tree.anomalies.is_empty());
        // The stray span hangs off the root instead of vanishing.
        let stray = tree.find_kind(names::SPAN_LOCK_WAIT)[0];
        assert_eq!(tree.nodes[stray].parent, tree.nodes[tree.root].span);
    }

    #[test]
    fn strict_rejects_orphan_server_lossy_keeps_it() {
        let mut strict = Collector::new(AssemblyMode::Strict);
        let mut lossy = Collector::new(AssemblyMode::Lossy);
        for c in [&mut strict, &mut lossy] {
            sample(c);
            // Server view whose client-side record was lost.
            c.ingest(rec(5, 14, 0, names::SPAN_RPC_SERVER, 3, 30, 40));
        }
        assert_eq!(
            strict.assemble(5).unwrap_err(),
            AssembleError::OrphanServer { span: 14 }
        );
        let tree = lossy.assemble(5).unwrap();
        assert!(!tree.complete);
        assert_eq!(tree.find_kind(names::SPAN_RPC_SERVER).len(), 1);
    }

    #[test]
    fn unmatched_client_is_incomplete() {
        let mut c = Collector::new(AssemblyMode::Lossy);
        c.ingest(rec(9, 1, 0, names::SPAN_SCHEDULE, 1, 0, 50));
        c.ingest(rec(9, 2, 1, names::SPAN_RPC_CLIENT, 1, 5, 45));
        let tree = c.assemble(9).unwrap();
        assert!(!tree.complete);

        let strict = {
            let mut s = Collector::new(AssemblyMode::Strict);
            s.ingest(rec(9, 1, 0, names::SPAN_SCHEDULE, 1, 0, 50));
            s.ingest(rec(9, 2, 1, names::SPAN_RPC_CLIENT, 1, 5, 45));
            s.assemble(9)
        };
        assert_eq!(
            strict.unwrap_err(),
            AssembleError::UnmatchedClient { span: 2 }
        );
    }

    #[test]
    fn shape_is_stable_across_devices_and_timing() {
        let mut a = Collector::new(AssemblyMode::Strict);
        sample(&mut a);
        let mut b = Collector::new(AssemblyMode::Strict);
        b.ingest(rec(8, 20, 0, names::SPAN_SCHEDULE, 9, 1000, 1900));
        b.ingest(rec(8, 21, 20, names::SPAN_MARK_ROUND, 9, 1100, 1800));
        b.ingest(rec(8, 22, 21, names::SPAN_RPC_CLIENT, 9, 1200, 1700));
        b.ingest(rec(8, 22, 0, names::SPAN_RPC_SERVER, 7, 1300, 1600));
        assert_eq!(
            a.assemble(5).unwrap().shape(),
            b.assemble(8).unwrap().shape()
        );
    }

    #[test]
    fn unknown_trace_errors() {
        let c = Collector::new(AssemblyMode::Lossy);
        assert!(matches!(c.assemble(1), Err(AssembleError::UnknownTrace(1))));
    }
}
