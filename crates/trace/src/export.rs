//! Chrome `trace_event` JSON export (loadable in Perfetto and
//! chrome://tracing).
//!
//! Each SyD device becomes a chrome *process* (named via metadata
//! events from the drained ring labels); spans become complete `"X"`
//! events. Overlapping sibling spans on one device (a parallel RPC
//! fan-out) cannot share a chrome thread lane, so lanes are assigned
//! greedily per device: each span takes the lowest-numbered lane that
//! is free at its start time. Server views render on the serving
//! device under the `rpc.server` name.

use crate::collect::SpanTree;
use std::collections::HashMap;
use std::fmt::Write as _;
use syd_telemetry::export::json_escape;
use syd_telemetry::names;

struct Event {
    device: u64,
    name: &'static str,
    start_us: u64,
    end_us: u64,
    trace: u64,
    span: u64,
    attrs: Vec<(&'static str, u64)>,
}

/// Renders assembled trees as one chrome `trace_event` JSON document.
///
/// `labels` maps device ids to display names (from
/// `Collector::labels`); unlabeled devices render as `dev-<id>`.
pub fn chrome_trace(trees: &[SpanTree], labels: &HashMap<u64, String>) -> String {
    let mut events: Vec<Event> = Vec::new();
    for tree in trees {
        for node in &tree.nodes {
            events.push(Event {
                device: node.device,
                name: node.kind,
                start_us: node.start_us,
                end_us: node.end_us,
                trace: tree.trace,
                span: node.span,
                attrs: node.attrs.clone(),
            });
            if let Some(server) = &node.server {
                events.push(Event {
                    device: server.device,
                    name: names::SPAN_RPC_SERVER,
                    start_us: server.start_us,
                    end_us: server.end_us,
                    trace: tree.trace,
                    span: node.span,
                    attrs: Vec::new(),
                });
            }
        }
    }

    // Greedy lane assignment per device: sort by start, give each
    // event the first lane whose previous occupant has ended.
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| (events[i].device, events[i].start_us, events[i].span));
    let mut lanes: HashMap<u64, Vec<u64>> = HashMap::new(); // device -> lane end times
    let mut lane_of: Vec<usize> = vec![0; events.len()];
    for &i in &order {
        let ev = &events[i];
        let ends = lanes.entry(ev.device).or_default();
        let lane = ends.iter().position(|&end| end <= ev.start_us);
        let lane = match lane {
            Some(l) => l,
            None => {
                ends.push(0);
                ends.len() - 1
            }
        };
        ends[lane] = ev.end_us;
        lane_of[i] = lane;
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut devices: Vec<u64> = lanes.keys().copied().collect();
    devices.sort_unstable();
    for device in devices {
        let name = labels
            .get(&device)
            .cloned()
            .unwrap_or_else(|| format!("dev-{device}"));
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{device},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&name)
        );
    }
    for (i, ev) in events.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"syd\",\"pid\":{},\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\"",
            json_escape(ev.name),
            ev.device,
            lane_of[i],
            ev.start_us,
            ev.end_us.saturating_sub(ev.start_us),
            ev.trace,
            ev.span,
        );
        for (key, value) in &ev.attrs {
            let _ = write!(out, ",\"{}\":{value}", json_escape(key));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::collect::{AssemblyMode, Collector};
    use crate::ring::SpanRecord;

    fn rec(
        span: u64,
        parent: u64,
        kind: &'static str,
        device: u64,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace: 3,
            span,
            parent,
            kind,
            device,
            start_us: start,
            end_us: end,
            attrs: if kind == names::SPAN_SCHEDULE {
                vec![("participants", 4)]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn emits_one_x_event_per_view_plus_metadata() {
        let mut c = Collector::new(AssemblyMode::Lossy);
        c.ingest(rec(1, 0, names::SPAN_SCHEDULE, 1, 0, 100));
        c.ingest(rec(2, 1, names::SPAN_RPC_CLIENT, 1, 10, 90));
        c.ingest(rec(2, 0, names::SPAN_RPC_SERVER, 2, 30, 70));
        let tree = c.assemble(3).unwrap();
        let labels = HashMap::from([(1, "alice".to_string()), (2, "bob".to_string())]);
        let doc = chrome_trace(&[tree], &labels);
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(doc.matches("\"ph\":\"M\"").count(), 2);
        assert!(doc.contains("\"name\":\"alice\""), "{doc}");
        assert!(doc.contains("\"rpc.server\""), "{doc}");
        assert!(doc.contains("\"participants\":4"), "{doc}");
    }

    #[test]
    fn overlapping_siblings_get_distinct_lanes() {
        let mut c = Collector::new(AssemblyMode::Lossy);
        c.ingest(rec(1, 0, names::SPAN_SCHEDULE, 1, 0, 100));
        c.ingest(rec(2, 1, names::SPAN_MARK_ROUND, 1, 5, 95));
        let tree = c.assemble(3).unwrap();
        let doc = chrome_trace(&[tree], &HashMap::new());
        // Root occupies lane 0 for [0,100]; the nested span overlaps
        // it and must land on lane 1.
        assert!(doc.contains("\"tid\":1"), "{doc}");
        assert!(doc.contains("dev-1"), "{doc}");
    }
}
