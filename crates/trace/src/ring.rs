//! Per-device lock-free span rings and the [`Tracer`] handle that
//! instrumented code records through.
//!
//! Each device (node, transport backend, …) owns one bounded
//! [`SpanRing`]; finishing a span is a single `ArrayQueue` push with
//! evict-oldest semantics, so tracing never blocks a protocol thread
//! and never grows without bound. Rings self-register in a process
//! global registry (as weak refs) so `Collector::drain_global` and
//! `syd::obs::snapshot` can find every live ring without plumbing.

use crossbeam::queue::ArrayQueue;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Instant;
use syd_telemetry::trace::{self, SpanCtx};

/// Default per-ring capacity; drains are expected between operations.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One finished span, as recorded on the device that observed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// End-to-end operation id (same across every hop of the trace).
    pub trace: u64,
    /// This span's id. RPC client and server record under the same id.
    pub span: u64,
    /// Parent span id; 0 means "root or parent unknown".
    pub parent: u64,
    /// Kind string from `syd_telemetry::names` (`SPAN_*`).
    pub kind: &'static str,
    /// Device that recorded this view of the span.
    pub device: u64,
    /// Start, µs on the process-wide monotonic clock.
    pub start_us: u64,
    /// End, µs on the process-wide monotonic clock.
    pub end_us: u64,
    /// Numeric key/value attributes (participant count, retry count…).
    pub attrs: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// Wall time covered by this record, µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Microseconds since the process-wide trace epoch.
///
/// All rings share one epoch so records from different devices in the
/// same process are directly comparable.
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A bounded lock-free ring of finished spans for one device.
pub struct SpanRing {
    label: String,
    device: u64,
    buf: ArrayQueue<SpanRecord>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` records.
    pub fn new(label: impl Into<String>, device: u64, capacity: usize) -> Arc<SpanRing> {
        let ring = Arc::new(SpanRing {
            label: label.into(),
            device,
            buf: ArrayQueue::new(capacity.max(1)),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        registry().lock().push(Arc::downgrade(&ring));
        ring
    }

    /// Pushes a finished record, evicting the oldest when full.
    pub fn push(&self, rec: SpanRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut rec = rec;
        while let Err(back) = self.buf.push(rec) {
            rec = back;
            if self.buf.pop().is_some() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest buffered record, if any.
    pub fn pop(&self) -> Option<SpanRecord> {
        self.buf.pop()
    }

    /// The device id this ring records for.
    pub fn device(&self) -> u64 {
        self.device
    }

    /// Human-readable device label (node address, backend name…).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Point-in-time counters for this ring.
    pub fn stats(&self) -> RingStats {
        RingStats {
            label: self.label.clone(),
            device: self.device,
            recorded: self.recorded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            buffered: self.buf.len(),
        }
    }
}

/// Counters describing one ring, for live snapshots.
#[derive(Clone, Debug)]
pub struct RingStats {
    /// Ring label (who owns it).
    pub label: String,
    /// Device id the ring records for.
    pub device: u64,
    /// Spans ever recorded.
    pub recorded: u64,
    /// Spans evicted before a drain (lossy journal).
    pub dropped: u64,
    /// Spans currently buffered.
    pub buffered: usize,
}

fn registry() -> &'static Mutex<Vec<Weak<SpanRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<SpanRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Every live ring in the process (dead weak refs are pruned).
pub fn live_rings() -> Vec<Arc<SpanRing>> {
    let mut reg = registry().lock();
    reg.retain(|w| w.strong_count() > 0);
    reg.iter().filter_map(Weak::upgrade).collect()
}

/// Stats for every live ring, for `syd::obs::snapshot`-style views.
pub fn registry_stats() -> Vec<RingStats> {
    live_rings().iter().map(|r| r.stats()).collect()
}

/// Cloneable recording handle bound to one device's ring.
#[derive(Clone)]
pub struct Tracer {
    ring: Arc<SpanRing>,
}

impl Tracer {
    /// Creates a tracer (and its globally-registered ring) for a device.
    pub fn new(label: impl Into<String>, device: u64) -> Tracer {
        Tracer {
            ring: SpanRing::new(label, device, DEFAULT_RING_CAPACITY),
        }
    }

    /// The underlying ring, for targeted draining in tests.
    pub fn ring(&self) -> &Arc<SpanRing> {
        &self.ring
    }

    /// Opens a span as a child of the calling thread's current context
    /// (or as a fresh root when there is none) and installs it as the
    /// current context until the guard drops.
    #[must_use = "the span records when the guard drops"]
    pub fn span(&self, kind: &'static str) -> ActiveSpan {
        let (ctx, parent) = match trace::current() {
            Some(cur) => (cur.child(), cur.span),
            None => (trace::root_span(), 0),
        };
        self.open(kind, ctx, parent)
    }

    /// Opens a root span: a fresh trace id, no parent.
    #[must_use = "the span records when the guard drops"]
    pub fn span_root(&self, kind: &'static str) -> ActiveSpan {
        self.open(kind, trace::root_span(), 0)
    }

    fn open(&self, kind: &'static str, ctx: SpanCtx, parent: u64) -> ActiveSpan {
        ActiveSpan {
            ring: Arc::clone(&self.ring),
            kind,
            ctx,
            parent,
            start_us: now_us(),
            attrs: Vec::new(),
            _guard: trace::enter(ctx),
        }
    }

    /// Records an already-timed span (transport queueing, merged RPC
    /// views) without touching the thread-local context.
    #[allow(clippy::too_many_arguments)] // mirrors the record fields
    pub fn record_span(
        &self,
        kind: &'static str,
        trace: u64,
        span: u64,
        parent: u64,
        start_us: u64,
        end_us: u64,
        attrs: &[(&'static str, u64)],
    ) {
        self.ring.push(SpanRecord {
            trace,
            span,
            parent,
            kind,
            device: self.ring.device,
            start_us,
            end_us,
            attrs: attrs.to_vec(),
        });
    }

    /// Starts a span that finishes on another thread (an in-flight RPC):
    /// the returned handle records when finished or dropped.
    pub fn finish_handle(&self, kind: &'static str, ctx: SpanCtx, parent: u64) -> FinishSpan {
        FinishSpan {
            ring: Arc::clone(&self.ring),
            kind,
            trace: ctx.trace,
            span: ctx.span,
            parent,
            start_us: now_us(),
            attrs: Vec::new(),
            done: false,
        }
    }
}

/// An open span tied to the current thread; records itself on drop and
/// keeps the thread-local context pointing at it while alive.
#[must_use = "dropping immediately records a zero-length span"]
pub struct ActiveSpan {
    ring: Arc<SpanRing>,
    kind: &'static str,
    ctx: SpanCtx,
    parent: u64,
    start_us: u64,
    attrs: Vec<(&'static str, u64)>,
    _guard: trace::SpanGuard,
}

impl ActiveSpan {
    /// The context this span installed (its span id is `ctx().span`).
    pub fn ctx(&self) -> SpanCtx {
        self.ctx
    }

    /// Attaches a numeric attribute.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        self.attrs.push((key, value));
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        self.ring.push(SpanRecord {
            trace: self.ctx.trace,
            span: self.ctx.span,
            parent: self.parent,
            kind: self.kind,
            device: self.ring.device,
            start_us: self.start_us,
            end_us: now_us(),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// A span whose end is observed on a different thread than its start.
///
/// Used for the client side of an RPC: minted at send, finished when
/// the response (or its abandonment) is observed. Dropping without
/// [`FinishSpan::finish`] records the span as ending at drop time.
#[must_use = "finish (or drop) records the span"]
#[derive(Debug)]
pub struct FinishSpan {
    ring: Arc<SpanRing>,
    kind: &'static str,
    trace: u64,
    span: u64,
    parent: u64,
    start_us: u64,
    attrs: Vec<(&'static str, u64)>,
    done: bool,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("label", &self.ring.label)
            .field("device", &self.ring.device)
            .finish()
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("label", &self.label)
            .field("device", &self.device)
            .field("buffered", &self.buf.len())
            .finish()
    }
}

impl FinishSpan {
    /// Attaches a numeric attribute.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        self.attrs.push((key, value));
    }

    /// Records the span, ending now.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.ring.push(SpanRecord {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            kind: self.kind,
            device: self.ring.device,
            start_us: self.start_us,
            end_us: now_us(),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

impl Drop for FinishSpan {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_telemetry::names;

    fn drain(ring: &SpanRing) -> Vec<SpanRecord> {
        std::iter::from_fn(|| ring.pop()).collect()
    }

    #[test]
    fn spans_nest_and_record_parentage() {
        let t = Tracer::new("dev-a", 7);
        {
            let outer = t.span(names::SPAN_SCHEDULE);
            let outer_ctx = outer.ctx();
            let inner = t.span(names::SPAN_MARK_ROUND);
            assert_eq!(inner.ctx().trace, outer_ctx.trace);
            drop(inner);
            drop(outer);
        }
        let recs = drain(t.ring());
        assert_eq!(recs.len(), 2);
        // Inner finished first; its parent is the outer span.
        assert_eq!(recs[0].kind, names::SPAN_MARK_ROUND);
        assert_eq!(recs[1].kind, names::SPAN_SCHEDULE);
        assert_eq!(recs[0].parent, recs[1].span);
        assert_eq!(recs[1].parent, 0);
        assert_eq!(recs[0].device, 7);
        assert!(recs[0].start_us <= recs[0].end_us);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = SpanRing::new("tiny", 1, 2);
        let t = Tracer {
            ring: Arc::clone(&ring),
        };
        for _ in 0..5 {
            let _s = t.span_root(names::SPAN_RECONCILE);
        }
        let stats = ring.stats();
        assert_eq!(stats.recorded, 5);
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.buffered, 2);
    }

    #[test]
    fn finish_handle_records_once_even_if_dropped() {
        let t = Tracer::new("dev-b", 9);
        let ctx = syd_telemetry::trace::root_span();
        let mut h = t.finish_handle(names::SPAN_RPC_CLIENT, ctx, 42);
        h.attr("ok", 1);
        h.finish();
        let recs = drain(t.ring());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].span, ctx.span);
        assert_eq!(recs[0].parent, 42);
        assert_eq!(recs[0].attrs, vec![("ok", 1)]);

        let h2 = t.finish_handle(names::SPAN_RPC_CLIENT, ctx.child(), 0);
        drop(h2);
        assert_eq!(drain(t.ring()).len(), 1, "drop records exactly once");
    }

    #[test]
    fn registry_reports_live_rings_only() {
        let t = Tracer::new("live-ring-test", 1234);
        let before = registry_stats()
            .iter()
            .filter(|s| s.label == "live-ring-test")
            .count();
        assert_eq!(before, 1);
        drop(t);
        let after = registry_stats()
            .iter()
            .filter(|s| s.label == "live-ring-test")
            .count();
        assert_eq!(after, 0);
    }
}
