//! Timed span trees for SyD: per-device lock-free span rings, a
//! collector that assembles cross-device trees keyed by trace id, a
//! critical-path analyzer that attributes a negotiation's wall time to
//! protocol phases, a worst-K exemplar store, and a chrome
//! `trace_event` exporter.
//!
//! Spans extend the flat trace *ids* of `syd_telemetry::trace`: a
//! [`SpanRecord`] carries start/end timestamps on a process-wide
//! monotonic clock, a parent span id, a kind string from
//! `syd_telemetry::names`, the recording device, and numeric
//! key/value attributes. Records ride the existing optional trailing
//! `TraceContext` wire field — no wire-format change is needed,
//! because client and server both record under the span id minted by
//! the caller and the collector merges the two views.
//!
//! The hot path is one `ArrayQueue::push` per finished span; nothing
//! blocks, and a full ring evicts its oldest record (the drop is
//! counted, and assembly degrades to a flagged-incomplete tree rather
//! than a panic — see [`collect`]).

#![forbid(unsafe_code)]

pub mod analyze;
pub mod collect;
pub mod exemplar;
pub mod export;
pub mod ring;

pub use analyze::{attribute, Attribution, PHASES};
pub use collect::{AssembleError, AssemblyMode, Collector, ServerView, SpanNode, SpanTree};
pub use exemplar::ExemplarStore;
pub use export::chrome_trace;
pub use ring::{
    now_us, registry_stats, ActiveSpan, FinishSpan, RingStats, SpanRecord, SpanRing, Tracer,
};
