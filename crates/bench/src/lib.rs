//! Shared rigs for the benchmark suite and the experiment harness.
//!
//! Every benchmark builds deployments the same way so numbers are
//! comparable across experiments: an ideal (lossless, zero-latency)
//! network unless the experiment is explicitly about transport effects,
//! authentication off unless the experiment is about §5.4.

// Measurement harness, not middleware: a rig that cannot build has no
// meaningful numbers to report, so panicking on setup is the contract.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod json;
pub mod stress;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use syd_calendar::CalendarApp;
use syd_core::{DeviceRuntime, SydEnv};
use syd_net::NetConfig;
use syd_types::{TimeSlot, UserId};

/// A fresh insecure deployment on an ideal network.
pub fn env_ideal() -> SydEnv {
    SydEnv::new_insecure(NetConfig::ideal())
}

/// A fresh authenticated deployment on an ideal network.
pub fn env_secure() -> SydEnv {
    SydEnv::new(NetConfig::ideal(), "bench passphrase")
}

/// A fresh insecure deployment on framed loopback TCP — the `--transport
/// tcp` axis of the perf driver: identical protocol traffic, real
/// sockets and kernel scheduling instead of the in-process router.
pub fn env_tcp() -> SydEnv {
    SydEnv::new_on(Arc::new(syd_net::FramedTcpTransport::loopback()), None)
        .expect("loopback TCP deployment")
}

/// `n` bare devices.
pub fn devices(env: &SydEnv, n: usize) -> Vec<DeviceRuntime> {
    (0..n)
        .map(|i| env.device(&format!("dev{i}"), "pw").unwrap())
        .collect()
}

/// `n` calendar users.
pub fn calendar_rig(env: &SydEnv, n: usize) -> Vec<Arc<CalendarApp>> {
    (0..n)
        .map(|i| CalendarApp::install(&env.device(&format!("cal{i}"), "pw").unwrap()).unwrap())
        .collect()
}

/// User ids of a rig.
pub fn users_of(apps: &[Arc<CalendarApp>]) -> Vec<UserId> {
    apps.iter().map(|a| a.user()).collect()
}

/// Hands out fresh, never-reused calendar slots so every benchmark
/// iteration schedules into clean space.
#[derive(Default)]
pub struct SlotAlloc {
    next: AtomicU64,
}

impl SlotAlloc {
    /// Creates an allocator starting at day 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next unused slot.
    pub fn next(&self) -> TimeSlot {
        TimeSlot::from_ordinal(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Pre-fills a fraction of each calendar's slots in `[0, horizon)` with
/// personal engagements, deterministically per user — the "calendar
/// density" axis of experiment E3.
pub fn prefill_density(apps: &[Arc<CalendarApp>], horizon: u64, density_pct: u64) {
    for (i, app) in apps.iter().enumerate() {
        for ordinal in 0..horizon {
            // Cheap deterministic hash spread.
            let h = ordinal.wrapping_mul(2654435761).wrapping_add(i as u64 * 97);
            if h % 100 < density_pct {
                let _ = app.mark_busy(TimeSlot::from_ordinal(ordinal));
            }
        }
    }
}
