//! A deliberately tiny JSON tree, emitter and parser.
//!
//! The benchmark driver ships machine-readable results (`BENCH_*.json`)
//! and validates them in CI, but the workspace takes no serialization
//! dependency — the wire format is hand-rolled for the same reason the
//! paper's prototype used raw sockets. This module is the ~200-line
//! subset of JSON the benchmark schema needs: objects, arrays, strings,
//! finite numbers, booleans and null, with string escapes limited to the
//! characters the emitter itself produces.

use std::fmt::Write as _;

use syd_types::{SydError, SydResult};

/// A JSON value tree. Object member order is preserved (emission is
/// deterministic, so diffs of checked-in results stay reviewable).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (JSON has no NaN/Inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> SydResult<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing garbage"));
        }
        Ok(value)
    }
}

/// Integers emit without a decimal point so counters read naturally.
fn write_num(out: &mut String, n: f64) {
    debug_assert!(n.is_finite(), "JSON numbers must be finite");
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(pos: usize, what: &str) -> SydError {
    SydError::Protocol(format!("json at byte {pos}: {what}"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> SydResult<()> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> SydResult<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> SydResult<Json> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> SydResult<Json> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => Err(err(start, "malformed number")),
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> SydResult<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape = bytes.get(*pos).ok_or_else(|| err(*pos, "bad escape"))?;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "short \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u hex"))?,
                            16,
                        )
                        .map_err(|_| err(*pos, "bad \\u hex"))?;
                        // Surrogate pairs are out of scope for the schema.
                        out.push(char::from_u32(code).ok_or_else(|| err(*pos, "bad codepoint"))?);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> SydResult<Json> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> SydResult<Json> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_benchmark_shape() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("syd-bench-perf/v1".into())),
            ("quick".into(), Json::Bool(false)),
            (
                "results".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("bench".into(), Json::Str("group_invoke".into())),
                    ("group_size".into(), Json::Num(32.0)),
                    ("median_ms".into(), Json::Num(1.25)),
                ])]),
            ),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("results").unwrap().as_arr().unwrap()[0]
                .get("group_size")
                .unwrap()
                .as_f64(),
            Some(32.0)
        );
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::Num(32.0).pretty(), "32\n");
        assert_eq!(Json::Num(1.5).pretty(), "1.5\n");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        let text = s.pretty();
        assert_eq!(Json::parse(&text).unwrap(), s);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1.2.3", "\"x", "[1] x"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let doc = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }
}
