//! Seed-deterministic negotiation stress driver, audited by `syd-check`.
//!
//! Drives hundreds of concurrent §4.3 negotiations over a small, heavily
//! contended entity space while the simulated network drops messages and
//! (optionally) partitions random device pairs, then quiesces, forces the
//! stale-session sweep, and runs the protocol invariant checker over
//! every journal and lock table. The same seed always produces the same
//! session mix, so a violation found once is reproducible.
//!
//! The driver can also *inject* a protocol defect after the run — a
//! leaked entity lock or a forged double-commit record — to prove the
//! checker catches it and reports the offending session with a journal
//! excerpt. `cargo run -p syd-bench --bin check` is the CLI front end.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use syd_check::{AuditOptions, AuditReport};
use syd_core::device::entity_lock_key;
use syd_core::links::Constraint;
use syd_core::negotiate::Participant;
use syd_core::{DeviceRuntime, EntityHandler, SydEnv};
use syd_net::NetConfig;
use syd_telemetry::EventKind;
use syd_types::{SydError, SydResult, Value};

/// A deliberately injected protocol defect (see [`StressConfig::inject`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Acquire an entity lock whose journal story is already closed and
    /// never release it — the checker must flag a lock leak.
    LockLeak,
    /// Forge a `Change` record for a session that does not hold the
    /// entity's lock — the checker must flag a double-book.
    DoubleCommit,
}

impl Fault {
    /// Parses the CLI spelling (`lock-leak` / `double-commit`).
    pub fn parse(s: &str) -> Option<Fault> {
        match s {
            "lock-leak" => Some(Fault::LockLeak),
            "double-commit" => Some(Fault::DoubleCommit),
            _ => None,
        }
    }
}

/// Parameters of one stress run.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Total negotiation sessions across all workers.
    pub sessions: usize,
    /// Devices in the deployment (each is participant and coordinator).
    pub devices: usize,
    /// Concurrent initiator threads.
    pub workers: usize,
    /// Size of the contended entity space (`slot:0 .. slot:n-1`).
    pub entities: usize,
    /// Per-message loss probability of the simulated network.
    pub loss: f64,
    /// Periodically partition and heal random device pairs during the run.
    pub partition: bool,
    /// Seed for the session mix, the network RNG, and the partition churn.
    pub seed: u64,
    /// Inject a defect after the run quiesced (the audit must catch it).
    pub inject: Option<Fault>,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            sessions: 200,
            devices: 6,
            workers: 6,
            entities: 8,
            loss: 0.02,
            partition: true,
            seed: 42,
            inject: None,
        }
    }
}

/// What a stress run did, plus the invariant audit of the aftermath.
#[derive(Debug)]
pub struct StressOutcome {
    /// Sessions whose constraint was satisfied.
    pub satisfied: usize,
    /// Sessions that ran to completion (satisfied or not).
    pub completed: usize,
    /// Sessions that errored outright (e.g. coordinator unreachable).
    pub errors: usize,
    /// Stale sessions reclaimed by the forced end-of-run sweep.
    pub swept: usize,
    /// The protocol invariant audit over every device.
    pub report: AuditReport,
}

/// xorshift64* — deterministic, dependency-free session mixing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Votes yes with probability `percent`, deterministically per device.
struct FlakyHandler {
    percent: u64,
    calls: AtomicU64,
}

impl EntityHandler for FlakyHandler {
    fn prepare(&self, _entity: &str, _change: &Value) -> SydResult<()> {
        let n = self
            .calls
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
        if n % 100 < self.percent {
            Ok(())
        } else {
            Err(SydError::App("unavailable".into()))
        }
    }

    fn commit(&self, _entity: &str, _change: &Value) -> SydResult<()> {
        Ok(())
    }

    fn abort(&self, _entity: &str, _change: &Value) {}
}

/// One pre-generated negotiation: constraint + participant assignments.
fn plan_session(
    rng: &mut Rng,
    devices: &[DeviceRuntime],
    entities: usize,
) -> (Constraint, Vec<Participant>) {
    let n = 2 + rng.below(devices.len() as u64 - 1) as usize;
    let constraint = match rng.below(3) {
        0 => Constraint::And,
        1 => Constraint::AtLeast(1 + rng.below(n as u64 - 1) as u32),
        _ => Constraint::Exactly(1 + rng.below(n.min(2) as u64) as u32),
    };
    // Distinct participants, contended entities: pick an n-subset by
    // rotating from a random start so every device stays busy.
    let start = rng.below(devices.len() as u64) as usize;
    let parts = (0..n)
        .map(|i| {
            let dev = &devices[(start + i) % devices.len()];
            let entity = format!("slot:{}", rng.below(entities as u64));
            Participant::new(dev.user(), entity, Value::str("stress"))
        })
        .collect();
    (constraint, parts)
}

/// Runs the stress mix and audits the aftermath. Deterministic in
/// `cfg.seed` up to thread interleaving (the *audit verdict* must be
/// clean for every seed; the satisfied/declined split may vary).
pub fn run(cfg: &StressConfig) -> StressOutcome {
    let devices_n = cfg.devices.max(2);
    let net = NetConfig::ideal().with_loss(cfg.loss).with_seed(cfg.seed);
    let env = SydEnv::new_insecure(net);
    let devices: Vec<DeviceRuntime> = (0..devices_n)
        .map(|i| env.device(&format!("stress{i}"), "").unwrap())
        .collect();
    for (i, dev) in devices.iter().enumerate() {
        dev.set_entity_handler(Arc::new(FlakyHandler {
            percent: 85,
            calls: AtomicU64::new(cfg.seed.wrapping_add(i as u64 * 7919)),
        }));
    }

    // Pre-plan every session so the mix is a pure function of the seed,
    // then deal them round-robin to the workers.
    let mut rng = Rng::new(cfg.seed);
    let plans: Vec<(Constraint, Vec<Participant>)> = (0..cfg.sessions)
        .map(|_| plan_session(&mut rng, &devices, cfg.entities.max(1)))
        .collect();

    let satisfied = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let workers = cfg.workers.clamp(1, cfg.sessions.max(1));
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let coordinator = &devices[w % devices.len()];
            let plans = &plans;
            let (satisfied, completed, errors) = (&satisfied, &completed, &errors);
            handles.push(scope.spawn(move || {
                for (constraint, parts) in plans.iter().skip(w).step_by(workers) {
                    match coordinator.negotiator().negotiate(*constraint, parts) {
                        Ok(outcome) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            if outcome.satisfied {
                                satisfied.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }

        // Partition churn: cut a random device pair, let traffic fail,
        // heal, repeat until the workers drain.
        if cfg.partition {
            let mut prng = Rng::new(cfg.seed ^ 0xDEAD_BEEF);
            let devices = &devices;
            let stop = &stop;
            let env = &env;
            scope.spawn(move || {
                let net = env.network();
                while !stop.load(Ordering::Relaxed) {
                    let a = prng.below(devices.len() as u64) as usize;
                    let b = (a + 1 + prng.below(devices.len() as u64 - 1) as usize) % devices.len();
                    net.set_partitioned(devices[a].addr(), devices[b].addr(), true);
                    std::thread::sleep(Duration::from_millis(2 + prng.below(6)));
                    net.heal_partitions();
                    std::thread::sleep(Duration::from_millis(1 + prng.below(4)));
                }
                net.heal_partitions();
            });
        }

        for handle in handles {
            let _ = handle.join();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesce: let bounded mark-waits and in-flight aborts land, then
    // force the stale-session sweep so every surviving lock's story is
    // closed in the journal before the audit reads it.
    std::thread::sleep(Duration::from_millis(300));
    let swept: usize = devices
        .iter()
        .map(|d| d.sweep_stale_sessions(Duration::ZERO))
        .sum();

    match cfg.inject {
        Some(Fault::LockLeak) => inject_lock_leak(&devices[0]),
        Some(Fault::DoubleCommit) => inject_double_commit(&devices[0]),
        None => {}
    }

    // Loss-tolerant audit: duplicate deliveries and sweep-reclaimed locks
    // are legal on this network; leaks, double-books, bad arithmetic and
    // broken waiting queues are not.
    let report = syd_check::audit_with(devices.iter(), &AuditOptions::default());

    StressOutcome {
        satisfied: satisfied.into_inner() as usize,
        completed: completed.into_inner() as usize,
        errors: errors.into_inner() as usize,
        swept,
        report,
    }
}

/// Session id used by the injected defects — far outside the id space
/// real coordinators allocate (`user << 24 | counter`).
pub const INJECTED_SESSION: u64 = 0xFA_11ED;

/// Plants a leaked entity lock on `device`: the journal shows the
/// session's story closing (lock, change) but the lock is re-acquired
/// and never released. [`syd_check::audit`] must report a `lock-leak`
/// for [`INJECTED_SESSION`] with the story as its excerpt.
pub fn inject_lock_leak(device: &DeviceRuntime) {
    let session = INJECTED_SESSION;
    let entity = "slot:injected";
    device.journal().record(
        EventKind::Lock,
        format!("session={session} entity={entity}"),
    );
    device.journal().record(
        EventKind::Change,
        format!("session={session} entity={entity} applied=true"),
    );
    assert!(
        device
            .store()
            .locks()
            .try_acquire(session, &entity_lock_key(entity)),
        "injected entity unexpectedly contended"
    );
}

/// Forges a double-book on `device`: a `Change` record for a session
/// that does not hold the entity's lock, interleaved into another
/// session's story. [`syd_check::audit`] must report a `double-book`
/// for [`INJECTED_SESSION`].
pub fn inject_double_commit(device: &DeviceRuntime) {
    let holder = INJECTED_SESSION ^ 1;
    let entity = "slot:injected";
    let journal = device.journal();
    journal.record(EventKind::Lock, format!("session={holder} entity={entity}"));
    journal.record(
        EventKind::Change,
        format!("session={INJECTED_SESSION} entity={entity} applied=true"),
    );
    journal.record(
        EventKind::Change,
        format!("session={holder} entity={entity} applied=true"),
    );
}
