//! Stress-and-audit driver for the protocol invariant checker.
//!
//! Runs hundreds of seeded concurrent negotiations over a lossy (and
//! optionally partitioning) simulated network, forces the stale-session
//! sweep, and audits every device journal and lock table with
//! `syd-check`. Exits non-zero — printing each violation with its
//! session id and a minimized journal excerpt — if any invariant broke.
//!
//! ```sh
//! cargo run --release -p syd-bench --bin check -- --sessions 500 --loss 0.05
//! cargo run --release -p syd-bench --bin check -- --inject lock-leak   # must fail
//! ```

use syd_bench::stress::{run, Fault, StressConfig};

fn usage() -> ! {
    eprintln!(
        "usage: check [--sessions N] [--devices N] [--workers N] [--entities N]\n\
         \x20            [--loss P] [--seed N] [--no-partition]\n\
         \x20            [--inject lock-leak|double-commit]"
    );
    std::process::exit(2)
}

fn main() {
    let mut cfg = StressConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--sessions" => cfg.sessions = val("--sessions").parse().unwrap_or_else(|_| usage()),
            "--devices" => cfg.devices = val("--devices").parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--entities" => cfg.entities = val("--entities").parse().unwrap_or_else(|_| usage()),
            "--loss" => cfg.loss = val("--loss").parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--no-partition" => cfg.partition = false,
            "--inject" => {
                cfg.inject = Some(Fault::parse(&val("--inject")).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }

    println!(
        "syd-check stress: {} sessions, {} devices, {} workers, {} entities, \
         loss {:.1}%, partition churn {}, seed {}",
        cfg.sessions,
        cfg.devices,
        cfg.workers,
        cfg.entities,
        cfg.loss * 100.0,
        if cfg.partition { "on" } else { "off" },
        cfg.seed
    );
    if let Some(fault) = cfg.inject {
        println!("injecting defect after quiesce: {fault:?}");
    }

    let outcome = run(&cfg);
    println!(
        "ran {} sessions ({} satisfied, {} errored), swept {} stale sessions, \
         audited {} journal events across {} sessions",
        outcome.completed + outcome.errors,
        outcome.satisfied,
        outcome.errors,
        outcome.swept,
        outcome.report.events,
        outcome.report.sessions,
    );

    if outcome.report.ok() {
        println!("audit clean: every protocol invariant held");
        if cfg.inject.is_some() {
            eprintln!("ERROR: injected defect was NOT detected");
            std::process::exit(3);
        }
    } else {
        println!("\n{}", outcome.report);
        std::process::exit(1);
    }
}
