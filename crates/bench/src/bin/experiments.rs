//! The experiment harness: regenerates the measurable counterpart of every
//! figure/claim in the paper and prints one table per experiment id (see
//! DESIGN.md §4). Criterion benches cover timing curves; this binary covers
//! the *protocol-shape* results: message counts, byte counts, outcome
//! rates, convergence and failover behaviour.
//!
//! ```sh
//! cargo run --release -p syd-bench --bin experiments
//! ```

// Experiment driver: a rig that cannot build has no numbers to report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use syd_bench::{calendar_rig, env_ideal, users_of, SlotAlloc};
use syd_calendar::{BaselineCalendar, MeetingSpec, MeetingStatus};
use syd_core::links::Constraint;
use syd_core::negotiate::Participant;
use syd_core::proxy::{enable_replication, ProxyMethod};
use syd_core::{DeviceRuntime, EntityHandler, SydEnv};
use syd_net::stats::StatsSnapshot;
use syd_net::NetConfig;
use syd_store::{Column, ColumnType, Schema, Store};
use syd_telemetry::names;
use syd_types::{ServiceName, SydResult, TimeSlot, UserId, Value};

fn main() {
    println!("SyD experiment harness — protocol-shape results");
    println!("(paper: Prasad et al., IPDPS 2003; see DESIGN.md for the index)\n");
    e1_baseline_vs_syd();
    f4_negotiation_outcomes();
    e3_convergence();
    e5_proxy_failover();
    e8_rpc_reliability();
    e1_storage_footprint();
}

fn delta(net: &syd_net::Network, before: StatsSnapshot) -> StatsSnapshot {
    net.stats().since(&before)
}

/// E1 — §3.3/§6: messages and bytes to set up (and react to) a meeting,
/// SyD coordination links vs the replicated-folder/e-mail baseline.
fn e1_baseline_vs_syd() {
    println!("== E1: SyD links vs current practice (messages / bytes per task) ==");
    println!(
        "{:>6} | {:>12} {:>12} | {:>14} {:>14} | {:>12}",
        "group", "syd msgs", "syd bytes", "baseline msgs", "baseline bytes", "note"
    );
    for n in [2usize, 4, 8, 16] {
        // --- SyD: schedule one meeting (everyone free). ---
        let env = env_ideal();
        let apps = calendar_rig(&env, n);
        let attendees: Vec<UserId> = users_of(&apps)[1..].to_vec();
        let slots = SlotAlloc::new();
        let before = env.network().stats();
        let outcome = apps[0]
            .schedule(MeetingSpec::plain("m", slots.next(), attendees.clone()))
            .unwrap();
        assert_eq!(outcome.status, MeetingStatus::Confirmed);
        let syd = delta(env.network(), before);

        // --- Baseline: poll folders + propose + accepts + commit. ---
        let benv = env_ideal();
        let baselines: Vec<Arc<BaselineCalendar>> = (0..n)
            .map(|i| {
                BaselineCalendar::install(&benv.device(&format!("b{i}"), "pw").unwrap()).unwrap()
            })
            .collect();
        let participants: Vec<UserId> = baselines[1..].iter().map(|b| b.user()).collect();
        let all_users: Vec<UserId> = baselines.iter().map(|b| b.user()).collect();
        let before = benv.network().stats();
        // One poll round over a week to pick a slot (the §6 replicated
        // folders must be refreshed first).
        baselines[0]
            .refresh_replicas(&all_users, 0, 7 * 24)
            .unwrap();
        let slot = baselines[0]
            .replica_free_slots(&all_users, 0, 7 * 24)
            .unwrap()[0];
        let proposal = baselines[0].propose(slot, &participants).unwrap();
        for b in &baselines[1..] {
            b.accept(proposal).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(3);
        while baselines[0].proposal_status(proposal)
            != Some(syd_calendar::baseline::ProposalStatus::Scheduled)
        {
            assert!(Instant::now() < deadline, "baseline never committed");
            std::thread::sleep(Duration::from_millis(2));
        }
        let base = delta(benv.network(), before);

        println!(
            "{:>6} | {:>12} {:>12} | {:>14} {:>14} | {:>12}",
            n, syd.sent, syd.bytes_sent, base.sent, base.bytes_sent, "setup"
        );
    }
    // Maintenance traffic: after one schedule change, what does it cost
    // until every participant's view is fresh again? SyD pushes along
    // links (measured); the baseline must poll — each poll round costs
    // 2·(n−1) messages *whether or not anything changed*, so its cost per
    // detected change is 2·(n−1)·(polls per change).
    println!("-- maintenance: traffic for one change to propagate --");
    println!(
        "{:>6} | {:>10} | {:>26}",
        "group", "syd msgs", "baseline msgs (per poll)"
    );
    for n in [2usize, 4, 8, 16] {
        let env = env_ideal();
        let apps = calendar_rig(&env, n);
        let attendees: Vec<UserId> = users_of(&apps)[1..].to_vec();
        let slot = TimeSlot::new(3, 9);
        apps[n - 1].mark_busy(slot).unwrap();
        let outcome = apps[0]
            .schedule(MeetingSpec::plain("m", slot, attendees))
            .unwrap();
        assert_eq!(outcome.status, MeetingStatus::Tentative);
        let before = env.network().stats();
        apps[n - 1].free_personal(slot).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while apps[0].meeting(outcome.meeting).unwrap().unwrap().status != MeetingStatus::Confirmed
        {
            assert!(Instant::now() < deadline, "never converged");
            std::thread::sleep(Duration::from_millis(1));
        }
        let syd = delta(env.network(), before);
        println!("{:>6} | {:>10} | {:>26}", n, syd.sent, 2 * (n - 1));
    }
    println!(
        "(baseline numbers assume instant human accepts; its polling runs\n\
         whether or not anything changed, so idle cost is unbounded)\n"
    );
}

struct YesWithProbability(u64, std::sync::atomic::AtomicU64);
impl EntityHandler for YesWithProbability {
    fn prepare(&self, _e: &str, _c: &Value) -> SydResult<()> {
        // Deterministic pseudo-random accept with probability self.0 %.
        let n = self
            .1
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            .wrapping_mul(2654435761)
            .rotate_left(17)
            .wrapping_mul(0x9E3779B97F4A7C15);
        if n % 100 < self.0 {
            Ok(())
        } else {
            Err(syd_types::SydError::App("unavailable".into()))
        }
    }
    fn commit(&self, _e: &str, _c: &Value) -> SydResult<()> {
        Ok(())
    }
    fn abort(&self, _e: &str, _c: &Value) {}
}

/// F4 — Figure 4 / §4.3: outcome rates of and / or / xor negotiations as
/// participant availability drops.
fn f4_negotiation_outcomes() {
    println!("== F4: negotiation outcomes vs availability (n = 8, 100 rounds each) ==");
    println!(
        "{:>12} | {:>10} {:>10} {:>10}",
        "availability", "and ok%", "or(2) ok%", "xor(1) ok%"
    );
    for avail in [100u64, 90, 70, 50, 30] {
        let env = env_ideal();
        let devs: Vec<DeviceRuntime> = (0..8)
            .map(|i| env.device(&format!("d{i}"), "pw").unwrap())
            .collect();
        for (i, d) in devs.iter().enumerate() {
            // Distinct seeds so devices decide independently.
            d.set_entity_handler(Arc::new(YesWithProbability(
                avail,
                std::sync::atomic::AtomicU64::new(i as u64 * 7919 + 13),
            )));
        }
        let coordinator = devs[0].clone();
        let run = |constraint: Constraint| -> u32 {
            let mut ok = 0;
            for round in 0..100 {
                let parts: Vec<Participant> = devs
                    .iter()
                    .map(|d| Participant::new(d.user(), format!("e{round}"), Value::str("x")))
                    .collect();
                let outcome = coordinator
                    .negotiator()
                    .negotiate(constraint, &parts)
                    .unwrap();
                if outcome.satisfied {
                    ok += 1;
                }
            }
            ok
        };
        let and_ok = run(Constraint::And);
        let or_ok = run(Constraint::AtLeast(2));
        let xor_ok = run(Constraint::Exactly(1));
        println!("{avail:>11}% | {and_ok:>10} {or_ok:>10} {xor_ok:>10}");
    }
    println!(
        "(expected shape: AND collapses fast as availability drops; OR/XOR\n\
         stay satisfiable — the reason §5's calendar reserves subsets)\n"
    );
}

/// E3 — §5: how fast a tentative meeting converges to confirmed once the
/// blocker disappears (the event-driven path the paper contrasts with
/// polling).
fn e3_convergence() {
    println!("== E3: tentative→confirmed convergence after the blocker clears ==");
    println!(
        "{:>6} | {:>16} | {:>12}",
        "group", "convergence (ms)", "messages"
    );
    for n in [2usize, 4, 8] {
        let env = env_ideal();
        let apps = calendar_rig(&env, n + 1);
        let attendees: Vec<UserId> = users_of(&apps)[1..].to_vec();
        let slot = TimeSlot::new(1, 9);
        // The last participant is busy.
        apps[n].mark_busy(slot).unwrap();
        let outcome = apps[0]
            .schedule(MeetingSpec::plain("m", slot, attendees))
            .unwrap();
        assert_eq!(outcome.status, MeetingStatus::Tentative);

        let before = env.network().stats();
        let started = Instant::now();
        apps[n].free_personal(slot).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let status = apps[0].meeting(outcome.meeting).unwrap().unwrap().status;
            if status == MeetingStatus::Confirmed {
                break;
            }
            assert!(Instant::now() < deadline, "never converged");
            std::thread::sleep(Duration::from_micros(200));
        }
        let elapsed = started.elapsed();
        let traffic = delta(env.network(), before);
        println!(
            "{:>6} | {:>16.2} | {:>12}",
            n,
            elapsed.as_secs_f64() * 1e3,
            traffic.sent
        );
    }
    println!("(the baseline would discover the change only at its next poll)\n");
}

/// E5 — §5.2: proxy failover — service continuity through a disconnect.
fn e5_proxy_failover() {
    println!("== E5: proxy failover ==");
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let phil = env.device("phil", "pw").unwrap();
    let andy = env.device("andy", "pw").unwrap();
    let proxy = env.proxy("proxy", "pw").unwrap();
    let svc = ServiceName::new("slots");

    let schema = Schema::new(
        "slots",
        vec![
            Column::required("ordinal", ColumnType::I64),
            Column::required("status", ColumnType::Str),
        ],
        &["ordinal"],
    )
    .unwrap();
    phil.store().create_table(schema.clone()).unwrap();
    {
        let store = phil.store().clone();
        phil.register_service(
            &svc,
            "get",
            Arc::new(move |_ctx, args: &[Value]| {
                Ok(store
                    .get_by_key("slots", &[args[0].clone()])?
                    .map_or(Value::str("free"), |r| r.values[1].clone()))
            }),
        )
        .unwrap();
    }
    let get: ProxyMethod = Arc::new(|_ctx, store: &Store, args: &[Value]| {
        Ok(store
            .get_by_key("slots", &[args[0].clone()])?
            .map_or(Value::str("free"), |r| r.values[1].clone()))
    });
    proxy
        .host_user(phil.user(), move |store| {
            store.create_table(schema)?;
            Ok(vec![((svc.clone(), "get".to_owned()), get)])
        })
        .unwrap();
    enable_replication(&phil, proxy.addr(), &["slots"]).unwrap();

    phil.store()
        .insert("slots", vec![Value::I64(9), Value::str("busy")])
        .unwrap();
    std::thread::sleep(Duration::from_millis(50)); // replication settle

    let svc = ServiceName::new("slots");
    // Query latency through the primary.
    let t = Instant::now();
    for _ in 0..100 {
        andy.engine()
            .invoke(phil.user(), &svc, "get", vec![Value::I64(9)])
            .unwrap();
    }
    let primary_us = t.elapsed().as_micros() as f64 / 100.0;

    // Disconnect; measure takeover: time until the first successful call
    // (includes failure detection + re-resolution to the proxy).
    phil.disconnect().unwrap();
    let t = Instant::now();
    let out = andy
        .engine()
        .invoke(phil.user(), &svc, "get", vec![Value::I64(9)])
        .unwrap();
    let takeover_us = t.elapsed().as_micros();
    assert_eq!(out, Value::str("busy"), "proxy served stale-free data");

    // Steady-state latency through the proxy.
    let t = Instant::now();
    for _ in 0..100 {
        andy.engine()
            .invoke(phil.user(), &svc, "get", vec![Value::I64(9)])
            .unwrap();
    }
    let proxy_us = t.elapsed().as_micros() as f64 / 100.0;

    println!("  query via primary : {primary_us:>8.1} µs");
    println!("  takeover (1st call): {takeover_us:>8} µs");
    println!("  query via proxy   : {proxy_us:>8.1} µs");
    println!("(availability holds through the disconnect; takeover cost is one\n failed attempt + one directory re-resolution)\n");
}

/// E8 — RPC reliability under loss: how many retries and timeouts the
/// node layer absorbs to keep meeting setup working on a lossy network,
/// plus the telemetry dump the rest of the harness can read.
fn e8_rpc_reliability() {
    println!("== E8: rpc retries/timeouts under loss (one 4-party meeting each) ==");
    println!(
        "{:>8} | {:>8} {:>8} {:>8} | {:>10}",
        "loss", "calls", "retries", "timeouts", "outcome"
    );
    let mut dump_device: Option<DeviceRuntime> = None;
    for loss in [0.0f64, 0.02, 0.05, 0.10] {
        let env = SydEnv::new_insecure(NetConfig::ideal().with_loss(loss).with_seed(7));
        let apps = calendar_rig(&env, 4);
        let attendees: Vec<UserId> = users_of(&apps)[1..].to_vec();
        let outcome = apps[0].schedule(MeetingSpec::plain("m", TimeSlot::new(2, 10), attendees));
        let node = apps[0].device().node();
        let calls = node
            .metrics()
            .get_histogram(names::RPC_CALL)
            .map_or(0, |h| h.count());
        println!(
            "{:>7}% | {:>8} {:>8} {:>8} | {:>10}",
            (loss * 100.0) as u32,
            calls,
            node.rpc_retries(),
            node.rpc_timeouts(),
            match outcome {
                Ok(o) => format!("{:?}", o.status),
                Err(_) => "Err".to_owned(),
            }
        );
        if loss == 0.0 {
            dump_device = Some(apps[0].device().clone());
        }
    }
    println!("(retries are absorbed by the node layer; timeouts that exhaust the\n retry budget surface as negotiation declines and repair rounds)\n");

    if let Some(device) = dump_device {
        println!("-- telemetry dump (initiator device, lossless run) --");
        print!(
            "{}",
            syd_telemetry::metrics_table(&device.metrics().snapshot())
        );
        let journal = device.journal().dump();
        let lines: Vec<&str> = journal.lines().collect();
        println!("-- journal ({} events, first 10) --", lines.len());
        for line in lines.iter().take(10) {
            println!("{line}");
        }
        println!("(full dumps: DeviceRuntime::telemetry_dump / telemetry_jsonl)\n");
    }
}

/// §6's storage claim: "each user's local machine stores only that
/// particular user's information" vs a copy of every member's folder.
fn e1_storage_footprint() {
    println!("== E1b: storage footprint (rows held per device) ==");
    println!(
        "{:>6} | {:>10} | {:>14}",
        "group", "syd rows", "baseline rows"
    );
    for n in [2usize, 4, 8, 16] {
        // SyD: each device stores its own occupied slots only. One
        // meeting = 1 slot row per device.
        let syd_rows_per_device = 1;
        // Baseline: each device replicates every member's folder. With a
        // calendar of one week (168 slots) at 25% density, each replica is
        // 42 rows × (n-1) members.
        let baseline_rows = 42 * (n - 1);
        println!("{n:>6} | {syd_rows_per_device:>10} | {baseline_rows:>14}");
    }
    println!("(computed from the §6 storage model: replicas scale with group size\n and calendar density; SyD state scales with own commitments only)\n");
}
