//! Round-trip & payload benchmark driver: the `BENCH_*.json` suite.
//!
//! Measures the hot paths the coordination-link middleware lives on —
//! group invocation, directory resolution, and the full §5 schedule-a-
//! meeting flow — across group sizes and loss rates, and emits a
//! machine-readable `BENCH_results.json` (schema `syd-bench-perf/v1`,
//! documented in EXPERIMENTS.md) so every future change has a trajectory
//! to answer to. A final set of `fleet_scale` rows puts 100 / 1k / 10k
//! devices on one shared event-driven runtime and records the process
//! thread census, resident memory per device, and schedule-meeting
//! latency inside the fleet.
//!
//! ```sh
//! cargo run --release -p syd-bench --bin perf                  # optimized paths
//! cargo run --release -p syd-bench --bin perf -- --mode legacy # pre-optimisation A/B
//! cargo run --release -p syd-bench --bin perf -- --quick       # CI smoke subset
//! cargo run --release -p syd-bench --bin perf -- --transport both # sim vs loopback TCP
//! cargo run --release -p syd-bench --bin perf -- --check BENCH_results.json
//! cargo run --release -p syd-bench --bin perf -- --fleet 1000 # smoke gate: audit + thread budget
//! cargo run --release -p syd-bench --bin perf -- --profile    # + phase_attribution rows
//! ```
//!
//! `--profile` adds one `phase_attribution` row per (transport, size,
//! loss) cell: it reruns the schedule flow with span collection on,
//! assembles the cross-device trees (`syd-trace`), runs the critical-
//! path analyzer over each, and reports the per-phase wall-time table
//! (milliseconds per operation) plus the worst exemplar.
//!
//! `--transport tcp` reruns the matrix on the framed loopback-TCP
//! backend (real sockets, kernel scheduling); loss cells are sim-only
//! since deterministic drop injection lives in the sim router. TCP rows
//! count framed socket bytes and must report `frame_errors: 0`.
//!
//! `--mode legacy` re-enables the per-user overlapped directory lookups,
//! per-recipient body re-encoding and ordinal-list availability exchange
//! on the *same* harness, which is what makes `BENCH_baseline.json` vs
//! `BENCH_results.json` an apples-to-apples diff. Everything is
//! seed-deterministic; wall-clock latencies vary with the host, but
//! message/byte/round-trip counts must not.

// Benchmark driver: a rig that cannot build has no numbers to report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use syd_bench::json::Json;
use syd_bench::{calendar_rig, devices, env_ideal, env_tcp, users_of};
use syd_calendar::{CalendarApp, MeetingSpec};
use syd_core::SydEnv;
use syd_net::{CallOptions, NetConfig};
use syd_telemetry::names;
use syd_types::{ServiceName, SlotRange, SydError, UserId, Value};

/// Schema identifier stamped into every emitted document.
const SCHEMA: &str = "syd-bench-perf/v1";

/// Per-attempt deadline/retry budget used whenever loss is in play.
fn lossy_opts() -> CallOptions {
    CallOptions::new()
        .with_timeout(Duration::from_millis(50))
        .with_retries(8)
}

struct Config {
    quick: bool,
    legacy: bool,
    seed: u64,
    out: Option<String>,
    /// Transport backends to run: `["sim"]`, `["tcp"]`, or both.
    transports: Vec<&'static str>,
    /// `--fleet N`: run ONLY a fleet-scale row at `N` devices and gate on
    /// it (clean audit, thread budget) — the CI smoke mode.
    fleet: Option<usize>,
    /// `--profile`: collect span trees during the schedule flow and emit
    /// `phase_attribution` rows with the critical-path phase table.
    profile: bool,
}

fn main() {
    let mut cfg = Config {
        quick: false,
        legacy: false,
        seed: 42,
        out: None,
        transports: vec!["sim"],
        fleet: None,
        profile: false,
    };
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--mode" => match args.next().as_deref() {
                Some("legacy") => cfg.legacy = true,
                Some("optimized") => cfg.legacy = false,
                other => die(&format!("--mode legacy|optimized, got {other:?}")),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => cfg.seed = seed,
                None => die("--seed needs an integer"),
            },
            "--transport" => match args.next().as_deref() {
                Some("sim") => cfg.transports = vec!["sim"],
                Some("tcp") => cfg.transports = vec!["tcp"],
                Some("both") => cfg.transports = vec!["sim", "tcp"],
                other => die(&format!("--transport sim|tcp|both, got {other:?}")),
            },
            "--fleet" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => cfg.fleet = Some(n),
                None => die("--fleet needs a device count"),
            },
            "--profile" => cfg.profile = true,
            "--out" => cfg.out = args.next().or_else(|| die("--out needs a path")),
            "--check" => check = args.next().or_else(|| die("--check needs a path")),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if let Some(path) = check {
        match validate_file(&path) {
            Ok(n) => println!("{path}: valid {SCHEMA} document with {n} results"),
            Err(e) => die(&format!("{path}: {e}")),
        }
        return;
    }
    run(&cfg);
}

fn die(msg: &str) -> ! {
    eprintln!("perf: {msg}");
    std::process::exit(1);
}

fn run(cfg: &Config) {
    let mode = if cfg.legacy { "legacy" } else { "optimized" };
    println!(
        "SyD perf driver — mode={mode} seed={} quick={}",
        cfg.seed, cfg.quick
    );

    // `--fleet N`: smoke-gate mode. One fleet-scale row, then hard-fail
    // on an unclean audit or a blown thread budget — this is what the
    // CI `fleet-scale` job runs at 1k devices.
    if let Some(n) = cfg.fleet {
        let row = bench_fleet_scale(cfg, n);
        let threads = row
            .get("threads")
            .and_then(Json::as_f64)
            .unwrap_or(f64::MAX);
        let clean = matches!(row.get("audit_clean"), Some(Json::Bool(true)));
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("mode".into(), Json::Str(mode.into())),
            ("seed".into(), Json::Num(cfg.seed as f64)),
            ("quick".into(), Json::Bool(cfg.quick)),
            ("results".into(), Json::Arr(vec![row])),
        ]);
        let out = cfg.out.as_deref().unwrap_or("BENCH_fleet.json");
        std::fs::write(out, doc.pretty()).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
        println!("\nwrote {out}");
        if !clean {
            die("fleet smoke: syd-check audit reported violations");
        }
        if threads > 64.0 {
            die(&format!(
                "fleet smoke: {threads} OS threads for {n} devices exceeds the 64-thread budget"
            ));
        }
        return;
    }

    let sizes: &[usize] = if cfg.quick { &[2, 8] } else { &[2, 8, 32] };
    let losses: &[f64] = if cfg.quick { &[0.0] } else { &[0.0, 0.1] };

    let mut results = Vec::new();
    for &backend in &cfg.transports {
        for &loss in losses {
            if backend == "tcp" && loss > 0.0 {
                // Deterministic loss injection is a sim-router concept;
                // the kernel does not drop loopback TCP frames for us.
                continue;
            }
            for &n in sizes {
                for bench in [
                    bench_group_invoke,
                    bench_directory_resolution,
                    bench_schedule,
                ] {
                    let r = bench(cfg, backend, n, loss);
                    print_result(&r);
                    results.push(r.into_json());
                }
                if cfg.profile {
                    results.push(bench_phase_attribution(cfg, backend, n, loss));
                }
            }
        }
    }

    // Fleet-scale rows: device count is the axis, not group size. Sim
    // only — the point is the shared runtime's thread/memory budget,
    // which the transport backend does not change.
    let fleets: &[usize] = if cfg.quick {
        &[100]
    } else {
        &[100, 1_000, 10_000]
    };
    for &fleet in fleets {
        results.push(bench_fleet_scale(cfg, fleet));
    }

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("mode".into(), Json::Str(mode.into())),
        ("seed".into(), Json::Num(cfg.seed as f64)),
        ("quick".into(), Json::Bool(cfg.quick)),
        ("results".into(), Json::Arr(results)),
    ]);
    let default_out = if cfg.legacy {
        "BENCH_baseline.json"
    } else {
        "BENCH_results.json"
    };
    let out = cfg.out.as_deref().unwrap_or(default_out);
    std::fs::write(out, doc.pretty()).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
    println!("\nwrote {out}");
}

// ---------------------------------------------------------------------------
// measurements
// ---------------------------------------------------------------------------

/// One benchmark cell: every cell reports the same metric set, which is
/// what keeps the schema uniform and the CI validator simple.
struct Cell {
    bench: &'static str,
    transport: &'static str,
    group_size: usize,
    loss_pct: f64,
    iters: usize,
    ok: usize,
    latencies_ms: Vec<f64>,
    dir_round_trips: f64,
    wire_bytes: f64,
    frame_errors: f64,
}

impl Cell {
    fn into_json(self) -> Json {
        let mut lat = self.latencies_ms;
        lat.sort_by(f64::total_cmp);
        let per_op = |total: f64| total / self.iters.max(1) as f64;
        Json::Obj(vec![
            ("bench".into(), Json::Str(self.bench.into())),
            ("transport".into(), Json::Str(self.transport.into())),
            ("group_size".into(), Json::Num(self.group_size as f64)),
            ("loss_pct".into(), Json::Num(self.loss_pct * 100.0)),
            ("iters".into(), Json::Num(self.iters as f64)),
            (
                "ok_rate".into(),
                Json::Num(self.ok as f64 / self.iters.max(1) as f64),
            ),
            (
                "median_ms".into(),
                Json::Num(round3(percentile(&lat, 50.0))),
            ),
            ("p90_ms".into(), Json::Num(round3(percentile(&lat, 90.0)))),
            (
                "dir_round_trips_per_op".into(),
                Json::Num(round3(per_op(self.dir_round_trips))),
            ),
            (
                "wire_bytes_per_op".into(),
                Json::Num(round3(per_op(self.wire_bytes))),
            ),
            ("frame_errors".into(), Json::Num(self.frame_errors)),
        ])
    }
}

fn print_result(cell: &Cell) {
    let mut lat = cell.latencies_ms.clone();
    lat.sort_by(f64::total_cmp);
    println!(
        "{:>22} [{:^3}] n={:<3} loss={:>3.0}%  median={:>8.3}ms  dir_rt/op={:>6.2}  bytes/op={:>9.0}  ok={}/{}",
        cell.bench,
        cell.transport,
        cell.group_size,
        cell.loss_pct * 100.0,
        percentile(&lat, 50.0),
        cell.dir_round_trips / cell.iters.max(1) as f64,
        cell.wire_bytes / cell.iters.max(1) as f64,
        cell.ok,
        cell.iters,
    );
}

fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// Directory round trips served so far: single lookups + batched lookups.
fn dir_round_trips(env: &SydEnv) -> u64 {
    let metrics = env.directory().metrics();
    let get = |name: &str| metrics.get_counter(name).map_or(0, |c| c.get());
    get("dir.lookups") + get("dir.batch_lookups")
}

/// A deployment on the requested transport backend.
fn make_env(backend: &str) -> SydEnv {
    if backend == "tcp" {
        env_tcp()
    } else {
        env_ideal()
    }
}

/// Bytes the deployment has put on the wire so far. The sim router's
/// payload accounting is kept for `sim` rows (schema continuity); `tcp`
/// rows count framed bytes leaving real sockets.
fn wire_bytes_now(env: &SydEnv, backend: &str) -> u64 {
    if backend == "tcp" {
        env.transport()
            .metrics()
            .get_counter(names::TRANSPORT_BYTES_OUT)
            .map_or(0, |c| c.get())
    } else {
        env.network().stats().bytes_sent
    }
}

/// Frames the transport failed to decode so far — must stay 0 in any
/// clean run, on either backend.
fn frame_errors_now(env: &SydEnv) -> u64 {
    env.transport()
        .metrics()
        .get_counter(names::TRANSPORT_FRAME_ERRORS)
        .map_or(0, |c| c.get())
}

/// Applies the mode's hot-path switches to a device engine.
fn apply_mode(cfg: &Config, engine: &syd_core::SydEngine) {
    engine.set_batched_resolve(!cfg.legacy);
    engine.set_shared_encode(!cfg.legacy);
}

/// Mixes the cell coordinates into the base seed so every cell gets its
/// own deterministic loss pattern.
fn cell_seed(cfg: &Config, n: usize, loss: f64, salt: u64) -> u64 {
    cfg.seed
        .wrapping_mul(1_000_003)
        .wrapping_add(n as u64 * 101 + (loss * 100.0) as u64 * 7 + salt)
}

/// Group invocation: one broadcast round over `n` members, cold cache
/// every iteration (this is the path §6 times at seconds scale over
/// 802.11b). The directory round-trip budget comes from the *server's*
/// request counters, not wall clock.
fn bench_group_invoke(cfg: &Config, backend: &'static str, n: usize, loss: f64) -> Cell {
    let env = make_env(backend);
    let devs = devices(&env, n + 1);
    let members: Vec<UserId> = devs[1..]
        .iter()
        .map(syd_core::DeviceRuntime::user)
        .collect();
    let svc = ServiceName::new("bench");
    for d in &devs[1..] {
        d.register_service(
            &svc,
            "echo",
            Arc::new(|_ctx, args: &[Value]| Ok(Value::from(args.len() as u64))),
        )
        .expect("register echo");
    }
    let engine = devs[0].engine();
    apply_mode(cfg, engine);
    if loss > 0.0 {
        engine.set_options(lossy_opts());
        env.network().reconfigure(
            NetConfig::ideal()
                .with_loss(loss)
                .with_seed(cell_seed(cfg, n, loss, 1)),
        );
    }
    // A body representative of a link-firing broadcast: a small map would
    // encode similarly; what matters is that it is identical per member.
    let payload = vec![Value::str("x".repeat(256)), Value::from(7u64)];
    let iters = if cfg.quick { 5 } else { 40 };
    let dir0 = dir_round_trips(&env);
    let bytes0 = wire_bytes_now(&env, backend);
    let errs0 = frame_errors_now(&env);
    let mut cell = Cell {
        bench: "group_invoke",
        transport: backend,
        group_size: n,
        loss_pct: loss,
        iters,
        ok: 0,
        latencies_ms: Vec::with_capacity(iters),
        dir_round_trips: 0.0,
        wire_bytes: 0.0,
        frame_errors: 0.0,
    };
    for _ in 0..iters {
        engine.flush_cache();
        let t = Instant::now();
        let result = engine.invoke_group(&members, &svc, "echo", payload.clone());
        cell.latencies_ms.push(ms(t.elapsed()));
        if result.all_ok() {
            cell.ok += 1;
        }
    }
    cell.dir_round_trips = (dir_round_trips(&env) - dir0) as f64;
    cell.wire_bytes = (wire_bytes_now(&env, backend) - bytes0) as f64;
    cell.frame_errors = (frame_errors_now(&env) - errs0) as f64;
    cell
}

/// Cold group resolution alone: what does it cost to turn `n` user names
/// into addresses?
fn bench_directory_resolution(cfg: &Config, backend: &'static str, n: usize, loss: f64) -> Cell {
    let env = make_env(backend);
    let devs = devices(&env, n + 1);
    let members: Vec<UserId> = devs[1..]
        .iter()
        .map(syd_core::DeviceRuntime::user)
        .collect();
    let engine = devs[0].engine();
    apply_mode(cfg, engine);
    if loss > 0.0 {
        engine.set_options(lossy_opts());
        env.network().reconfigure(
            NetConfig::ideal()
                .with_loss(loss)
                .with_seed(cell_seed(cfg, n, loss, 2)),
        );
    }
    let iters = if cfg.quick { 5 } else { 40 };
    let dir0 = dir_round_trips(&env);
    let bytes0 = wire_bytes_now(&env, backend);
    let errs0 = frame_errors_now(&env);
    let mut cell = Cell {
        bench: "directory_resolution",
        transport: backend,
        group_size: n,
        loss_pct: loss,
        iters,
        ok: 0,
        latencies_ms: Vec::with_capacity(iters),
        dir_round_trips: 0.0,
        wire_bytes: 0.0,
        frame_errors: 0.0,
    };
    for _ in 0..iters {
        engine.flush_cache();
        let t = Instant::now();
        let resolved = engine.resolve_many(&members);
        cell.latencies_ms.push(ms(t.elapsed()));
        if resolved.iter().all(|(_, r)| r.is_ok()) {
            cell.ok += 1;
        }
    }
    cell.dir_round_trips = (dir_round_trips(&env) - dir0) as f64;
    cell.wire_bytes = (wire_bytes_now(&env, backend) - bytes0) as f64;
    cell.frame_errors = (frame_errors_now(&env) - errs0) as f64;
    cell
}

/// The full §5 flow: find a common slot across everyone's calendar over a
/// four-week window, then schedule the meeting (mark → commit → links).
/// Legacy mode exchanges availability as ordinal lists and intersects by
/// membership scan; optimized mode ships bitmaps and ANDs them.
fn bench_schedule(cfg: &Config, backend: &'static str, n: usize, loss: f64) -> Cell {
    const WINDOW_DAYS: u32 = 28;
    let env = make_env(backend);
    let apps = calendar_rig(&env, n);
    let users = users_of(&apps);
    for app in &apps {
        apply_mode(cfg, app.device().engine());
    }
    if loss > 0.0 {
        for app in &apps {
            app.device().engine().set_options(lossy_opts());
        }
        env.network().reconfigure(
            NetConfig::ideal()
                .with_loss(loss)
                .with_seed(cell_seed(cfg, n, loss, 3)),
        );
    }
    let iters = if cfg.quick {
        3
    } else if loss > 0.0 {
        6
    } else {
        12
    };
    let dir0 = dir_round_trips(&env);
    let bytes0 = wire_bytes_now(&env, backend);
    let errs0 = frame_errors_now(&env);
    let mut cell = Cell {
        bench: "schedule_meeting",
        transport: backend,
        group_size: n,
        loss_pct: loss,
        iters,
        ok: 0,
        latencies_ms: Vec::with_capacity(iters),
        dir_round_trips: 0.0,
        wire_bytes: 0.0,
        frame_errors: 0.0,
    };
    for iter in 0..iters {
        // A fresh, never-reused window per iteration: every schedule runs
        // against clean calendar space with a cold address cache.
        let base = 1 + iter as u32 * (WINDOW_DAYS + 1);
        let range = SlotRange::days(base, base + WINDOW_DAYS);
        apps[0].device().engine().flush_cache();
        let t = Instant::now();
        let outcome = schedule_once(cfg, &apps[0], &users, range, iter);
        cell.latencies_ms.push(ms(t.elapsed()));
        if outcome.is_ok() {
            cell.ok += 1;
        }
    }
    cell.dir_round_trips = (dir_round_trips(&env) - dir0) as f64;
    cell.wire_bytes = (wire_bytes_now(&env, backend) - bytes0) as f64;
    cell.frame_errors = (frame_errors_now(&env) - errs0) as f64;
    cell
}

/// Resident-set size of this process in KiB, per `/proc/self/status`.
fn vm_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// OS threads currently alive in this process, per `/proc/self/task`.
fn os_threads() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(1, Iterator::count)
}

/// Fleet-scale row: `fleet` devices share one event-driven runtime while
/// an 8-member calendar subgroup schedules meetings across it. Reports
/// the standard latency metrics plus the scale metrics the shared
/// runtime exists for — OS threads for the whole process, resident
/// memory per device, and a clean `syd-check` audit of the subgroup.
/// The legacy thread-per-device model cannot produce the 10k row at all
/// (two threads per device ≈ 20k OS threads).
fn bench_fleet_scale(cfg: &Config, fleet: usize) -> Json {
    const SUBGROUP: usize = 8;
    let env = env_ideal();
    let runtime = env.runtime();
    // Scoped registries: fleet devices share metric cells instead of
    // registering full per-device families (the §memory column).
    runtime.set_scoped_metrics(true);

    let rss0 = vm_rss_kb();
    let apps = calendar_rig(&env, SUBGROUP);
    let users = users_of(&apps);
    let extras: Vec<_> = (0..fleet.saturating_sub(SUBGROUP))
        .map(|i| env.device(&format!("fleet{i}"), "pw").unwrap())
        .collect();
    let mem_kb_per_device = (vm_rss_kb().saturating_sub(rss0)) as f64 / fleet.max(1) as f64;

    for app in &apps {
        apply_mode(cfg, app.device().engine());
    }
    let iters = if cfg.quick { 2 } else { 5 };
    let dir0 = dir_round_trips(&env);
    let bytes0 = wire_bytes_now(&env, "sim");
    let mut cell = Cell {
        bench: "fleet_scale",
        transport: "sim",
        group_size: fleet,
        loss_pct: 0.0,
        iters,
        ok: 0,
        latencies_ms: Vec::with_capacity(iters),
        dir_round_trips: 0.0,
        wire_bytes: 0.0,
        frame_errors: 0.0,
    };
    for iter in 0..iters {
        let base = 1 + iter as u32 * 8;
        let range = SlotRange::days(base, base + 7);
        apps[0].device().engine().flush_cache();
        let t = Instant::now();
        let outcome = schedule_once(cfg, &apps[0], &users, range, iter);
        cell.latencies_ms.push(ms(t.elapsed()));
        if outcome.is_ok() {
            cell.ok += 1;
        }
    }
    // Thread census while the whole fleet is still alive — this is the
    // number the shared runtime bounds.
    let threads = os_threads();
    let audit_clean = syd_check::audit(apps.iter().map(|a| a.device())).ok();
    cell.dir_round_trips = (dir_round_trips(&env) - dir0) as f64;
    cell.wire_bytes = (wire_bytes_now(&env, "sim") - bytes0) as f64;
    print_result(&cell);
    println!(
        "{:>22}       fleet={fleet:<6} threads={threads:<4} mem/dev={mem_kb_per_device:.1}KiB  audit_clean={audit_clean}",
        ""
    );
    for d in &extras {
        d.shutdown();
    }
    for app in &apps {
        app.device().shutdown();
    }
    let mut row = cell.into_json();
    if let Json::Obj(pairs) = &mut row {
        pairs.push(("fleet_devices".into(), Json::Num(fleet as f64)));
        pairs.push(("threads".into(), Json::Num(threads as f64)));
        pairs.push((
            "mem_kb_per_device".into(),
            Json::Num(round3(mem_kb_per_device)),
        ));
        pairs.push(("audit_clean".into(), Json::Bool(audit_clean)));
    }
    row
}

/// `--profile` row: rerun the §5 schedule flow with span collection on
/// and attribute each negotiation's wall time to protocol phases.
///
/// Every iteration drains the global span-ring registry into a lossy
/// [`Collector`](syd_trace::Collector); at the end the assembled trees
/// whose root is a `calendar.schedule_op` span go through the critical-
/// path analyzer and the per-phase sums become the row's `phases`
/// table (ms per operation). `complete_rate` is the fraction of trees
/// where every client RPC span found its server-side view — under
/// loss, dropped request frames leave holes and the rate sinks below 1.
fn bench_phase_attribution(cfg: &Config, backend: &'static str, n: usize, loss: f64) -> Json {
    use syd_trace::{attribute, AssemblyMode, Collector, ExemplarStore};
    const WINDOW_DAYS: u32 = 28;
    let env = make_env(backend);
    let apps = calendar_rig(&env, n);
    let users = users_of(&apps);
    for app in &apps {
        apply_mode(cfg, app.device().engine());
    }
    if loss > 0.0 {
        for app in &apps {
            app.device().engine().set_options(lossy_opts());
        }
        env.network().reconfigure(
            NetConfig::ideal()
                .with_loss(loss)
                .with_seed(cell_seed(cfg, n, loss, 4)),
        );
    }
    let iters = if cfg.quick {
        3
    } else if loss > 0.0 {
        6
    } else {
        8
    };
    let dir0 = dir_round_trips(&env);
    let bytes0 = wire_bytes_now(&env, backend);
    // Earlier cells may have left spans buffered in rings that are still
    // alive; drain them into a throwaway collector so this cell only
    // sees its own traces.
    Collector::new(AssemblyMode::Lossy).drain_global();
    let mut collector = Collector::new(AssemblyMode::Lossy);
    let mut ok = 0usize;
    for iter in 0..iters {
        let base = 1 + iter as u32 * (WINDOW_DAYS + 1);
        let range = SlotRange::days(base, base + WINDOW_DAYS);
        apps[0].device().engine().flush_cache();
        if schedule_once(cfg, &apps[0], &users, range, iter).is_ok() {
            ok += 1;
        }
        collector.drain_global();
    }
    let dir_total = (dir_round_trips(&env) - dir0) as f64;
    let bytes_total = (wire_bytes_now(&env, backend) - bytes0) as f64;

    let (trees, _holes) = collector.assemble_all();
    let mut exemplars = ExemplarStore::new(3);
    let mut totals_ms: Vec<f64> = Vec::new();
    let mut phase_us: Vec<(&'static str, u64)> =
        syd_trace::PHASES.iter().map(|p| (*p, 0u64)).collect();
    let mut complete = 0usize;
    for tree in trees {
        if tree.op() != names::SPAN_SCHEDULE {
            continue;
        }
        let att = attribute(&tree);
        totals_ms.push(att.total_us as f64 / 1000.0);
        for (phase, sum) in &mut phase_us {
            *sum += att.phase_us(phase);
        }
        if att.complete {
            complete += 1;
        }
        exemplars.offer(tree);
    }
    totals_ms.sort_by(f64::total_cmp);
    let traces = totals_ms.len();
    let per_op = |us: u64| round3(us as f64 / 1000.0 / traces.max(1) as f64);
    let phases_json: Vec<(String, Json)> = phase_us
        .iter()
        .map(|&(phase, us)| (phase.to_owned(), Json::Num(per_op(us))))
        .collect();

    println!(
        "{:>22} [{:^3}] n={:<3} loss={:>3.0}%  traces={traces}  complete={complete}/{traces}  median={:>8.3}ms",
        "phase_attribution",
        backend,
        n,
        loss * 100.0,
        percentile(&totals_ms, 50.0),
    );
    for &(phase, us) in &phase_us {
        println!("{:>30}: {:>8.3} ms/op", phase, per_op(us));
    }
    if let Some(worst) = exemplars.worst(names::SPAN_SCHEDULE).first() {
        println!(
            "{:>30}: {:.3} ms ({} spans)",
            "worst exemplar",
            worst.duration_us() as f64 / 1000.0,
            worst.nodes.len(),
        );
    }

    Json::Obj(vec![
        ("bench".into(), Json::Str("phase_attribution".into())),
        ("transport".into(), Json::Str(backend.into())),
        ("group_size".into(), Json::Num(n as f64)),
        ("loss_pct".into(), Json::Num(loss * 100.0)),
        ("iters".into(), Json::Num(iters as f64)),
        ("ok_rate".into(), Json::Num(ok as f64 / iters.max(1) as f64)),
        (
            "median_ms".into(),
            Json::Num(round3(percentile(&totals_ms, 50.0))),
        ),
        (
            "p90_ms".into(),
            Json::Num(round3(percentile(&totals_ms, 90.0))),
        ),
        (
            "dir_round_trips_per_op".into(),
            Json::Num(round3(dir_total / iters.max(1) as f64)),
        ),
        (
            "wire_bytes_per_op".into(),
            Json::Num(round3(bytes_total / iters.max(1) as f64)),
        ),
        (
            "frame_errors".into(),
            Json::Num(frame_errors_now(&env) as f64),
        ),
        ("traces".into(), Json::Num(traces as f64)),
        (
            "complete_rate".into(),
            Json::Num(round3(complete as f64 / traces.max(1) as f64)),
        ),
        ("phases".into(), Json::Obj(phases_json)),
    ])
}

fn schedule_once(
    cfg: &Config,
    initiator: &CalendarApp,
    users: &[UserId],
    range: SlotRange,
    iter: usize,
) -> Result<(), SydError> {
    let common = if cfg.legacy {
        initiator.find_common_slots_via_lists(users, range)?
    } else {
        initiator.find_common_slots(users, range)?
    };
    let slot = *common
        .first()
        .ok_or_else(|| SydError::App("no common slot".into()))?;
    initiator.schedule(MeetingSpec::plain(
        format!("perf-{iter}"),
        slot,
        users.to_vec(),
    ))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// schema validation (--check)
// ---------------------------------------------------------------------------

/// Validates an emitted document against the `syd-bench-perf/v1` schema;
/// returns the number of result rows. CI gates on this, not on absolute
/// numbers (wall clock varies with the runner).
fn validate_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = Json::parse(&text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema field is not {SCHEMA:?}"));
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("legacy" | "optimized") => {}
        other => return Err(format!("mode must be legacy|optimized, got {other:?}")),
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results array")?;
    if results.is_empty() {
        return Err("results array is empty".into());
    }
    for (i, row) in results.iter().enumerate() {
        let bench = row
            .get("bench")
            .and_then(Json::as_str)
            .ok_or(format!("results[{i}]: missing bench"))?;
        for key in [
            "group_size",
            "loss_pct",
            "iters",
            "ok_rate",
            "median_ms",
            "p90_ms",
            "dir_round_trips_per_op",
            "wire_bytes_per_op",
        ] {
            row.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("results[{i}]: missing numeric {key}"))?;
        }
        // Optional fields from the `--transport` axis: when present they
        // must be well-typed (pre-axis documents omit them).
        if let Some(t) = row.get("transport") {
            match t.as_str() {
                Some("sim" | "tcp") => {}
                other => return Err(format!("results[{i}]: bad transport {other:?}")),
            }
        }
        if let Some(fe) = row.get("frame_errors") {
            fe.as_f64()
                .ok_or(format!("results[{i}]: frame_errors not numeric"))?;
        }
        // Optional fleet-scale fields: present only on `fleet_scale`
        // rows, and then they must be well-typed.
        for key in ["fleet_devices", "threads", "mem_kb_per_device"] {
            if let Some(v) = row.get(key) {
                v.as_f64()
                    .ok_or(format!("results[{i}]: {key} not numeric"))?;
            }
        }
        if let Some(a) = row.get("audit_clean") {
            if !matches!(a, Json::Bool(_)) {
                return Err(format!("results[{i}]: audit_clean not boolean"));
            }
        }
        // `phase_attribution` rows (from `--profile`) additionally carry
        // the critical-path phase table: every analyzer phase must be
        // present and numeric, and the tree census must be well-typed.
        if bench == "phase_attribution" {
            for key in ["traces", "complete_rate"] {
                row.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("results[{i}]: missing numeric {key}"))?;
            }
            let phases = row
                .get("phases")
                .ok_or(format!("results[{i}]: missing phases table"))?;
            for phase in syd_trace::PHASES {
                phases
                    .get(phase)
                    .and_then(Json::as_f64)
                    .ok_or(format!("results[{i}]: phases missing numeric {phase}"))?;
            }
        }
    }
    Ok(results.len())
}
