//! F2 (Figure 2): the SyD runtime environment hosting all three sample
//! applications — one representative end-to-end operation per app through
//! the full stack.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use syd_bench::{calendar_rig, env_ideal, users_of, SlotAlloc};
use syd_bidding::{Host, Player};
use syd_calendar::MeetingSpec;
use syd_fleet::{deploy_fleet, Position};
use syd_types::UserId;

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_apps");
    group.sample_size(30);

    // Calendar: schedule + cancel one 3-person meeting.
    let env = env_ideal();
    let apps = calendar_rig(&env, 3);
    let attendees: Vec<UserId> = users_of(&apps)[1..].to_vec();
    let slots = SlotAlloc::new();
    group.bench_function("calendar_schedule_cancel_3users", |b| {
        b.iter(|| {
            let slot = slots.next();
            let outcome = apps[0]
                .schedule(MeetingSpec::plain("bench", slot, attendees.clone()))
                .unwrap();
            apps[0].cancel(outcome.meeting).unwrap();
        });
    });

    // Fleet: a position report propagating over a subscription link,
    // then a dispatch decision over the whole fleet.
    let fleet_env = env_ideal();
    let (dispatcher, vehicles) = deploy_fleet(&fleet_env, 8).unwrap();
    let fleet_users: Vec<UserId> = vehicles.iter().map(|v| v.user()).collect();
    group.bench_function("fleet_move_and_poll_8vehicles", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            vehicles[0].move_to(Position { x, y: 0.0 }).unwrap();
            dispatcher.poll_positions(&fleet_users)
        });
    });

    // Bidding: one full round over 8 players.
    let bid_env = env_ideal();
    let host = Host::install(&bid_env.device("host", "pw").unwrap()).unwrap();
    let players: Vec<_> = (0..8)
        .map(|i| {
            let d = bid_env.device(&format!("p{i}"), "pw").unwrap();
            Player::install(&d, Arc::new(move |_item: &str| Some(100 + i as u64))).unwrap()
        })
        .collect();
    let bid_users: Vec<UserId> = players.iter().map(|p| p.user()).collect();
    group.bench_function("bidding_round_8players", |b| {
        b.iter(|| host.run_round(&bid_users, "toaster", 500).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
