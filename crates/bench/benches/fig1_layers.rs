//! F1 (Figure 1): the three-layer architecture — what each layer crossing
//! costs.
//!
//! Layer 1: the device object's data store, accessed directly.
//! Layer 2: the same operation dispatched through the SyDListener
//!          (service lookup + auth-less dispatch, no network).
//! Layer 3: the same operation invoked remotely through the full stack
//!          (engine → directory-resolved address → wire codec → router →
//!          listener → store).

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use syd_bench::{devices, env_ideal};
use syd_core::listener::{InvokeCtx, Listener};
use syd_store::{Column, ColumnType, Predicate, Schema, Store};
use syd_types::{NodeAddr, RequestId, ServiceName, UserId, Value};
use syd_wire::Request;

fn slot_store() -> Store {
    let store = Store::new();
    store
        .create_table(
            Schema::new(
                "slots",
                vec![
                    Column::required("ordinal", ColumnType::I64),
                    Column::required("status", ColumnType::Str),
                ],
                &["ordinal"],
            )
            .unwrap(),
        )
        .unwrap();
    for ordinal in 0..100 {
        store
            .insert("slots", vec![Value::I64(ordinal), Value::str("free")])
            .unwrap();
    }
    store
}

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_layers");

    // Layer 1: direct store access.
    let store = slot_store();
    group.bench_function("L1_store_select", |b| {
        b.iter(|| {
            store
                .select("slots", &Predicate::Eq("ordinal".into(), Value::I64(42)))
                .unwrap()
        });
    });

    // Layer 2: through the listener (local dispatch, no network).
    let listener = Listener::new(None);
    let svc = ServiceName::new("slots");
    let dispatch_store = store.clone();
    listener.register(
        &svc,
        "select",
        Arc::new(move |_ctx: &InvokeCtx, args: &[Value]| {
            let ordinal = args[0].as_i64()?;
            Ok(Value::from(
                dispatch_store
                    .select(
                        "slots",
                        &Predicate::Eq("ordinal".into(), Value::I64(ordinal)),
                    )?
                    .len() as u64,
            ))
        }),
    );
    let request = Request {
        id: RequestId::new(1),
        caller: UserId::new(1),
        target: UserId::default(),
        credentials: vec![],
        service: svc.clone(),
        method: "select".into(),
        args: vec![Value::I64(42)].into(),
        trace: None,
    };
    group.bench_function("L2_listener_dispatch", |b| {
        b.iter(|| listener.dispatch(NodeAddr::new(1), &request).unwrap());
    });

    // Layer 3: full remote invocation (engine + wire + router + listener).
    let env = env_ideal();
    let devs = devices(&env, 2);
    let remote_store = slot_store();
    devs[1]
        .register_service(
            &svc,
            "select",
            Arc::new(move |_ctx, args: &[Value]| {
                let ordinal = args[0].as_i64()?;
                Ok(Value::from(
                    remote_store
                        .select(
                            "slots",
                            &Predicate::Eq("ordinal".into(), Value::I64(ordinal)),
                        )?
                        .len() as u64,
                ))
            }),
        )
        .unwrap();
    let target = devs[1].user();
    group.bench_function("L3_remote_invoke", |b| {
        b.iter(|| {
            devs[0]
                .engine()
                .invoke(target, &svc, "select", vec![Value::I64(42)])
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
