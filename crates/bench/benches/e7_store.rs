//! E7 and A1: the embedded store substrate — CRUD costs, index vs scan,
//! trigger overhead (store-level Oracle-style vs middleware events, the
//! §5.3 ablation), transactions, and snapshots.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syd_core::EventHandler;
use syd_store::{Column, ColumnType, Predicate, Schema, Store, Trigger, TriggerEvent};
use syd_types::Value;

fn slots_schema() -> Schema {
    Schema::new(
        "slots",
        vec![
            Column::required("ordinal", ColumnType::I64),
            Column::required("status", ColumnType::Str),
            Column::required("priority", ColumnType::I64),
        ],
        &["ordinal"],
    )
    .unwrap()
}

fn filled_store(rows: i64, index: bool) -> Store {
    let store = Store::new();
    store.create_table(slots_schema()).unwrap();
    if index {
        store.create_index("slots", "status").unwrap();
    }
    for i in 0..rows {
        store
            .insert(
                "slots",
                vec![
                    Value::I64(i),
                    Value::str(if i % 3 == 0 { "free" } else { "busy" }),
                    Value::I64(i % 7),
                ],
            )
            .unwrap();
    }
    store
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_store");

    // Insert throughput.
    group.bench_function("insert", |b| {
        let store = Store::new();
        store.create_table(slots_schema()).unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            store
                .insert(
                    "slots",
                    vec![Value::I64(i), Value::str("free"), Value::I64(0)],
                )
                .unwrap()
        });
    });

    // Point lookup by primary key.
    let store = filled_store(10_000, false);
    group.bench_function("get_by_key_10k", |b| {
        b.iter(|| store.get_by_key("slots", &[Value::I64(5000)]).unwrap());
    });

    // Scan vs index on a selective predicate.
    for (label, indexed) in [("scan", false), ("indexed", true)] {
        let store = filled_store(10_000, indexed);
        group.bench_function(format!("select_eq_10k_{label}"), |b| {
            b.iter(|| {
                store
                    .select("slots", &Predicate::Eq("status".into(), Value::str("free")))
                    .unwrap()
            });
        });
    }

    // Range query through the PK ordering column (ordinal) with an index.
    let store = filled_store(10_000, false);
    store.create_index("slots", "ordinal").unwrap();
    group.bench_function("select_range_100_of_10k", |b| {
        b.iter(|| {
            store
                .select(
                    "slots",
                    &Predicate::Between("ordinal".into(), Value::I64(4000), Value::I64(4099)),
                )
                .unwrap()
        });
    });

    // Update one row by key.
    let store = filled_store(10_000, false);
    group.bench_function("update_one_of_10k", |b| {
        b.iter(|| {
            store
                .update(
                    "slots",
                    &Predicate::Eq("ordinal".into(), Value::I64(1234)),
                    &[("status".into(), Value::str("flip"))],
                )
                .unwrap()
        });
    });

    // A1 ablation: per-insert overhead of (a) no trigger, (b) a
    // store-level after trigger (Oracle route), (c) a middleware event
    // bridge (the §5.3 future direction).
    for (label, setup) in [
        ("no_trigger", 0u8),
        ("store_trigger", 1),
        ("middleware_events", 2),
    ] {
        let store = Store::new();
        store.create_table(slots_schema()).unwrap();
        let _events = match setup {
            1 => {
                store
                    .add_trigger(Trigger::after(
                        "bench",
                        "slots",
                        vec![TriggerEvent::Insert],
                        |_ctx| Ok(()),
                    ))
                    .unwrap();
                None
            }
            2 => {
                let events = EventHandler::new();
                events.bridge_store(&store, "slots").unwrap();
                events.subscribe("store.slots.", std::sync::Arc::new(|_t, _p| {}));
                Some(events)
            }
            _ => None,
        };
        // Steady state: insert + delete a row against a fixed 1k-row
        // table, so every variant measures the same table size.
        for i in 0..1000i64 {
            store
                .insert("slots", vec![Value::I64(i), Value::str("x"), Value::I64(0)])
                .unwrap();
        }
        group.bench_function(format!("insert_{label}"), |b| {
            b.iter(|| {
                store
                    .insert(
                        "slots",
                        vec![Value::I64(777_777), Value::str("x"), Value::I64(0)],
                    )
                    .unwrap();
                store
                    .delete(
                        "slots",
                        &Predicate::Eq("ordinal".into(), Value::I64(777_777)),
                    )
                    .unwrap()
            });
        });
    }

    // Transactions: commit vs rollback of a 10-row update.
    let store = filled_store(1000, false);
    group.bench_function("txn_update10_commit", |b| {
        b.iter(|| {
            let mut txn = store.begin();
            txn.update(
                "slots",
                &Predicate::Between("ordinal".into(), Value::I64(100), Value::I64(109)),
                &[("status".into(), Value::str("t"))],
            )
            .unwrap();
            txn.commit();
        });
    });
    group.bench_function("txn_update10_rollback", |b| {
        b.iter(|| {
            let mut txn = store.begin();
            txn.update(
                "slots",
                &Predicate::Between("ordinal".into(), Value::I64(100), Value::I64(109)),
                &[("status".into(), Value::str("t"))],
            )
            .unwrap();
            txn.rollback().unwrap();
        });
    });

    // Snapshot encode/decode for a device-sized database.
    for rows in [100i64, 1000, 10_000] {
        let store = filled_store(rows, true);
        group.bench_with_input(BenchmarkId::new("snapshot_encode", rows), &rows, |b, _| {
            b.iter(|| store.snapshot());
        });
        let bytes = store.snapshot();
        group.bench_with_input(BenchmarkId::new("snapshot_decode", rows), &rows, |b, _| {
            b.iter(|| Store::from_snapshot(&bytes).unwrap());
        });
    }

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
