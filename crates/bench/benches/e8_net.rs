//! E8: the network/RPC substrate — codec costs, round trips under
//! different latency models, loss-retry behaviour, and fan-out capacity.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use syd_net::{CallOptions, LatencyModel, NetConfig, Network, Node, RequestHandler};
use syd_types::{NodeAddr, RequestId, ServiceName, SydResult, UserId, Value};
use syd_wire::{decode_from_slice, encode_to_vec, Envelope, Payload, Request};

fn echo_handler() -> Arc<dyn RequestHandler> {
    Arc::new(|_from: NodeAddr, req: Request| -> SydResult<Value> {
        Ok(Value::list(req.args.to_vec()))
    })
}

fn sample_envelope(args: usize) -> Envelope {
    Envelope::new(
        NodeAddr::new(1),
        NodeAddr::new(2),
        Payload::Request(Request {
            id: RequestId::new(77),
            caller: UserId::new(1),
            target: UserId::new(2),
            credentials: vec![0xAA; 24],
            service: ServiceName::new("calendar"),
            method: "free_slots".into(),
            args: (0..args as i64).map(Value::I64).collect::<Vec<_>>().into(),
            trace: None,
        }),
    )
}

fn bench_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_net");

    // Wire codec.
    for args in [0usize, 8, 64] {
        let env = sample_envelope(args);
        let bytes = encode_to_vec(&env);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", args), &env, |b, env| {
            b.iter(|| encode_to_vec(env));
        });
        group.bench_with_input(BenchmarkId::new("decode", args), &bytes, |b, bytes| {
            b.iter(|| decode_from_slice::<Envelope>(bytes).unwrap());
        });
    }
    group.throughput(Throughput::Elements(1));

    // RPC round trip on an ideal network.
    let net = Network::ideal();
    let server = Node::spawn(&net);
    server.set_handler(echo_handler());
    let client = Node::spawn(&net);
    let svc = ServiceName::new("echo");
    group.bench_function("rpc_round_trip_ideal", |b| {
        b.iter(|| {
            client
                .call(server.addr(), &svc, "m", vec![Value::I64(1)])
                .unwrap()
        });
    });

    // Round trip under the paper's wireless-LAN latency (sanity anchor:
    // should sit near 2×(2–5 ms)).
    let lan = Network::new(NetConfig::ideal().with_latency(LatencyModel::wireless_lan()));
    let lan_server = Node::spawn(&lan);
    lan_server.set_handler(echo_handler());
    let lan_client = Node::spawn(&lan);
    group.sample_size(20);
    group.bench_function("rpc_round_trip_wireless", |b| {
        b.iter(|| {
            lan_client
                .call(lan_server.addr(), &svc, "m", vec![Value::I64(1)])
                .unwrap()
        });
    });

    // Retry behaviour under loss: expected extra round trips.
    let lossy = Network::new(NetConfig::ideal().with_loss(0.2).with_seed(11));
    let lossy_server = Node::spawn(&lossy);
    lossy_server.set_handler(echo_handler());
    let lossy_client = Node::spawn(&lossy);
    let opts = CallOptions::new()
        .with_timeout(Duration::from_millis(20))
        .with_retries(50);
    group.bench_function("rpc_20pct_loss_with_retries", |b| {
        b.iter(|| {
            lossy_client
                .call_with(lossy_server.addr(), &svc, "m", vec![Value::I64(1)], opts)
                .unwrap()
        });
    });
    group.sample_size(100);

    // Async fan-out capacity: 64 overlapped requests to one server.
    group.bench_function("fan_out_64_async", |b| {
        b.iter(|| {
            let calls: Vec<_> = (0..64)
                .map(|i| {
                    client
                        .call_async(server.addr(), &svc, "m", vec![Value::I64(i)])
                        .unwrap()
                })
                .collect();
            for call in calls {
                call.wait(Duration::from_secs(2)).unwrap();
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
