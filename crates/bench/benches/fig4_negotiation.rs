//! F4 (Figure 4): the negotiation protocol — the UML activity diagram's
//! negotiation-or over three objects, plus constraint and group-size
//! sweeps.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::Mutex;
use syd_bench::{devices, env_ideal};

use syd_core::negotiate::Participant;
use syd_core::{DeviceRuntime, EntityHandler};
use syd_types::{SydResult, Value};

/// Entity handler that accepts everything and applies to a counter —
/// minimal app logic so the protocol itself dominates.
struct CountingHandler(Arc<Mutex<u64>>);

impl EntityHandler for CountingHandler {
    fn prepare(&self, _entity: &str, _change: &Value) -> SydResult<()> {
        Ok(())
    }
    fn commit(&self, _entity: &str, _change: &Value) -> SydResult<()> {
        *self.0.lock() += 1;
        Ok(())
    }
    fn abort(&self, _entity: &str, _change: &Value) {}
}

fn install_handlers(devs: &[DeviceRuntime]) {
    for dev in devs {
        dev.set_entity_handler(Arc::new(CountingHandler(Arc::new(Mutex::new(0)))));
    }
}

fn participants(devs: &[DeviceRuntime], n: usize, entity: &str) -> Vec<Participant> {
    devs[..n]
        .iter()
        .map(|d| Participant::new(d.user(), entity, Value::str("change")))
        .collect()
}

fn bench_negotiation(c: &mut Criterion) {
    let env = env_ideal();
    let devs = devices(&env, 64);
    install_handlers(&devs);
    let coordinator = devs[0].clone();

    let mut group = c.benchmark_group("fig4_negotiation");
    group.sample_size(40);

    // The figure's exact case: negotiation-or, three objects, A activates.
    let parts3 = participants(&devs, 3, "fig4-entity");
    group.bench_function("or_3_objects_figure4", |b| {
        b.iter(|| coordinator.negotiator().negotiate_or(1, &parts3).unwrap());
    });

    // Constraint comparison at n = 3.
    group.bench_function("and_3_objects", |b| {
        b.iter(|| coordinator.negotiator().negotiate_and(&parts3).unwrap());
    });
    group.bench_function("xor_3_objects", |b| {
        b.iter(|| coordinator.negotiator().negotiate_xor(1, &parts3).unwrap());
    });

    // Group-size sweep for negotiation-and (the calendar's workhorse).
    for n in [2usize, 4, 8, 16, 32, 64] {
        let parts = participants(&devs, n, "sweep-entity");
        group.bench_with_input(BenchmarkId::new("and_n", n), &parts, |b, parts| {
            b.iter(|| {
                let outcome = coordinator.negotiator().negotiate_and(parts).unwrap();
                assert!(outcome.satisfied);
            });
        });
    }

    // k-of-n sweep at n = 16.
    let parts16 = participants(&devs, 16, "k-entity");
    for k in [1u32, 4, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::new("at_least_k_of_16", k), &k, |b, &k| {
            b.iter(|| {
                let outcome = coordinator.negotiator().negotiate_or(k, &parts16).unwrap();
                assert!(outcome.satisfied);
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_negotiation);
criterion_main!(benches);
