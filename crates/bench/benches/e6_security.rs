//! E6 (§5.4): TEA cipher throughput, credential sealing/verification, and
//! the per-request cost of authentication.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use syd_bench::{devices, env_ideal, env_secure};
use syd_crypto::{cbc_decrypt, cbc_encrypt, Authenticator, Credentials, TeaKey};
use syd_types::{ServiceName, UserId, Value};

fn bench_security(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_security");
    let key = TeaKey::new([0x0123_4567, 0x89AB_CDEF, 0xFEDC_BA98, 0x7654_3210]);

    // Raw block cipher.
    group.throughput(Throughput::Bytes(8));
    group.bench_function("tea_block", |b| {
        let mut block = [0x1234_5678u32, 0x9ABC_DEF0];
        b.iter(|| {
            key.encrypt_block(&mut block);
            block
        });
    });

    // CBC over realistic payload sizes.
    for size in [16usize, 64, 256, 1024] {
        let plaintext = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("cbc_encrypt", size), &size, |b, _| {
            b.iter(|| cbc_encrypt(&key, [7; 8], &plaintext));
        });
        let blob = cbc_encrypt(&key, [7; 8], &plaintext);
        group.bench_with_input(BenchmarkId::new("cbc_decrypt", size), &size, |b, _| {
            b.iter(|| cbc_decrypt(&key, &blob).unwrap());
        });
    }
    group.throughput(Throughput::Elements(1));

    // Credential envelope: seal on the client, verify on the server.
    let auth = Authenticator::from_passphrase("bench passphrase");
    auth.table().authorize(UserId::new(7), "password");
    let creds = Credentials::new(UserId::new(7), "password");
    group.bench_function("seal_credentials", |b| {
        b.iter(|| auth.seal(&creds, [3; 8]));
    });
    let blob = auth.seal(&creds, [3; 8]);
    group.bench_function("verify_credentials", |b| {
        b.iter(|| auth.verify(&blob).unwrap());
    });

    // Per-request overhead: the same remote echo with and without §5.4
    // authentication.
    let svc = ServiceName::new("echo");
    let echo = |_ctx: &syd_core::listener::InvokeCtx,
                args: &[Value]|
     -> syd_types::SydResult<Value> { Ok(Value::list(args.to_vec())) };

    let insecure = env_ideal();
    let devs = devices(&insecure, 2);
    devs[1]
        .register_service(&svc, "echo", Arc::new(echo))
        .unwrap();
    let target = devs[1].user();
    group.bench_function("request_no_auth", |b| {
        b.iter(|| {
            devs[0]
                .engine()
                .invoke(target, &svc, "echo", vec![Value::I64(1)])
                .unwrap()
        });
    });

    let secure = env_secure();
    let sdevs = devices(&secure, 2);
    sdevs[1]
        .register_service(&svc, "echo", Arc::new(echo))
        .unwrap();
    let starget = sdevs[1].user();
    group.bench_function("request_with_auth", |b| {
        b.iter(|| {
            sdevs[0]
                .engine()
                .invoke(starget, &svc, "echo", vec![Value::I64(1)])
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_security);
criterion_main!(benches);
