//! F3 (Figure 3): kernel module interactions — directory lookups, single
//! invocation through the listener, and group invocation/aggregation as
//! the group grows.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syd_bench::{devices, env_ideal};
use syd_types::{ServiceName, UserId, Value};

fn bench_kernel(c: &mut Criterion) {
    let env = env_ideal();
    let devs = devices(&env, 33);
    let svc = ServiceName::new("echo");
    for dev in &devs {
        dev.register_service(
            &svc,
            "echo",
            Arc::new(|_ctx, args: &[Value]| Ok(Value::list(args.to_vec()))),
        )
        .unwrap();
    }
    let caller = &devs[0];

    // Directory lookup (uncached: fresh client each time would measure
    // node spawn; instead measure the directory round trip itself).
    let mut group = c.benchmark_group("fig3_kernel");
    let dirc = env.directory_client();
    let target_user = devs[1].user();
    group.bench_function("directory_lookup", |b| {
        b.iter(|| dirc.lookup(target_user).unwrap());
    });
    group.bench_function("directory_describe", |b| {
        b.iter(|| dirc.describe(target_user).unwrap());
    });

    // Single invocation (engine + listener, cached resolution).
    group.bench_function("single_invoke", |b| {
        b.iter(|| {
            caller
                .engine()
                .invoke(target_user, &svc, "echo", vec![Value::I64(1)])
                .unwrap()
        });
    });

    // Group invocation and aggregation vs group size.
    for n in [2usize, 4, 8, 16, 32] {
        let users: Vec<UserId> = devs[1..=n]
            .iter()
            .map(syd_core::device::DeviceRuntime::user)
            .collect();
        group.bench_with_input(BenchmarkId::new("group_invoke", n), &users, |b, users| {
            b.iter(|| {
                let result = caller
                    .engine()
                    .invoke_group(users, &svc, "echo", vec![Value::I64(7)]);
                assert!(result.all_ok());
                result.aggregate()
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
