//! E2 (§4.2) and A2: link lifecycle operations — creation, negotiated
//! creation, cascade deletion, waiting-link promotion (priority-ordered vs
//! FIFO ablation) and expiry scans.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syd_bench::{devices, env_ideal};
use syd_core::links::{Constraint, LinkRef, LinkSpec};
use syd_types::{LinkId, Priority, Value};

fn bench_links(c: &mut Criterion) {
    let env = env_ideal();
    let devs = devices(&env, 9);
    let mut group = c.benchmark_group("e2_links");
    group.sample_size(40);

    // Local link creation (op 2, local half) — on its own device so the
    // accumulated rows don't distort later measurements.
    let add_dev = env.device("add-local", "pw").unwrap();
    group.bench_function("add_local", |b| {
        b.iter(|| {
            add_dev
                .links()
                .add_local(LinkSpec::subscription("bench-entity", vec![]))
                .unwrap()
        });
    });

    // Negotiated creation with peers (op 2, full: offer round + back
    // links), vs fan-out degree.
    for n in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("create_negotiated", n), &n, |b, &n| {
            b.iter(|| {
                let refs: Vec<LinkRef> = devs[1..=n]
                    .iter()
                    .map(|d| LinkRef::new(d.user(), "peer-entity", "act"))
                    .collect();
                let link = devs[0]
                    .links()
                    .create_negotiated(
                        LinkSpec::negotiation("bench-entity", Constraint::And, refs),
                        "back",
                    )
                    .unwrap();
                // Tear down so state doesn't accumulate.
                devs[0].links().delete(link.id, true).unwrap();
            });
        });
    }

    // Cascade deletion alone (ops 4/§4.4), vs fan-out degree.
    for n in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("cascade_delete", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let refs: Vec<LinkRef> = devs[1..=n]
                        .iter()
                        .map(|d| LinkRef::new(d.user(), "peer-entity", "act"))
                        .collect();
                    devs[0]
                        .links()
                        .create_negotiated(
                            LinkSpec::negotiation("bench-entity", Constraint::And, refs),
                            "back",
                        )
                        .unwrap()
                },
                |link| devs[0].links().delete(link.id, true).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }

    // Waiting-link promotion (op 3): delete a permanent link with W
    // waiters — the A2 ablation contrasts distinct priorities (ordered
    // scan must pick the max) against all-equal priorities (FIFO-ish).
    for &(label, distinct) in &[("priority", true), ("fifo", false)] {
        for w in [1usize, 8, 32, 128] {
            group.bench_with_input(
                BenchmarkId::new(format!("promotion_{label}"), w),
                &w,
                |b, &w| {
                    b.iter_batched(
                        || {
                            let anchor = devs[0]
                                .links()
                                .add_local(LinkSpec::subscription("anchor", vec![]))
                                .unwrap();
                            let mut created = vec![anchor.id];
                            for i in 0..w {
                                let prio = if distinct {
                                    Priority::new((i % 250) as u8)
                                } else {
                                    Priority::NORMAL
                                };
                                let waiter = devs[0]
                                    .links()
                                    .add_local(
                                        LinkSpec::subscription(format!("w{i}"), vec![])
                                            .with_priority(prio)
                                            .waiting_on(anchor.id, i as u64),
                                    )
                                    .unwrap();
                                created.push(waiter.id);
                            }
                            created
                        },
                        |created: Vec<LinkId>| {
                            let report = devs[0].links().delete(created[0], false).unwrap();
                            assert!(!report.promoted.is_empty());
                            // Clean this batch's own links only — other
                            // pre-built batches must stay intact.
                            for id in &created[1..] {
                                let _ = devs[0].links().delete(*id, false);
                            }
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }

    // Expiry scan (op 6) over a link database with N live links, none
    // expired (the steady-state cost paid on every periodic tick).
    for n in [10usize, 100, 1000] {
        // Fresh device per size so populations don't stack.
        let dev = env.device(&format!("expiry{n}"), "pw").unwrap();
        for i in 0..n {
            dev.links()
                .add_local(
                    LinkSpec::subscription(format!("e{i}"), vec![])
                        .with_expiry(syd_types::Timestamp::from_micros(i64::MAX as u64 - 1)),
                )
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("expiry_scan_live", n), &n, |b, _| {
            b.iter(|| {
                let expired = dev.links().expire_scan().unwrap();
                assert!(expired.is_empty());
            });
        });
    }

    // Method coupling (op 5): lookup + remote invocation of one coupled
    // destination.
    let svc = syd_types::ServiceName::new("bench");
    devs[1]
        .register_service(
            &svc,
            "coupled_target",
            std::sync::Arc::new(|_ctx, _args: &[Value]| Ok(Value::Null)),
        )
        .unwrap();
    devs[0]
        .links()
        .couple_method(&svc, "src", devs[1].user(), &svc, "coupled_target")
        .unwrap();
    group.bench_function("invoke_coupled", |b| {
        b.iter(|| {
            let out = devs[0].links().invoke_coupled(&svc, "src", vec![]).unwrap();
            assert_eq!(out.len(), 1);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_links);
criterion_main!(benches);
